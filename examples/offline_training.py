#!/usr/bin/env python
"""Monitoring-only collection followed by offline training (§3.3).

The Interface Daemon "enables independent control of the Monitoring
Agent and the DRL Engine so we can choose to do solely monitoring or
training on demand."  That supports a cautious production rollout:

1. deploy only the monitoring agents — zero actions taken, the system
   runs untouched while the replay DB fills;
2. train the DNN offline against the collected data (overnight, on a
   different machine if desired);
3. only then let CAPES act, starting from a policy that has already
   seen the system.

Pure offline data contains only NULL actions, so the Q-function learns
state values but not action effects; the example finishes with a short
online fine-tuning phase and shows the combined result.
"""

import numpy as np

from repro import ClusterConfig, EnvConfig
from repro.core import CapesSession
from repro.env import StorageTuningEnv
from repro.rl import Hyperparameters
from repro.stats import compare_measurements
from repro.workloads import RandomReadWrite

HP = Hyperparameters(
    hidden_layer_size=64,
    exploration_ticks=300,
    sampling_ticks_per_observation=10,
    adam_learning_rate=5e-4,
    discount_rate=0.9,
    target_network_update_rate=0.02,
)


def main() -> None:
    env = StorageTuningEnv(
        EnvConfig(
            cluster=ClusterConfig(n_servers=2, n_clients=2),
            workload_factory=lambda c, s: RandomReadWrite(
                c, read_fraction=0.1, instances_per_client=3, seed=s
            ),
            hp=HP,
            seed=17,
        )
    )
    session = CapesSession(env, seed=17, train_steps_per_tick=4, loss="huber")

    print("phase 1: monitoring only (200 ticks, no actions)...")
    session.collect(200)
    print(f"  replay DB now holds {env.db.record_count()} records")
    assert session.agent.train_steps == 0

    print("phase 2: offline training on collected data (400 steps)...")
    losses = session.train_offline(400)
    print(f"  prediction error {losses[0]:.4f} -> {losses[-20:].mean():.4f}")

    print("phase 3: online fine-tuning (300 ticks)...")
    session.train(300)

    env.set_params(env.action_space.defaults())
    baseline = session.measure_baseline(120)
    tuned = session.evaluate(120)
    cmp = compare_measurements(baseline, tuned.rewards)
    print(f"\nbaseline {cmp.baseline.mean * 100:6.1f} MB/s -> "
          f"tuned {cmp.tuned.mean * 100:6.1f} MB/s ({cmp.percent:+.1f}%)")


if __name__ == "__main__":
    main()
