"""Sample CAPES configuration file (artifact appendix A.3 style).

Drive it with the CLI::

    python -m repro.cli window-sweep --config examples/conf_lustre.py
    python -m repro.cli baseline --config examples/conf_lustre.py --ticks 120
    python -m repro.cli train    --config examples/conf_lustre.py \
        --ticks 1500 --checkpoint /tmp/capes-model.npz
    python -m repro.cli evaluate --config examples/conf_lustre.py \
        --ticks 300 --checkpoint /tmp/capes-model.npz
    python -m repro.cli sweep    --config examples/conf_lustre.py \
        --tuners capes,random,hill_climb --seeds 0-4 --jobs 4 \
        --train-ticks 1500 --eval-ticks 150

All ALL-CAPS names are optional except ``WORKLOAD``; unknown names are
rejected so typos cannot silently fall back to defaults.  See
``repro.core.config.DEFAULTS`` for the full list.
"""

from repro.workloads import RandomReadWrite

# -- target system ----------------------------------------------------
N_SERVERS = 2
N_CLIENTS = 5  # five clients saturate the servers (paper §4.2)
DISK_KIND = "hdd"

# -- compressed-session hyperparameters (see EXPERIMENTS.md) ----------
HIDDEN_LAYER_SIZE = 64
EXPLORATION_TICKS = 800
ADAM_LEARNING_RATE = 5e-4
DISCOUNT_RATE = 0.9
TARGET_NETWORK_UPDATE_RATE = 0.02
TRAIN_STEPS_PER_TICK = 4
LOSS = "huber"

SEED = 42


def WORKLOAD(cluster, seed):
    """The paper's best case: 1:9 read:write random I/O, 5 threads/client."""
    return RandomReadWrite(
        cluster,
        read_fraction=0.1,
        instances_per_client=5,
        seed=seed,
    )
