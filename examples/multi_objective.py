#!/usr/bin/env python
"""Multi-objective tuning: throughput *and* latency together (§3.2, §6).

The paper's future-work section proposes merging several performance
indices into a single reward via an objective function, citing ASCAR's
combined objectives.  This example tunes the cluster with

    reward = throughput_score + 2 · latency_score

where the latency score is the negated mean ping RTT across OSCs.  The
weight pushes the policy away from settings that buy throughput with
deep, slow queues.  Compare the resulting parameters against the
throughput-only policy from ``quickstart.py``: the combined objective
favours smaller congestion windows.
"""

from repro import CAPES, CapesConfig, ClusterConfig, EnvConfig
from repro.rl import Hyperparameters
from repro.telemetry import CombinedObjective, LatencyObjective, ThroughputObjective
from repro.workloads import RandomReadWrite


def combined_objective() -> CombinedObjective:
    return CombinedObjective(
        [
            (ThroughputObjective(), 1.0),
            (LatencyObjective(), 2.0),
        ]
    )


def main() -> None:
    hp = Hyperparameters(
        hidden_layer_size=64,
        exploration_ticks=400,
        sampling_ticks_per_observation=10,
        adam_learning_rate=5e-4,
        discount_rate=0.9,
        target_network_update_rate=0.02,
    )
    config = CapesConfig(
        env=EnvConfig(
            cluster=ClusterConfig(n_servers=2, n_clients=2),
            workload_factory=lambda cluster, seed: RandomReadWrite(
                cluster, read_fraction=0.2, instances_per_client=3, seed=seed
            ),
            hp=hp,
            objective_factory=combined_objective,
            seed=13,
        ),
        seed=13,
    )
    capes = CAPES(config)

    print("training with combined throughput+latency objective...")
    capes.train(600)

    tuned = capes.evaluate(120)
    print(f"mean combined score: {tuned.mean_reward:+.4f}")
    print(f"learned parameters:  {tuned.final_params}")

    # Show the latency the tuned system actually delivers.
    lat = LatencyObjective()
    score = lat.score(capes.env.cluster, 1.0)
    print(f"mean ping latency:   {-score * 0.05 * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
