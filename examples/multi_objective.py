#!/usr/bin/env python
"""Multi-objective tuning: throughput *and* latency together (§3.2, §6).

The paper's future-work section proposes merging several performance
indices into a single reward via an objective function, citing ASCAR's
combined objectives.  This example tunes the cluster with

    reward = throughput_score + 2 · latency_score

where the latency score is the negated mean ping RTT across OSCs.  The
weight pushes the policy away from settings that buy throughput with
deep, slow queues.  Compare the resulting parameters against the
throughput-only policy from ``quickstart.py``: the combined objective
favours smaller congestion windows.

The session runs through :mod:`repro.exp`: the spec carries the
(module-level, hence picklable) objective factory, so the same spec
also works inside a parallel ``ExperimentRunner`` sweep.
"""

from repro.cluster import ClusterConfig
from repro.exp import ExperimentSpec, RunBudget, WorkloadSpec, execute_spec
from repro.rl import Hyperparameters
from repro.telemetry import CombinedObjective, LatencyObjective, ThroughputObjective


def combined_objective() -> CombinedObjective:
    return CombinedObjective(
        [
            (ThroughputObjective(), 1.0),
            (LatencyObjective(), 2.0),
        ]
    )


def main() -> None:
    hp = Hyperparameters(
        hidden_layer_size=64,
        exploration_ticks=400,
        sampling_ticks_per_observation=10,
        adam_learning_rate=5e-4,
        discount_rate=0.9,
        target_network_update_rate=0.02,
    )
    spec = ExperimentSpec(
        tuner="capes",
        seed=13,
        scenario="throughput+latency",
        cluster=ClusterConfig(n_servers=2, n_clients=2),
        workload=WorkloadSpec(
            "random_rw", {"read_fraction": 0.2, "instances_per_client": 3}
        ),
        hp=hp,
        budget=RunBudget(train_ticks=600, eval_ticks=120),
        objective_factory=combined_objective,
    )

    print("training with combined throughput+latency objective...")
    result = execute_spec(spec)
    final = result.final

    print(f"mean combined score: {float(final.tuned_rewards.mean()):+.4f}")
    print(f"learned parameters:  {final.final_params}")

    # Show the latency the tuned system actually delivers.
    env = spec.build_env()
    try:
        env.reset()
        env.set_params(final.final_params)
        env.run_ticks(30)
        lat = LatencyObjective()
        score = lat.score(env.cluster, 1.0)
        print(f"mean ping latency:   {-score * 0.05 * 1e3:.2f} ms")
    finally:
        env.close()


if __name__ == "__main__":
    main()
