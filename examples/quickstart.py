#!/usr/bin/env python
"""Quickstart: tune a small simulated Lustre cluster with CAPES.

Builds a 2-server / 2-client cluster running a write-heavy random
workload (the paper's sweet spot for congestion-window tuning), trains
the DQN online for a compressed session, then measures before/after
throughput the way the paper's evaluation workflow does (appendix A.4):

    1. train CAPES online;
    2. measure baseline performance (CAPES off, default parameters);
    3. measure tuned performance (CAPES on, greedy policy).

Runs in a couple of minutes.  For the paper-scale experiments see the
``benchmarks/`` directory.
"""

import numpy as np

from repro import CAPES, CapesConfig, ClusterConfig, EnvConfig
from repro.rl import Hyperparameters
from repro.stats import compare_measurements
from repro.util.units import MiB
from repro.workloads import RandomReadWrite


def main() -> None:
    # Compressed-session hyperparameters: Table 1's values (lr 1e-4,
    # γ 0.99) are tuned for 43k-86k-tick sessions; at 1/50 of the data
    # the optimiser must move proportionally faster (see EXPERIMENTS.md).
    hp = Hyperparameters(
        hidden_layer_size=64,
        exploration_ticks=700,
        sampling_ticks_per_observation=10,  # paper value
        adam_learning_rate=5e-4,
        discount_rate=0.9,
        target_network_update_rate=0.02,
    )
    config = CapesConfig(
        env=EnvConfig(
            cluster=ClusterConfig(n_servers=2, n_clients=5),
            workload_factory=lambda cluster, seed: RandomReadWrite(
                cluster,
                read_fraction=0.1,  # 1:9 read:write — the paper's best case
                instances_per_client=5,
                seed=seed,
            ),
            hp=hp,
            seed=42,
        ),
        seed=42,
        train_steps_per_tick=4,
        loss="huber",
    )
    capes = CAPES(config)

    print("training CAPES online for 1200 ticks (simulated seconds)...")
    train = capes.train(1200)
    print(f"  prediction error: first {train.losses[0]:.4f} "
          f"-> last {np.mean(train.losses[-50:]):.4f}")
    print(f"  final parameters: {train.final_params}")

    print("measuring baseline (default parameters, CAPES off)...")
    capes.env.set_params(capes.env.action_space.defaults())
    baseline = capes.measure_baseline(120)

    print("measuring tuned performance (greedy policy)...")
    tuned = capes.evaluate(120)

    cmp = compare_measurements(baseline, tuned.rewards)
    scale = 100.0  # ThroughputObjective unit = 100 MB/s
    print(f"\nbaseline: {cmp.baseline.mean * scale:7.1f} MB/s "
          f"± {cmp.baseline.ci_halfwidth * scale:.1f}")
    print(f"tuned:    {cmp.tuned.mean * scale:7.1f} MB/s "
          f"± {cmp.tuned.ci_halfwidth * scale:.1f}")
    print(f"change:   {cmp.percent:+.1f}% "
          f"({'significant' if cmp.significant else 'not significant'} "
          f"at 95%)")


if __name__ == "__main__":
    main()
