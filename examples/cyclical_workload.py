#!/usr/bin/env python
"""Cyclical workloads, time-of-day PIs and the ε bump (§3.1, §3.6).

Many enterprise workloads alternate phases (think business-hours reads,
overnight backup writes).  The paper prescribes two mechanisms for this
setting:

- include date/time as *separate* performance indicators so the DNN can
  correlate workload changes with the clock (§3.1) — here via
  ``EnvConfig(include_time_features=True)``;
- let the workload scheduler notify the DRL engine so ε bumps to 0.2 at
  phase changes, re-exploring without restarting training (§3.6) — here
  via a synthesized phase-switching trace.

This example trains on a bursty read/write phase-alternating trace and
prints how throughput and the learned parameters evolve per phase.
"""

import numpy as np

from repro import CAPES, CapesConfig, ClusterConfig, EnvConfig
from repro.rl import Hyperparameters
from repro.workloads import TraceReplay, synthesize_trace


def main() -> None:
    hp = Hyperparameters(
        hidden_layer_size=64,
        exploration_ticks=400,
        sampling_ticks_per_observation=10,
        adam_learning_rate=5e-4,
        discount_rate=0.9,
        target_network_update_rate=0.02,
    )
    phase_length = 120.0  # seconds per workload phase

    def workload(cluster, seed):
        trace = synthesize_trace(
            duration=600.0,
            ops_per_second=120.0,
            phase_length=phase_length,
            seed=seed,
        )
        return TraceReplay(cluster, trace, paced=True, loop=True, seed=seed)

    capes = CAPES(
        CapesConfig(
            env=EnvConfig(
                cluster=ClusterConfig(n_servers=2, n_clients=2),
                workload_factory=workload,
                hp=hp,
                include_time_features=True,
                seed=3,
            ),
            seed=3,
        )
    )

    print("training on a phase-alternating trace (600 ticks)...")
    result = capes.train(600)

    # Per-phase mean throughput during training.
    phases = np.array_split(result.rewards, int(600 / phase_length))
    print("\nthroughput by phase during training:")
    for i, chunk in enumerate(phases):
        kind = "read-heavy " if i % 2 == 0 else "write-heavy"
        print(f"  phase {i} ({kind}): {chunk.mean() * 100:6.1f} MB/s")

    tuned = capes.evaluate(240)
    print(f"\ntuned mean throughput: {tuned.mean_reward * 100:.1f} MB/s")
    print(f"final parameters:      {tuned.final_params}")
    print(f"ε bumps during run:    {capes.session.agent.epsilon.bumps}")


if __name__ == "__main__":
    main()
