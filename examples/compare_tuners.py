#!/usr/bin/env python
"""CAPES vs the search-based tuners of the related-work section (§5).

Runs the static default, random search, hill climbing, a (μ+λ)
evolution strategy, and a compressed CAPES session against the same
write-heavy random workload — every tuner behind the one
``Tuner.run(env, budget)`` interface, fanned out by
:class:`repro.exp.ExperimentRunner`.  The searchers find a *static*
setting; CAPES learns a *policy* — on this stationary workload both can
do well, but only CAPES keeps adapting when the workload changes (see
§6, and the workload-shift ablation in ``benchmarks/test_ablations.py``).

Usage::

    python examples/compare_tuners.py [--seeds N] [--jobs N]
"""

import argparse

from repro.cluster import ClusterConfig
from repro.exp import ExperimentRunner, ExperimentSpec, RunBudget, WorkloadSpec, grid
from repro.rl import Hyperparameters

TUNERS = ["static", "random", "hill_climb", "evolution", "capes"]

HP = Hyperparameters(
    hidden_layer_size=64,
    exploration_ticks=700,
    sampling_ticks_per_observation=10,
    adam_learning_rate=5e-4,
    discount_rate=0.9,
    target_network_update_rate=0.02,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=1)
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args()

    base = ExperimentSpec(
        scenario="random 1:9",
        # Five clients saturate the two servers (the paper's congestion
        # collapse regime — where tuning has real headroom).
        cluster=ClusterConfig(n_servers=2, n_clients=5),
        workload=WorkloadSpec(
            "random_rw", {"read_fraction": 0.1, "instances_per_client": 5}
        ),
        hp=HP,
        # Every tuner gets the same system-time budget: 30 epochs of 40
        # ticks for the searchers, 1200 online training ticks for CAPES.
        budget=RunBudget(train_ticks=1200, eval_ticks=120, epoch_ticks=40),
    )
    specs = grid(
        base,
        tuners=TUNERS,
        seeds=[42 + i for i in range(args.seeds)],
        # The DQN gets the compressed-session training settings.
        tuner_kwargs={"capes": {"train_steps_per_tick": 4, "loss": "huber"}},
    )
    results = ExperimentRunner(jobs=args.jobs).run(specs)

    print(results.format_table(unit_scale=100.0, unit=" MB/s"))
    print("\nper-run best settings:")
    for record in results:
        final = record.result.final
        pretty = ", ".join(f"{k}={v:g}" for k, v in final.final_params.items())
        print(f"  {record.spec.spec_id:>28}  {pretty}")


if __name__ == "__main__":
    main()
