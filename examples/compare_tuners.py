#!/usr/bin/env python
"""CAPES vs the search-based tuners of the related-work section (§5).

Runs the static default, random search, hill climbing, a (μ+λ)
evolution strategy, and a compressed CAPES session against the same
write-heavy random workload, and prints each tuner's best achieved
throughput.  The searchers find a *static* setting; CAPES learns a
*policy* — on this stationary workload both can do well, but only
CAPES keeps adapting when the workload changes (see §6, and the
workload-shift ablation in ``benchmarks/test_ablations.py``).
"""

from repro import CAPES, CapesConfig, ClusterConfig, EnvConfig
from repro.baselines import EvolutionStrategy, HillClimb, RandomSearch, StaticBaseline
from repro.env import StorageTuningEnv
from repro.rl import Hyperparameters
from repro.workloads import RandomReadWrite

HP = Hyperparameters(
    hidden_layer_size=64,
    exploration_ticks=400,
    sampling_ticks_per_observation=10,
    adam_learning_rate=5e-4,
    discount_rate=0.9,
    target_network_update_rate=0.02,
)


def env_config(seed: int) -> EnvConfig:
    return EnvConfig(
        cluster=ClusterConfig(n_servers=2, n_clients=2),
        workload_factory=lambda cluster, s: RandomReadWrite(
            cluster, read_fraction=0.1, instances_per_client=3, seed=s
        ),
        hp=HP,
        seed=seed,
    )


def main() -> None:
    budget_epochs = 12
    epoch_ticks = 40
    rows = []

    for cls in (StaticBaseline, RandomSearch, HillClimb, EvolutionStrategy):
        env = StorageTuningEnv(env_config(seed=11))
        tuner = cls(env, epoch_ticks=epoch_ticks, seed=0)
        result = tuner.tune(budget=budget_epochs)
        rows.append((tuner.name, result.best_score * 100, result.best_params))
        env.close()

    capes = CAPES(CapesConfig(env=env_config(seed=11), seed=0))
    capes.train(budget_epochs * epoch_ticks)  # same tick budget
    tuned = capes.evaluate(120)
    rows.append(("CAPES (DQN)", tuned.mean_reward * 100, tuned.final_params))

    print(f"{'tuner':>20} {'throughput':>12}  best setting")
    for name, mbps, params in rows:
        pretty = ", ".join(f"{k}={v:g}" for k, v in params.items())
        print(f"{name:>20} {mbps:9.1f} MB/s  {pretty}")


if __name__ == "__main__":
    main()
