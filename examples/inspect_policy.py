#!/usr/bin/env python
"""Interpreting the trained policy (§6's explainability concern).

After a training session this example asks two questions the paper
raises but leaves open:

1. *What is the control law?*  Sweep the observed congestion-window PI
   across its range and print the greedy action at each value — the
   learned policy typically reads "increase below the optimum, NULL
   near it, decrease above it".
2. *What does the network look at?*  Gradient saliency per input
   feature, aggregated per indicator name, showing which PIs drive the
   decisions.
"""

import numpy as np

from repro import CAPES, CapesConfig, ClusterConfig, EnvConfig
from repro.rl import Hyperparameters, format_policy_table, policy_table, q_sensitivity
from repro.telemetry import OSC_INDICATORS, frame_labels
from repro.workloads import RandomReadWrite

HP = Hyperparameters(
    hidden_layer_size=64,
    exploration_ticks=700,
    sampling_ticks_per_observation=10,
    adam_learning_rate=5e-4,
    discount_rate=0.9,
    target_network_update_rate=0.02,
)


def main() -> None:
    capes = CAPES(
        CapesConfig(
            env=EnvConfig(
                cluster=ClusterConfig(n_servers=2, n_clients=5),
                workload_factory=lambda c, s: RandomReadWrite(
                    c, read_fraction=0.1, instances_per_client=5, seed=s
                ),
                hp=HP,
                seed=42,
            ),
            seed=42,
            train_steps_per_tick=4,
            loss="huber",
        )
    )
    env = capes.env
    print("training (1200 ticks)...")
    capes.train(1200)

    # -- 1. the control law over the window PI -------------------------
    base_obs = env.current_observation()
    labels = frame_labels(env.config.cluster.n_servers)
    per_client = len(labels)
    window_slots = [
        t * env.frame_dim + c * per_client + i
        for t in range(HP.sampling_ticks_per_observation)
        for c in range(env.config.cluster.n_clients)
        for i, lab in enumerate(labels)
        if lab.endswith(".max_rpcs_in_flight")
    ]
    window_scale = next(
        ind.scale for ind in OSC_INDICATORS if ind.name == "max_rpcs_in_flight"
    )
    rows = policy_table(
        capes.session.agent,
        env.action_space,
        base_obs,
        "max_rpcs_in_flight",
        window_slots,
        window_scale,
        values=[1, 2, 3, 4, 6, 8, 12, 16, 24, 32],
    )
    print("\nlearned control law (greedy action vs observed window):")
    print(format_policy_table(rows, "window"))

    # -- 2. which indicators the network attends to ---------------------
    sampler = env.make_sampler(seed=1)
    batch = sampler.sample_minibatch(64)
    sal = q_sensitivity(capes.session.agent, batch.s_t)
    per_feature = sal.reshape(HP.sampling_ticks_per_observation, -1).mean(axis=0)
    by_indicator = {}
    for c in range(env.config.cluster.n_clients):
        for i, lab in enumerate(labels):
            name = lab.split(".", 1)[1]
            by_indicator.setdefault(name, []).append(
                per_feature[c * per_client + i]
            )
    print("\nmean gradient saliency per indicator:")
    ranked = sorted(
        ((np.mean(v), k) for k, v in by_indicator.items()), reverse=True
    )
    for value, name in ranked:
        print(f"  {name:>20}: {value:.5f}")


if __name__ == "__main__":
    main()
