#!/usr/bin/env python
"""Multi-session operation with checkpoints (appendix A.4, Figure 4).

The paper tested its trained DNN "in three sessions that were spread
out over two weeks, with numerous unrelated file operations between the
sessions" to check for overfitting.  This example reproduces the
mechanics: train once, checkpoint, then reload the model against
*perturbed* systems (different file placement → different platter
layout) and verify the policy still helps.
"""

import tempfile
from pathlib import Path

from repro import CapesConfig, ClusterConfig, EnvConfig
from repro.core import CapesSession
from repro.env import StorageTuningEnv
from repro.rl import Hyperparameters
from repro.stats import compare_measurements
from repro.workloads import RandomReadWrite

HP = Hyperparameters(
    hidden_layer_size=64,
    exploration_ticks=400,
    sampling_ticks_per_observation=10,
    adam_learning_rate=5e-4,
    discount_rate=0.9,
    target_network_update_rate=0.02,
)


def env_config(seed: int, perturb: int) -> EnvConfig:
    return EnvConfig(
        cluster=ClusterConfig(n_servers=2, n_clients=2),
        workload_factory=lambda cluster, s: RandomReadWrite(
            cluster, read_fraction=0.1, instances_per_client=3, seed=s
        ),
        hp=HP,
        seed=seed,
        perturb_seed=perturb,
    )


def main() -> None:
    ckpt = Path(tempfile.mkdtemp()) / "capes-model.npz"

    print("session 0: training and checkpointing...")
    trainer = CapesSession(StorageTuningEnv(env_config(seed=3, perturb=0)), seed=3)
    trainer.train(600)
    trainer.save(ckpt)
    print(f"  saved {ckpt}")

    for i, perturb in enumerate((101, 202), start=1):
        print(f"session {i}: fresh system (perturb={perturb}), reloaded model")
        env = StorageTuningEnv(env_config(seed=3, perturb=perturb))
        session = CapesSession(env, seed=3)
        session.ensure_started()
        session.load(ckpt)
        baseline = session.measure_baseline(100)
        env.set_params(env.action_space.defaults())
        tuned = session.evaluate(100)
        cmp = compare_measurements(baseline, tuned.rewards)
        print(
            f"  baseline {cmp.baseline.mean * 100:6.1f} MB/s -> "
            f"tuned {cmp.tuned.mean * 100:6.1f} MB/s ({cmp.percent:+.1f}%)"
        )


if __name__ == "__main__":
    main()
