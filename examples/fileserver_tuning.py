#!/usr/bin/env python
"""Tune the Filebench-style fileserver workload (paper §4.3, Figure 3).

The fileserver personality mixes whole-file writes, appends, whole-file
reads and metadata operations — the hardest workload in the paper's
evaluation ("a good action might not lead to a higher throughput every
time"), which needed the longer 24 h training budget.  This example runs
a compressed version and prints the throughput comparison plus the
action histogram so you can see what the policy learned to do.
"""

import numpy as np

from repro import CAPES, CapesConfig, ClusterConfig, EnvConfig
from repro.rl import Hyperparameters
from repro.stats import compare_measurements
from repro.util.units import KiB, MiB
from repro.workloads import FileServer


def main() -> None:
    hp = Hyperparameters(
        hidden_layer_size=64,
        exploration_ticks=500,
        sampling_ticks_per_observation=10,
        adam_learning_rate=5e-4,
        discount_rate=0.9,
        target_network_update_rate=0.02,
    )
    config = CapesConfig(
        env=EnvConfig(
            cluster=ClusterConfig(n_servers=2, n_clients=2),
            workload_factory=lambda cluster, seed: FileServer(
                cluster,
                file_size=2 * MiB,
                io_size=256 * KiB,
                instances_per_client=8,
                seed=seed,
            ),
            hp=hp,
            seed=7,
        ),
        seed=7,
    )
    capes = CAPES(config)

    print("training on the fileserver workload (800 ticks)...")
    train = capes.train(800)

    print("\naction histogram after training:")
    for a in range(capes.env.n_actions):
        label = capes.env.action_space.describe(a)
        print(f"  {label:>24}: {train.action_counts[a]:4d}")

    capes.env.set_params(capes.env.action_space.defaults())
    baseline = capes.measure_baseline(150)
    tuned = capes.evaluate(150)

    cmp = compare_measurements(baseline, tuned.rewards)
    print(f"\nbaseline: {cmp.baseline.mean * 100:7.1f} MB/s "
          f"± {cmp.baseline.ci_halfwidth * 100:.1f}")
    print(f"tuned:    {cmp.tuned.mean * 100:7.1f} MB/s "
          f"± {cmp.tuned.ci_halfwidth * 100:.1f}")
    print(f"change:   {cmp.percent:+.1f}%")
    print(f"final parameters: {tuned.final_params}")


if __name__ == "__main__":
    main()
