#!/usr/bin/env python
"""Documentation checks (the CI docs job; also run by tests/test_docs.py).

Keeps the docs layer honest, mechanically:

- **mermaid**: every ```mermaid fence in the checked files must parse
  under a minimal grammar — a known diagram type on the first line,
  a non-empty body, and balanced brackets on every line (the failure
  modes that actually break GitHub's renderer);
- **links**: every relative markdown link must resolve to an existing
  file, and every ``#anchor`` to a real heading in its target;
- **snippets**: every ```python fence must byte-compile;
- **docstrings**: every ``__all__`` member (and its public methods) of
  the audited packages must carry a docstring;
- **api-index**: the generated index in docs/API.md must match what
  :func:`render_api_index` produces from the live packages
  (``python docs/check_docs.py --write-api-index`` refreshes it).

Run from the repository root:  ``python docs/check_docs.py``
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import re
import sys
from pathlib import Path
from typing import List

REPO = Path(__file__).resolve().parent.parent

#: Markdown files under the documentation contract.
DOC_FILES = (
    "README.md",
    "EXPERIMENTS.md",
    "docs/ARCHITECTURE.md",
    "docs/API.md",
)

#: Packages whose public API must be fully docstringed and indexed.
API_MODULES = (
    "repro.env",
    "repro.exp",
    "repro.replaydb",
    "repro.scenarios",
    "repro.scenarios.fuzz",
    "repro.serve",
    "repro.sim.vec",
    "repro.snapshot",
    "repro.train",
    "repro.transport",
)

MERMAID_TYPES = (
    "flowchart",
    "graph",
    "sequenceDiagram",
    "classDiagram",
    "stateDiagram",
    "erDiagram",
    "gantt",
)

API_INDEX_BEGIN = "<!-- api-index:begin (generated: check_docs.py --write-api-index) -->"
API_INDEX_END = "<!-- api-index:end -->"


def _fences(text: str, lang: str) -> List[str]:
    """The bodies of every ```lang fenced block in ``text``."""
    return re.findall(
        rf"^```{lang}[ \t]*\n(.*?)^```[ \t]*$",
        text,
        flags=re.M | re.S,
    )


def _strip_fences(text: str) -> str:
    """``text`` with every fenced code block removed (for link scans)."""
    return re.sub(r"^```.*?^```[ \t]*$", "", text, flags=re.M | re.S)


def _slugify(heading: str) -> str:
    """GitHub's anchor slug for a markdown heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def _anchors(path: Path) -> set:
    """Every heading anchor ``path`` exposes."""
    out = set()
    for line in _strip_fences(path.read_text()).splitlines():
        m = re.match(r"#{1,6}\s+(.*)", line)
        if m:
            out.add(_slugify(m.group(1)))
    return out


def check_mermaid(path: Path) -> List[str]:
    """Validate every mermaid block in ``path``."""
    errors = []
    for i, body in enumerate(_fences(path.read_text(), "mermaid")):
        lines = [ln for ln in body.splitlines() if ln.strip()]
        where = f"{path.name} mermaid block {i + 1}"
        if not lines:
            errors.append(f"{where}: empty diagram")
            continue
        first = lines[0].strip()
        if not any(first.startswith(t) for t in MERMAID_TYPES):
            errors.append(
                f"{where}: unknown diagram type {first!r} "
                f"(expected one of {MERMAID_TYPES})"
            )
        if len(lines) < 2:
            errors.append(f"{where}: diagram has no content")
        for ln in lines:
            for op, cl in ("[]", "()", "{}"):
                if ln.count(op) != ln.count(cl):
                    errors.append(
                        f"{where}: unbalanced {op}{cl} in line {ln.strip()!r}"
                    )
    return errors


def check_links(path: Path) -> List[str]:
    """Validate every relative link (and anchor) in ``path``."""
    errors = []
    text = _strip_fences(path.read_text())
    for label, target in re.findall(r"\[([^\]]*)\]\(([^)\s]+)\)", text):
        if re.match(r"[a-z]+:", target):  # http:, https:, mailto:
            continue
        file_part, _, anchor = target.partition("#")
        dest = (
            (path.parent / file_part).resolve() if file_part else path
        )
        if file_part and not dest.exists():
            errors.append(
                f"{path.name}: link [{label}]({target}) -> missing file "
                f"{file_part}"
            )
            continue
        if anchor and dest.suffix == ".md":
            if anchor not in _anchors(dest):
                errors.append(
                    f"{path.name}: link [{label}]({target}) -> no heading "
                    f"#{anchor} in {dest.name}"
                )
    return errors


def check_snippets(path: Path) -> List[str]:
    """Byte-compile every embedded python snippet in ``path``."""
    errors = []
    for i, body in enumerate(_fences(path.read_text(), "python")):
        try:
            compile(body, f"{path.name}:snippet{i + 1}", "exec")
        except SyntaxError as exc:
            errors.append(
                f"{path.name} python snippet {i + 1}: {exc.msg} "
                f"(line {exc.lineno})"
            )
    return errors


def _public_members(modname: str):
    """Yield ``(qualname, object)`` for every documented-API member."""
    mod = importlib.import_module(modname)
    for name in sorted(mod.__all__):
        obj = getattr(mod, name)
        yield f"{modname}.{name}", obj
        if inspect.isclass(obj):
            for mname, m in sorted(vars(obj).items()):
                if mname.startswith("_"):
                    continue
                target = m.fget if isinstance(m, property) else m
                if callable(target):
                    yield f"{modname}.{name}.{mname}", target


def _first_line(doc) -> str:
    """First line of a docstring, tolerating None/empty."""
    return doc.splitlines()[0] if doc else ""


def check_docstrings() -> List[str]:
    """Every audited package and public member has a docstring."""
    errors = []
    for modname in API_MODULES:
        if not _first_line(inspect.getdoc(importlib.import_module(modname))):
            errors.append(f"missing module docstring: {modname}")
    for qualname, obj in [
        pair for modname in API_MODULES for pair in _public_members(modname)
    ]:
        if not (inspect.isclass(obj) or callable(obj)):
            continue  # constants document themselves in the module
        if not inspect.getdoc(obj):
            errors.append(f"missing docstring: {qualname}")
    return errors


def _kind(obj) -> str:
    if inspect.isclass(obj):
        return "class"
    if callable(obj):
        return "function"
    return "constant"


def render_api_index() -> str:
    """The generated public-API index (one table per package)."""
    lines: List[str] = []
    for modname in API_MODULES:
        mod = importlib.import_module(modname)
        lines.append(f"### `{modname}`")
        lines.append("")
        lines.append(_first_line(inspect.getdoc(mod)))
        lines.append("")
        lines.append("| name | kind | summary |")
        lines.append("|---|---|---|")
        for name in sorted(mod.__all__):
            obj = getattr(mod, name)
            kind = _kind(obj)
            if kind == "constant":
                summary = f"`{obj!r}`"
            else:
                summary = _first_line(inspect.getdoc(obj))
            lines.append(f"| `{name}` | {kind} | {summary} |")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def check_api_index(api_md: Path) -> List[str]:
    """docs/API.md's generated section matches the live packages."""
    text = api_md.read_text()
    if API_INDEX_BEGIN not in text or API_INDEX_END not in text:
        return [f"{api_md.name}: missing api-index markers"]
    current = text.split(API_INDEX_BEGIN)[1].split(API_INDEX_END)[0]
    if current.strip() != render_api_index().strip():
        return [
            f"{api_md.name}: generated API index is stale — run "
            f"`python docs/check_docs.py --write-api-index`"
        ]
    return []


def write_api_index(api_md: Path) -> None:
    """Refresh the generated section of docs/API.md in place."""
    text = api_md.read_text()
    head, _, rest = text.partition(API_INDEX_BEGIN)
    _, _, tail = rest.partition(API_INDEX_END)
    api_md.write_text(
        head
        + API_INDEX_BEGIN
        + "\n\n"
        + render_api_index()
        + "\n"
        + API_INDEX_END
        + tail
    )


def run_checks() -> List[str]:
    """Every documentation check; returns the list of failures."""
    errors: List[str] = []
    for rel in DOC_FILES:
        path = REPO / rel
        if not path.exists():
            errors.append(f"missing documentation file: {rel}")
            continue
        errors += check_mermaid(path)
        errors += check_links(path)
        errors += check_snippets(path)
    errors += check_docstrings()
    errors += check_api_index(REPO / "docs" / "API.md")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write-api-index",
        action="store_true",
        help="refresh the generated index in docs/API.md, then check",
    )
    args = parser.parse_args(argv)
    if args.write_api_index:
        write_api_index(REPO / "docs" / "API.md")
    errors = run_checks()
    for err in errors:
        print(f"DOCS: {err}", file=sys.stderr)
    if not errors:
        n_files = len(DOC_FILES)
        print(f"docs OK ({n_files} files, {len(API_MODULES)} packages)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
