"""Table 1 regeneration: hyperparameters and their evaluation values.

Asserts the library's defaults reproduce the paper's table verbatim and
prints the rows.  The benchmark measures hyperparameter-set
construction/validation cost (trivially fast — included so every table
in the paper has a bench target).
"""

import pytest

from repro.rl import Hyperparameters

#: (field, paper value) — Table 1 of the paper.
PAPER_TABLE_1 = [
    ("action_tick_length", 1.0),
    ("epsilon_initial", 1.0),
    ("epsilon_final", 0.05),
    ("discount_rate", 0.99),
    ("hidden_layer_size", 600),
    ("exploration_ticks", 7200),  # "2 h" at one action per second
    ("minibatch_size", 32),
    ("missing_entry_tolerance", 0.20),
    ("n_hidden_layers", 2),
    ("adam_learning_rate", 0.0001),
    ("sampling_tick_length", 1.0),
    ("sampling_ticks_per_observation", 10),
    ("target_network_update_rate", 0.01),
]


@pytest.mark.benchmark(group="table1")
def test_table1_hyperparameters(benchmark):
    hp = benchmark(Hyperparameters.paper_values)

    print("\nTable 1 — hyperparameters used in the CAPES evaluation")
    for name, paper_value in PAPER_TABLE_1:
        ours = getattr(hp, name)
        status = "ok" if ours == paper_value else "MISMATCH"
        print(f"  {name:>34} = {ours!r:>8}  (paper: {paper_value!r}) {status}")
        assert ours == paper_value, f"{name}: {ours!r} != paper {paper_value!r}"
