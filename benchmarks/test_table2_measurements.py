"""Table 2 regeneration: technical measurements of the CAPES system.

Measures, on our substrate, every row of the paper's Table 2:

- duration of one training step (a real pytest-benchmark timing of the
  32-observation minibatch update; the paper reports ≈0.1 s CPU /
  ≈0.01 s GPU — we additionally benchmark a naive per-sample Python
  loop as the analogue of the CPU/GPU batching gap);
- replay-DB record count and on-disk/in-memory sizes;
- DNN model size;
- performance indicators per client (44 with the paper's four servers);
- observation size in floats;
- average compressed message size per client per tick.

The cluster here is paper-shaped (4 servers, 5 clients) so the PI
counts line up with the published numbers.
"""

import numpy as np
import pytest

from benchmarks._harness import BENCH_HP, make_capes, random_rw_workload
from repro import ClusterConfig
from repro.nn import MLP, Adam
from repro.replaydb.records import Minibatch
from repro.rl import DQNAgent, Hyperparameters

#: Paper values for reference printing.
PAPER = {
    "train_step_cpu_s": 0.1,
    "train_step_gpu_s": 0.01,
    "replay_records": 250_000,
    "model_bytes": 84e6,
    "replay_disk_bytes": 0.5e9,
    "replay_memory_bytes": 1.5e9,
    "pis_per_client": 44,
    "observation_size": 1760,
    "message_bytes": 186,
}

SESSION_TICKS = 120


@pytest.fixture(scope="module")
def capes_session():
    capes = make_capes(
        random_rw_workload(1, 9),
        cluster=ClusterConfig(n_servers=4, n_clients=5),
        hp=Hyperparameters(
            hidden_layer_size=64,
            exploration_ticks=100,
            sampling_ticks_per_observation=10,
        ),
        seed=0,
    )
    capes.train(SESSION_TICKS)
    return capes


@pytest.mark.benchmark(group="table2")
def test_table2_training_step_duration(benchmark, capes_session):
    """Row 1: duration of one 32-observation minibatch training step."""
    capes = capes_session
    sampler = capes.env.make_sampler(seed=1)
    agent = capes.session.agent
    batch = sampler.sample_minibatch(agent.hp.minibatch_size)
    benchmark(agent.train_step, batch)
    # The vectorised step must be far below the paper's 0.1 s CPU time —
    # our observations are ~8x smaller, so anything near 0.1 s would
    # indicate a vectorisation bug.
    assert benchmark.stats["mean"] < PAPER["train_step_cpu_s"]


@pytest.mark.benchmark(group="table2")
def test_table2_batched_vs_naive_speedup(benchmark, capes_session):
    """The paper's GPU-vs-CPU 10x maps to batched-vs-per-sample here."""
    capes = capes_session
    sampler = capes.env.make_sampler(seed=2)
    agent = capes.session.agent
    batch = sampler.sample_minibatch(32)

    def naive_per_sample():
        # one SGD step per single-observation "minibatch"
        for i in range(32):
            sub = Minibatch(
                s_t=batch.s_t[i : i + 1],
                s_next=batch.s_next[i : i + 1],
                actions=batch.actions[i : i + 1],
                rewards=batch.rewards[i : i + 1],
            )
            agent.train_step(sub)

    import time

    t0 = time.perf_counter()
    agent.train_step(batch)
    batched = time.perf_counter() - t0

    t0 = time.perf_counter()
    naive_per_sample()
    naive = time.perf_counter() - t0

    benchmark(agent.train_step, batch)
    speedup = naive / batched if batched > 0 else float("inf")
    print(f"\nbatched step: {batched * 1e3:.2f} ms, naive per-sample loop: "
          f"{naive * 1e3:.2f} ms -> speedup {speedup:.1f}x "
          f"(paper GPU/CPU: 10x)")
    assert speedup > 2.0


@pytest.mark.benchmark(group="table2")
def test_table2_system_measurements(benchmark, capes_session):
    """Rows 3-9: sizes and counts, measured then printed vs paper."""
    capes = capes_session
    m = benchmark(capes.technical_measurements)

    print("\nTable 2 — technical measurements (ours vs paper)")
    print(f"  replay records:        {m['replay_records']:>10} "
          f"(paper {PAPER['replay_records']:,} after 70 h; ours after "
          f"{SESSION_TICKS} ticks)")
    print(f"  replay DB on disk:     {m['replay_disk_bytes']:>10,} B "
          f"(paper ~0.5 GB)")
    print(f"  replay DB in memory:   {m['replay_memory_bytes']:>10,} B "
          f"(paper ~1.5 GB at capacity)")
    print(f"  DNN model size:        {m['model_bytes']:>10,} B "
          f"(paper 84 MB at 600-wide hidden layers)")
    print(f"  PIs per client:        {m['pis_per_client']:>10} "
          f"(paper {PAPER['pis_per_client']})")
    print(f"  observation size:      {m['observation_size']:>10} floats "
          f"(paper {PAPER['observation_size']})")
    print(f"  mean message size:     {m['mean_message_bytes']:>10.1f} B "
          f"(paper ~{PAPER['message_bytes']} B)")

    # Shape assertions: the PI layout must reproduce the paper's counts.
    assert m["pis_per_client"] == PAPER["pis_per_client"]
    assert m["replay_records"] >= SESSION_TICKS
    # Differential+zlib messages should be the same order of magnitude
    # as the paper's ~186 B per client per tick.
    assert 20 <= m["mean_message_bytes"] <= 1000


@pytest.mark.benchmark(group="table2")
def test_table2_paper_sized_model_bytes(benchmark):
    """At the paper's exact topology (1760 obs, 600 hidden, 5 actions)
    the model should be tens of MB, matching the reported 84 MB order."""

    def build():
        return MLP.for_q_network(1760, 5, hidden_size=600, rng=0)

    net = benchmark(build)
    # value+grad storage, float64 (paper used float32 TF — same order)
    mb = net.nbytes() / 1e6
    print(f"\npaper-topology model: {net.num_parameters():,} parameters, "
          f"{mb:.1f} MB resident (paper: 84 MB)")
    assert 10 <= mb <= 200
