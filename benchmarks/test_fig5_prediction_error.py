"""Figure 5 regeneration: prediction error over the training session.

"The prediction error shows the difference between the DNN's predicted
performance and the real performance. ... the prediction error
decreases steadily as the training session continues after an initial
warm up period."

The prediction error is the Equation 1 minibatch loss the DRL engine
minimises; we train a session and verify the trace declines from its
early plateau, printing a downsampled curve.
"""

import numpy as np
import pytest

from benchmarks._harness import TRAIN_TICKS, make_capes, random_rw_workload

_cache = {}


def run_training_trace() -> np.ndarray:
    if "losses" not in _cache:
        capes = make_capes(random_rw_workload(1, 9), seed=33)
        result = capes.train(TRAIN_TICKS)
        _cache["losses"] = result.losses
    return _cache["losses"]


@pytest.mark.benchmark(group="fig5")
def test_fig5_prediction_error_declines(benchmark):
    losses = benchmark.pedantic(run_training_trace, rounds=1, iterations=1)
    assert len(losses) > 200

    # Downsampled curve for the report.
    chunks = np.array_split(losses, 10)
    means = [float(c.mean()) for c in chunks]
    print("\nFigure 5 — prediction error during training (10 deciles):")
    print("  " + "  ".join(f"{m:.4f}" for m in means))

    early = float(np.mean(losses[: len(losses) // 5]))
    late = float(np.mean(losses[-len(losses) // 5 :]))
    print(f"  early mean {early:.4f} -> late mean {late:.4f}")
    assert late < early * 0.5, "prediction error did not decline"
    assert np.isfinite(losses).all()
