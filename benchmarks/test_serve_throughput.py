"""Control-plane serving throughput: a swarm against the live daemon.

The deployed-shape claim of the serve subsystem, measured end to end:
one :class:`~repro.serve.server.CapesServer` (serial trainer bursting
between decisions, exactly the continuous-DRL-engine shape of §3)
serving ``REPRO_SERVE_CLIENTS`` concurrent simulated clusters — each a
:class:`~repro.sim.vec.fleet_env.FleetEnv` slot streaming real §3.3
differential telemetry over real TCP sockets and applying the
decisions it gets back.

Recorded per run (``BENCH_serve.json`` at the repository root, CI
uploads it as an artifact on every run):

- decisions/s across the swarm and the full round-trip decision
  latency (p50/p99) a monitoring agent would experience;
- compressed wire bytes per client and the live compression ratio —
  the Table 2 "average message size" economics on served traffic;
- trainer progress (SGD steps attempted, checkpoints broadcast) made
  *while* serving, which is the overlap the daemon exists to provide.

The default swarm is 64 clients (the acceptance floor for this
subsystem); CI runs a smaller smoke swarm via ``REPRO_SERVE_CLIENTS``.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.env import make_env
from repro.env.registry import _default_workload
from repro.rl import Hyperparameters
from repro.serve import CapesServer, ServeConfig, ServerThread, run_swarm_sync

N_CLIENTS = int(os.environ.get("REPRO_SERVE_CLIENTS", "64"))
#: Environment steps per client; each step emits one telemetry frame.
TICKS_PER_CLIENT = int(os.environ.get("REPRO_SERVE_TICKS", "30"))
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

BENCH_HP = Hyperparameters(
    hidden_layer_size=32,
    exploration_ticks=400,
    sampling_ticks_per_observation=5,
)


@pytest.fixture(scope="module")
def bench():
    """One serving session: N fleet slots against one live daemon."""
    fleet = make_env(
        "sim-lustre-vec",
        seed=11,
        cluster=ClusterConfig(n_servers=1, n_clients=2),
        hp=BENCH_HP,
        workload_factory=_default_workload,
        n_envs=N_CLIENTS,
    )
    fleet.reset()
    config = ServeConfig(
        frame_width=fleet.frame_dim,
        n_actions=fleet.n_actions,
        port=0,
        max_clients=N_CLIENTS,
        # A short session: a small stride keeps the tick-indexed replay
        # ring (max_clients * tick_stride rows) proportionate.
        tick_stride=256,
        trainer_backend="serial",
        train_ratio=1.0,
        sync_every=64,
        seed=11,
        hp=BENCH_HP,
    )
    server = CapesServer(config)
    with ServerThread(server) as thread:
        report = run_swarm_sync(
            "127.0.0.1", thread.port, fleet, TICKS_PER_CLIENT
        )
        snapshot = server.stats_snapshot()
    fleet.close()
    payload = report.to_json()
    payload["ticks_per_client"] = TICKS_PER_CLIENT
    payload["cpu_count"] = os.cpu_count()
    payload["trainer"] = snapshot["trainer"]
    payload["checkpoints_broadcast"] = snapshot["checkpoints_broadcast"]
    payload["server_wire"] = snapshot["wire"]
    return report, payload


def test_serve_swarm_records_bench_json(bench):
    report, payload = bench
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nserve throughput ({N_CLIENTS} clients): " + json.dumps(payload))
    # Every client survived the session and completed its tick budget.
    assert report.errors == 0, [r.error for r in report.clients if r.error]
    assert report.n_clients == N_CLIENTS
    assert report.ticks >= N_CLIENTS * TICKS_PER_CLIENT
    # The swarm actually exercised the decision path, not just warm-up.
    assert report.decisions >= N_CLIENTS
    assert all(r.decisions > 0 for r in report.clients)
    assert report.decisions_per_s > 0
    assert np.isfinite(report.latency_p50_ms)
    assert report.latency_p99_ms >= report.latency_p50_ms
    # Real wire traffic was measured on every connection.
    assert report.bytes_per_client > 0
    assert payload["server_wire"]["messages"] == report.ticks


def test_serve_swarm_trains_while_serving(bench):
    """The §3 overlap: the trainer made progress during the session."""
    _, payload = bench
    trainer = payload["trainer"]
    assert trainer is not None and trainer["backend"] == "serial"
    assert trainer["steps_attempted"] > 0
    # Weight broadcasts reached the swarm (sync_every=64 guarantees at
    # least one version bump over N_CLIENTS * decided ticks of budget).
    assert payload["checkpoints_broadcast"] >= 1


def test_serve_swarm_resyncs_absent_on_clean_run(bench):
    """A healthy swarm never needs RESYNC: fresh encoders per connect."""
    report, _ = bench
    assert report.resyncs == 0
