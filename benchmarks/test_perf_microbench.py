"""Substrate micro-benchmarks (engine, codec, sampler, DNN).

Not a paper table — these guard the performance assumptions the
experiment harness relies on: the discrete-event engine must sustain
~10⁵ events/s, the wire codec and the Algorithm 1 sampler must be far
off the critical path, and one DNN training step must be milliseconds.
"""

import numpy as np
import pytest

from repro.nn import MLP, Adam
from repro.nn.losses import mse_loss
from repro.replaydb import MinibatchSampler, ReplayDB
from repro.sim import Simulator, Timeout
from repro.telemetry import DifferentialDecoder, DifferentialEncoder


@pytest.mark.benchmark(group="perf")
def test_perf_engine_event_throughput(benchmark):
    """Raw event dispatch rate of the simulator core."""

    def run():
        sim = Simulator()

        def chain(n):
            for _ in range(n):
                yield Timeout(0.001)

        for _ in range(10):
            sim.spawn(chain(1000))
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    rate = events / benchmark.stats["mean"]
    print(f"\nengine: {events} events in {benchmark.stats['mean'] * 1e3:.1f} ms "
          f"-> {rate / 1e3:.0f}k events/s")
    assert rate > 50_000


@pytest.mark.benchmark(group="perf")
def test_perf_wire_codec_roundtrip(benchmark):
    rng = np.random.default_rng(0)
    frames = rng.normal(size=(100, 220))  # cluster frame, 5 clients

    def run():
        enc = DifferentialEncoder(220)
        dec = DifferentialDecoder(220)
        for t in range(100):
            dec.decode(enc.encode(t, frames[t]))

    benchmark(run)
    per_msg = benchmark.stats["mean"] / 100
    print(f"\nwire codec: {per_msg * 1e6:.1f} us per encode+decode")
    assert per_msg < 0.005


@pytest.mark.benchmark(group="perf")
def test_perf_sampler_minibatch(benchmark):
    db = ReplayDB(220)
    rng = np.random.default_rng(0)
    for t in range(2000):
        db.put_observation(t, rng.normal(size=220), reward=1.0)
        db.put_action(t, 1)
    sampler = MinibatchSampler(db.cache, obs_ticks=10, seed=0)
    benchmark(sampler.sample_minibatch, 32)
    print(f"\nsampler: {benchmark.stats['mean'] * 1e3:.2f} ms per "
          f"32-transition minibatch")
    assert benchmark.stats["mean"] < 0.1


@pytest.mark.benchmark(group="perf")
def test_perf_dnn_forward_backward(benchmark):
    net = MLP.for_q_network(1100, 5, hidden_size=64, rng=0)
    opt = Adam(lr=1e-4)
    x = np.random.default_rng(0).normal(size=(32, 1100))
    target = np.zeros((32, 5))

    def step():
        net.zero_grad()
        loss, grad = mse_loss(net.forward(x), target)
        net.backward(grad)
        opt.step(net.parameters())
        return loss

    benchmark(step)
    print(f"\nDNN step (bench topology): "
          f"{benchmark.stats['mean'] * 1e3:.2f} ms")
    assert benchmark.stats["mean"] < 0.1
