"""Substrate micro-benchmarks (engine, codec, sampler, DNN, vec fleet).

Not a paper table — these guard the performance assumptions the
experiment harness relies on: the discrete-event engine must sustain
~10⁵ events/s, the wire codec and the Algorithm 1 sampler must be far
off the critical path, one DNN training step must be milliseconds, and
the struct-of-arrays fleet kernel (``repro.sim.vec``) must advance a
16-cluster fleet at least 5x faster than the reference engine advances
the same clusters one by one.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.nn import MLP, Adam
from repro.nn.losses import mse_loss
from repro.replaydb import MinibatchSampler, ReplayDB
from repro.sim import Simulator, Timeout
from repro.telemetry import DifferentialDecoder, DifferentialEncoder

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_collect.json"


@pytest.mark.benchmark(group="perf")
def test_perf_engine_event_throughput(benchmark):
    """Raw event dispatch rate of the simulator core."""

    def run():
        sim = Simulator()

        def chain(n):
            for _ in range(n):
                yield Timeout(0.001)

        for _ in range(10):
            sim.spawn(chain(1000))
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    rate = events / benchmark.stats["mean"]
    print(f"\nengine: {events} events in {benchmark.stats['mean'] * 1e3:.1f} ms "
          f"-> {rate / 1e3:.0f}k events/s")
    assert rate > 50_000


def test_perf_tick_all():
    """One ``tick_all`` over a 16-cluster fleet vs 16 reference envs.

    The tentpole claim of the vec engine: advancing N clusters as rows
    of shared numpy arrays must beat the discrete-event reference
    advancing the same N clusters sequentially — by >= 5x on a single
    core, no skip gating (the kernel needs no parallelism to win).
    Merges ``vec_ticks_per_s`` / ``vec_collect_speedup`` into
    ``BENCH_collect.json`` (read-modify-write: the collect-throughput
    bench owns the file's other rows).
    """
    from repro.cluster import ClusterConfig
    from repro.env import EnvConfig, StorageTuningEnv, make_env
    from repro.rl import Hyperparameters
    from repro.workloads import RandomReadWrite

    def workload(cluster, seed):
        return RandomReadWrite(
            cluster, read_fraction=0.1, seed=seed, instances_per_client=5
        )

    hp = Hyperparameters(
        hidden_layer_size=64,
        exploration_ticks=800,
        sampling_ticks_per_observation=10,
    )
    kw = dict(
        cluster=ClusterConfig(n_servers=2, n_clients=3),
        workload_factory=workload,
        hp=hp,
        seed=42,
    )
    n_vec, vec_ticks = 16, 200
    ref_ticks = 30

    fleet = make_env("sim-lustre-vec", n_envs=n_vec, **kw)
    fleet.reset()
    fleet.run_chunk(10)  # warm caches/JIT'd ufunc paths out of the timing
    t0 = time.perf_counter()
    fleet.run_chunk(vec_ticks)
    vec_rate = n_vec * vec_ticks / (time.perf_counter() - t0)
    fleet.close()

    # Reference per-env rate from one env (the N-loop is sequential, so
    # its aggregate rate equals the single-env rate).
    env = StorageTuningEnv(EnvConfig(**kw))
    env.reset()
    t0 = time.perf_counter()
    env.run_ticks(ref_ticks)
    ref_rate = ref_ticks / (time.perf_counter() - t0)
    env.close()

    speedup = vec_rate / ref_rate
    print(
        f"\ntick_all: {vec_rate:.0f} env-ticks/s over {n_vec} clusters "
        f"vs {ref_rate:.1f}/s reference -> {speedup:.0f}x"
    )
    bench = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    bench.update(
        vec_n_envs=n_vec,
        vec_ticks_per_s=round(vec_rate, 1),
        vec_collect_speedup=round(speedup, 2),
    )
    BENCH_PATH.write_text(json.dumps(bench, indent=2) + "\n")
    assert speedup >= 5.0, (vec_rate, ref_rate)


@pytest.mark.benchmark(group="perf")
def test_perf_wire_codec_roundtrip(benchmark):
    rng = np.random.default_rng(0)
    frames = rng.normal(size=(100, 220))  # cluster frame, 5 clients

    def run():
        enc = DifferentialEncoder(220)
        dec = DifferentialDecoder(220)
        for t in range(100):
            dec.decode(enc.encode(t, frames[t]))

    benchmark(run)
    per_msg = benchmark.stats["mean"] / 100
    print(f"\nwire codec: {per_msg * 1e6:.1f} us per encode+decode")
    assert per_msg < 0.005


@pytest.mark.benchmark(group="perf")
def test_perf_sampler_minibatch(benchmark):
    db = ReplayDB(220)
    rng = np.random.default_rng(0)
    for t in range(2000):
        db.put_observation(t, rng.normal(size=220), reward=1.0)
        db.put_action(t, 1)
    sampler = MinibatchSampler(db.cache, obs_ticks=10, seed=0)
    benchmark(sampler.sample_minibatch, 32)
    print(f"\nsampler: {benchmark.stats['mean'] * 1e3:.2f} ms per "
          f"32-transition minibatch")
    assert benchmark.stats["mean"] < 0.1


@pytest.mark.benchmark(group="perf")
def test_perf_dnn_forward_backward(benchmark):
    net = MLP.for_q_network(1100, 5, hidden_size=64, rng=0)
    opt = Adam(lr=1e-4)
    x = np.random.default_rng(0).normal(size=(32, 1100))
    target = np.zeros((32, 5))

    def step():
        net.zero_grad()
        loss, grad = mse_loss(net.forward(x), target)
        net.backward(grad)
        opt.step(net.parameters())
        return loss

    benchmark(step)
    print(f"\nDNN step (bench topology): "
          f"{benchmark.stats['mean'] * 1e3:.2f} ms")
    assert benchmark.stats["mean"] < 0.1
