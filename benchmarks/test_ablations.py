"""Design-choice ablations (DESIGN.md §4, beyond-paper index row).

Four ablations over the mechanisms the paper singles out:

1. **Target network** (§3.4): hard-coupled targets (α=1) vs the paper's
   slow updates — slow updates must not destabilise, and we report the
   loss volatility of each.
2. **Double DQN** (§6 future work, "new deep learning techniques"):
   vanilla max-operator targets vs decoupled selection/valuation.
3. **Device dependence**: the elevator-scheduling advantage CAPES
   exploits exists on rotating media; on SSDs the window sweep must be
   nearly flat, so a tuner has little to find.
4. **Differential wire protocol** (§3.3): message bytes with and
   without send-on-change encoding.
"""

import numpy as np
import pytest

from benchmarks._harness import (
    BENCH_HP,
    bench_cluster,
    make_capes,
    random_rw_workload,
)
from repro import ClusterConfig, EnvConfig, StorageTuningEnv
from repro.rl import Hyperparameters
from repro.telemetry import DifferentialEncoder
from repro.workloads import RandomReadWrite

ABL_TICKS = 700


def _train_losses(alpha: float, double: bool, seed: int = 77) -> np.ndarray:
    hp = Hyperparameters(
        hidden_layer_size=BENCH_HP.hidden_layer_size,
        exploration_ticks=BENCH_HP.exploration_ticks,
        sampling_ticks_per_observation=BENCH_HP.sampling_ticks_per_observation,
        adam_learning_rate=BENCH_HP.adam_learning_rate,
        discount_rate=BENCH_HP.discount_rate,
        target_network_update_rate=alpha,
    )
    capes = make_capes(random_rw_workload(1, 9), seed=seed, hp=hp)
    capes.session.agent.double_dqn = double
    result = capes.train(ABL_TICKS)
    return result.losses


@pytest.mark.benchmark(group="ablations")
def test_ablation_target_network(benchmark):
    """Slow target updates vs no target network (α = 1)."""

    def run():
        return {
            "slow": _train_losses(alpha=0.02, double=False),
            "hard": _train_losses(alpha=1.0, double=False),
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    tail = ABL_TICKS

    def volatility(losses: np.ndarray) -> float:
        # Coefficient of variation: the two configurations converge to
        # different loss plateaus and σ scales with the plateau, so raw
        # σ would conflate "converged higher" with "less stable".
        late = losses[-tail:]
        return float(np.std(late) / np.mean(late))

    slow_vol = volatility(out["slow"])
    hard_vol = volatility(out["hard"])
    print(f"\nAblation: target network — late loss volatility (CV) "
          f"slow-update {slow_vol:.3f} vs hard-coupled {hard_vol:.3f}")
    assert np.isfinite(out["slow"]).all() and np.isfinite(out["hard"]).all()
    # The paper's choice must at least not be *less* stable.
    assert slow_vol <= hard_vol * 2.0


@pytest.mark.benchmark(group="ablations")
def test_ablation_double_dqn(benchmark):
    """Vanilla vs double-DQN targets: both must converge; report both."""

    def run():
        return {
            "vanilla": _train_losses(alpha=0.02, double=False, seed=78),
            "double": _train_losses(alpha=0.02, double=True, seed=78),
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    v_late = float(np.mean(out["vanilla"][-200:]))
    d_late = float(np.mean(out["double"][-200:]))
    print(f"\nAblation: double DQN — late loss vanilla {v_late:.5f} "
          f"vs double {d_late:.5f}")
    assert v_late < np.mean(out["vanilla"][:100])
    assert d_late < np.mean(out["double"][:100])


def _window_sweep(disk_kind: str) -> dict:
    out = {}
    for w in (1, 4, 8, 16, 32):
        env = StorageTuningEnv(
            EnvConfig(
                cluster=ClusterConfig(
                    n_servers=2, n_clients=5, disk_kind=disk_kind
                ),
                workload_factory=lambda c, s: RandomReadWrite(
                    c, read_fraction=0.1, instances_per_client=5, seed=s
                ),
                seed=1,
            )
        )
        env.reset()
        env.set_params({"max_rpcs_in_flight": w})
        env.run_ticks(15)
        out[w] = float(np.mean(env.run_ticks(50)))
        env.close()
    return out


@pytest.mark.benchmark(group="ablations")
def test_ablation_hdd_vs_ssd_sensitivity(benchmark):
    """The tuning opportunity is a rotating-media phenomenon."""

    def run():
        return {"hdd": _window_sweep("hdd"), "ssd": _window_sweep("ssd")}

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    def spread(d):
        vals = np.array(list(d.values()))
        return float((vals.max() - vals.min()) / vals.max())

    hdd_spread = spread(out["hdd"])
    ssd_spread = spread(out["ssd"])
    print(f"\nAblation: window sensitivity — relative throughput spread "
          f"HDD {hdd_spread:.2f} vs SSD {ssd_spread:.2f}")
    for kind in ("hdd", "ssd"):
        row = "  ".join(f"w{w}={v * 100:.1f}" for w, v in out[kind].items())
        print(f"  {kind}: {row} MB/s")
    assert hdd_spread > 2 * ssd_spread


@pytest.mark.benchmark(group="ablations")
def test_ablation_differential_wire_protocol(benchmark):
    """Send-on-change + zlib vs naive full-frame resends."""
    rng = np.random.default_rng(0)
    width = 44  # the paper's per-client PI count
    frames = []
    state = rng.normal(size=width)
    for _ in range(300):
        # realistic: a handful of indicators move per tick
        mask = rng.random(width) < 0.15
        state = state + mask * rng.normal(size=width)
        frames.append(state.copy())

    def run():
        diff = DifferentialEncoder(width)
        for t, f in enumerate(frames):
            diff.encode(t, f)
        full = DifferentialEncoder(width)
        for t, f in enumerate(frames):
            full.reset()  # forces full-frame resend every tick
            full.encode(t, f)
        return diff.stats, full.stats

    diff_stats, full_stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nAblation: wire protocol — differential "
          f"{diff_stats.mean_message_size:.1f} B/msg vs full resend "
          f"{full_stats.mean_message_size:.1f} B/msg "
          f"(paper: ~186 B per client per tick)")
    assert diff_stats.mean_message_size < full_stats.mean_message_size
