"""Shared builders for the experiment-regeneration benchmarks.

Every figure/table benchmark drives the same compressed experimental
setup so results are comparable across files:

- a 2-server / 3-client cluster (the paper's 4×5 testbed scaled down so
  a full figure regenerates in minutes — Table 2's measurements use the
  paper-shaped 4×4+5 cluster where layout matters);
- Table 1 hyperparameters except a compressed ε-anneal horizon and a
  64-unit hidden layer (the paper's 600-unit network matched its 1760-
  float observations; our compressed observations are ~660 floats);
- training sessions of ``TRAIN_TICKS`` as the "12-hour" proxy and twice
  that as the "24-hour" proxy; all evaluation windows are
  ``EVAL_TICKS`` long.

EXPERIMENTS.md records the mapping from these compressed sessions to
the paper's wall-clock sessions.

Orchestration (build cluster → run tuner → measure before/after) lives
in :mod:`repro.exp`; this module only provides spec builders
(:func:`bench_spec`), the :func:`run_specs` entry point (parallelism
via the ``REPRO_BENCH_JOBS`` environment variable), and row formatting.
:func:`make_capes` remains for the trace-level experiments (Figures
4-6, Table 2, ablations) that reach inside a session.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence, Tuple, Union

from repro import CAPES, CapesConfig, ClusterConfig, EnvConfig
from repro.exp import (
    ExperimentResults,
    ExperimentRunner,
    ExperimentSpec,
    PhaseResult,
    RunBudget,
    WorkloadSpec,
)
from repro.rl import Hyperparameters
from repro.util.units import KiB, MiB

#: Compressed session sizes (ticks = simulated seconds).
TRAIN_TICKS = 1500  # "12-hour" training proxy
TRAIN_TICKS_EXTRA = 700  # additional ticks for the "24-hour" proxy
EVAL_TICKS = 150

#: Objective scale: ThroughputObjective reports units of 100 MB/s.
MBPS_PER_UNIT = 100.0

#: Compressed-session hyperparameters.  Table 1's values are tuned for
#: 43k-86k-tick sessions; a 1.5k-tick session needs a faster learning
#: rate, shorter reward horizon and quicker target tracking to converge
#: (EXPERIMENTS.md documents this mapping).
BENCH_HP = Hyperparameters(
    hidden_layer_size=64,
    exploration_ticks=800,
    sampling_ticks_per_observation=10,
    adam_learning_rate=5e-4,
    discount_rate=0.9,
    target_network_update_rate=0.02,
)

#: SGD updates per action tick for compressed sessions.
TRAIN_STEPS_PER_TICK = 4


#: The paper's testbed is 4 servers × 5 clients.  The benchmarks keep
#: the five clients — the per-server inflow (5 clients × window 8 = 40
#: outstanding RPCs) is what pushes the default configuration into
#: congestion collapse, the effect CAPES exploits — but halve the server
#: count to halve simulation cost.  Per-server physics are identical.
def bench_cluster(n_servers: int = 2, n_clients: int = 5) -> ClusterConfig:
    return ClusterConfig(n_servers=n_servers, n_clients=n_clients)


def random_rw_workload(read_parts: int, write_parts: int) -> WorkloadSpec:
    frac = read_parts / (read_parts + write_parts)
    return WorkloadSpec(
        "random_rw", {"read_fraction": frac, "instances_per_client": 5}
    )


def fileserver_workload() -> WorkloadSpec:
    return WorkloadSpec(
        "fileserver",
        {"file_size": 2 * MiB, "io_size": 256 * KiB, "instances_per_client": 8},
    )


def seqwrite_workload() -> WorkloadSpec:
    return WorkloadSpec(
        "seqwrite", {"record_size": MiB, "instances_per_client": 5}
    )


def bench_spec(
    workload: WorkloadSpec,
    seed: int = 42,
    scenario: str = "",
    tuner: str = "capes",
    checkpoints: Union[int, Tuple[int, ...]] = (TRAIN_TICKS,),
    eval_ticks: int = EVAL_TICKS,
    cluster: Optional[ClusterConfig] = None,
    hp: Optional[Hyperparameters] = None,
    perturb_seed: int = 0,
    n_envs: int = 1,
    vector_backend: str = "serial",
) -> ExperimentSpec:
    """One benchmark session as a declarative spec.

    ``n_envs > 1`` asks for vectorized multi-cluster collection (capes
    tuner only); environments are always named by registry key, so a
    future non-simulated backend drops in here unchanged.
    """
    tuner_kwargs = {}
    if tuner == "capes":
        tuner_kwargs = {
            "train_steps_per_tick": TRAIN_STEPS_PER_TICK,
            "loss": "huber",
        }
    return ExperimentSpec(
        tuner=tuner,
        seed=seed,
        scenario=scenario or workload.name,
        workload=workload,
        cluster=cluster or bench_cluster(),
        hp=hp or BENCH_HP,
        budget=RunBudget(train_ticks=checkpoints, eval_ticks=eval_ticks),
        tuner_kwargs=tuner_kwargs,
        perturb_seed=perturb_seed,
        n_envs=n_envs,
        vector_backend=vector_backend,
    )


def run_specs(specs: Sequence[ExperimentSpec]) -> ExperimentResults:
    """Run benchmark specs through the shared experiment runner.

    Serial by default so figure regeneration stays deterministic on any
    box; set ``REPRO_BENCH_JOBS=N`` to fan independent sessions out
    over N worker processes (per-run results are identical either way).
    """
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    return ExperimentRunner(jobs=jobs).run(specs)


def make_capes(
    workload: WorkloadSpec,
    seed: int = 42,
    cluster: Optional[ClusterConfig] = None,
    hp: Optional[Hyperparameters] = None,
    perturb_seed: int = 0,
) -> CAPES:
    """A hand-held session for experiments that reach inside the agent."""
    return CAPES(
        CapesConfig(
            env=EnvConfig(
                cluster=cluster or bench_cluster(),
                workload_factory=workload.factory(),
                hp=hp or BENCH_HP,
                seed=seed,
                perturb_seed=perturb_seed,
            ),
            seed=seed,
            train_steps_per_tick=TRAIN_STEPS_PER_TICK,
            loss="huber",
        )
    )


def phase_row(phase: PhaseResult) -> dict:
    """The paper-style before/after row for one measurement checkpoint."""
    cmp = phase.comparison()
    return {
        "baseline_mbps": cmp.baseline.mean * MBPS_PER_UNIT,
        "baseline_ci": cmp.baseline.ci_halfwidth * MBPS_PER_UNIT,
        "tuned_mbps": cmp.tuned.mean * MBPS_PER_UNIT,
        "tuned_ci": cmp.tuned.ci_halfwidth * MBPS_PER_UNIT,
        "percent": cmp.percent,
        "significant": cmp.significant,
        "final_params": phase.final_params,
    }


def fmt_row(label: str, row: dict) -> str:
    return (
        f"{label:>14}: baseline {row['baseline_mbps']:6.1f}"
        f"±{row['baseline_ci']:4.1f} MB/s -> tuned "
        f"{row['tuned_mbps']:6.1f}±{row['tuned_ci']:4.1f} MB/s "
        f"({row['percent']:+5.1f}%{'*' if row['significant'] else ' '})"
    )
