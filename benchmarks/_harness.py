"""Shared builders for the experiment-regeneration benchmarks.

Every figure/table benchmark drives the same compressed experimental
setup so results are comparable across files:

- a 2-server / 3-client cluster (the paper's 4×5 testbed scaled down so
  a full figure regenerates in minutes — Table 2's measurements use the
  paper-shaped 4×4+5 cluster where layout matters);
- Table 1 hyperparameters except a compressed ε-anneal horizon and a
  64-unit hidden layer (the paper's 600-unit network matched its 1760-
  float observations; our compressed observations are ~660 floats);
- training sessions of ``TRAIN_TICKS`` as the "12-hour" proxy and twice
  that as the "24-hour" proxy; all evaluation windows are
  ``EVAL_TICKS`` long.

EXPERIMENTS.md records the mapping from these compressed sessions to
the paper's wall-clock sessions.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro import CAPES, CapesConfig, ClusterConfig, EnvConfig
from repro.rl import Hyperparameters
from repro.stats import compare_measurements
from repro.util.units import KiB, MiB
from repro.workloads import FileServer, RandomReadWrite, SequentialWrite

#: Compressed session sizes (ticks = simulated seconds).
TRAIN_TICKS = 1500  # "12-hour" training proxy
TRAIN_TICKS_EXTRA = 700  # additional ticks for the "24-hour" proxy
EVAL_TICKS = 150

#: Objective scale: ThroughputObjective reports units of 100 MB/s.
MBPS_PER_UNIT = 100.0

#: Compressed-session hyperparameters.  Table 1's values are tuned for
#: 43k-86k-tick sessions; a 1.5k-tick session needs a faster learning
#: rate, shorter reward horizon and quicker target tracking to converge
#: (EXPERIMENTS.md documents this mapping).
BENCH_HP = Hyperparameters(
    hidden_layer_size=64,
    exploration_ticks=800,
    sampling_ticks_per_observation=10,
    adam_learning_rate=5e-4,
    discount_rate=0.9,
    target_network_update_rate=0.02,
)

#: SGD updates per action tick for compressed sessions.
TRAIN_STEPS_PER_TICK = 4

#: The paper's testbed is 4 servers × 5 clients.  The benchmarks keep
#: the five clients — the per-server inflow (5 clients × window 8 = 40
#: outstanding RPCs) is what pushes the default configuration into
#: congestion collapse, the effect CAPES exploits — but halve the server
#: count to halve simulation cost.  Per-server physics are identical.
def bench_cluster(n_servers: int = 2, n_clients: int = 5) -> ClusterConfig:
    return ClusterConfig(n_servers=n_servers, n_clients=n_clients)


def random_rw_factory(read_parts: int, write_parts: int) -> Callable:
    frac = read_parts / (read_parts + write_parts)
    return lambda cluster, seed: RandomReadWrite(
        cluster, read_fraction=frac, instances_per_client=5, seed=seed
    )


def fileserver_factory() -> Callable:
    return lambda cluster, seed: FileServer(
        cluster,
        file_size=2 * MiB,
        io_size=256 * KiB,
        instances_per_client=8,
        seed=seed,
    )


def seqwrite_factory() -> Callable:
    return lambda cluster, seed: SequentialWrite(
        cluster, record_size=MiB, instances_per_client=5, seed=seed
    )


def make_capes(
    workload_factory: Callable,
    seed: int = 42,
    cluster: Optional[ClusterConfig] = None,
    hp: Optional[Hyperparameters] = None,
    perturb_seed: int = 0,
) -> CAPES:
    return CAPES(
        CapesConfig(
            env=EnvConfig(
                cluster=cluster or bench_cluster(),
                workload_factory=workload_factory,
                hp=hp or BENCH_HP,
                seed=seed,
                perturb_seed=perturb_seed,
            ),
            seed=seed,
            train_steps_per_tick=TRAIN_STEPS_PER_TICK,
            loss="huber",
        )
    )


def before_after(
    capes: CAPES,
    train_ticks: int,
    eval_ticks: int = EVAL_TICKS,
):
    """The paper's evaluation workflow: train, baseline, tuned, compare."""
    capes.train(train_ticks)
    capes.env.set_params(capes.env.action_space.defaults())
    baseline = capes.measure_baseline(eval_ticks)
    tuned = capes.evaluate(eval_ticks)
    cmp = compare_measurements(baseline, tuned.rewards)
    return {
        "baseline_mbps": cmp.baseline.mean * MBPS_PER_UNIT,
        "baseline_ci": cmp.baseline.ci_halfwidth * MBPS_PER_UNIT,
        "tuned_mbps": cmp.tuned.mean * MBPS_PER_UNIT,
        "tuned_ci": cmp.tuned.ci_halfwidth * MBPS_PER_UNIT,
        "percent": cmp.percent,
        "significant": cmp.significant,
        "final_params": tuned.final_params,
    }


def fmt_row(label: str, row: dict) -> str:
    return (
        f"{label:>14}: baseline {row['baseline_mbps']:6.1f}"
        f"±{row['baseline_ci']:4.1f} MB/s -> tuned "
        f"{row['tuned_mbps']:6.1f}±{row['tuned_ci']:4.1f} MB/s "
        f"({row['percent']:+5.1f}%{'*' if row['significant'] else ' '})"
    )
