"""Collection hooks for the figure/table regeneration suite.

Every benchmark here trains at least one compressed session (minutes
each), so the whole directory is marked ``slow``: the fast development
loop is ``pytest -m "not slow"``, while the full tier-1 run keeps
executing everything.
"""

from pathlib import Path

import pytest

_BENCH_DIR = Path(__file__).parent


def pytest_collection_modifyitems(items):
    for item in items:
        try:
            in_benchmarks = Path(item.path).is_relative_to(_BENCH_DIR)
        except (TypeError, ValueError):  # pragma: no cover
            in_benchmarks = False
        if in_benchmarks:
            item.add_marker(pytest.mark.slow)
