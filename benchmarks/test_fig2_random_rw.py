"""Figure 2 regeneration: random read/write ratio sweep.

The paper's headline figure: throughput before tuning, after "12 hours"
of training, and after "24 hours", for read:write ratios 9:1, 4:1, 1:1,
1:4 and 1:9.  Compressed sessions (see EXPERIMENTS.md for the mapping).

Expected shape (not absolute numbers):
- read-heavy workloads (9:1, 4:1) gain little or nothing — congestion
  windows barely affect seek-bound synchronous reads;
- write-heavy workloads gain substantially (paper: up to 45 % at 1:9;
  our simulator's static-optimum headroom at 1:9 is ≈ +39 %);
- the longer budget never hurts and helps most where the signal is
  noisy.
"""

import pytest

from benchmarks._harness import (
    TRAIN_TICKS,
    TRAIN_TICKS_EXTRA,
    bench_spec,
    fmt_row,
    phase_row,
    random_rw_workload,
    run_specs,
)

#: The paper's sweep, write-heaviest last.  Paper gain is the rough
#: reading of Figure 2's bars at 24 h.
RATIOS = [
    ("9:1", 9, 1, "≈0%"),
    ("4:1", 4, 1, "small"),
    ("1:1", 1, 1, "moderate"),
    ("1:4", 1, 4, "large"),
    ("1:9", 1, 9, "+45%"),
]

_results = {}


def run_ratio(read_parts: int, write_parts: int) -> dict:
    """Row for one ratio; the whole figure is computed as one spec grid
    on first use (one run per ratio, measured at the "12-hour" and
    "24-hour" checkpoints), so ``REPRO_BENCH_JOBS=N`` regenerates the
    figure in the wall-clock of the slowest ratio."""
    if not _results:
        specs = [
            bench_spec(
                random_rw_workload(r, w),
                seed=42,
                scenario=f"{r}:{w}",
                checkpoints=(TRAIN_TICKS, TRAIN_TICKS_EXTRA),
            )
            for _label, r, w, _paper in RATIOS
        ]
        for (_label, r, w, _paper), result in zip(
            RATIOS, run_specs(specs).results
        ):
            _results[(r, w)] = {
                "12h": phase_row(result.phases[0]),
                "24h": phase_row(result.phases[1]),
            }
    return _results[(read_parts, write_parts)]


@pytest.mark.benchmark(group="fig2")
@pytest.mark.parametrize("label,r,w,paper", RATIOS, ids=[x[0] for x in RATIOS])
def test_fig2_ratio(benchmark, label, r, w, paper):
    out = benchmark.pedantic(run_ratio, args=(r, w), rounds=1, iterations=1)
    print(f"\nFigure 2 — random {label} (paper 24 h gain: {paper})")
    print(fmt_row("after 12h", out["12h"]))
    print(fmt_row("after 24h", out["24h"]))

    gain24 = out["24h"]["percent"]
    if w > r:  # write-heavy: tuning must help clearly
        assert gain24 > 10.0, f"{label}: expected a clear gain, got {gain24:+.1f}%"
    if r > w:  # read-heavy: no large regression allowed
        assert gain24 > -10.0, f"{label}: tuned policy hurt a read-heavy workload"


@pytest.mark.benchmark(group="fig2")
def test_fig2_shape_across_ratios(benchmark):
    """Cross-ratio shape: write-heavy gains dominate read-heavy gains."""

    def collect():
        return {
            label: run_ratio(r, w)["24h"]["percent"]
            for label, r, w, _p in RATIOS
        }

    gains = benchmark.pedantic(collect, rounds=1, iterations=1)
    print("\nFigure 2 — 24 h gain by ratio: "
          + "  ".join(f"{k}={v:+.1f}%" for k, v in gains.items()))
    # The defining comparison of the figure: the write-heaviest ratio
    # must beat the read-heaviest by a wide margin.
    assert gains["1:9"] > gains["9:1"] + 10.0
    assert gains["1:4"] > gains["9:1"]
