"""Sharded-collection scaling: two shard hosts vs one, over real TCP.

The distribution claim of the ``repro.transport`` refactor, measured
end to end with the production entry points: real ``repro shard-host``
subprocesses (own interpreters, own cores), a master attaching over
localhost TCP, chunked monitoring-only collection fanned into one
shared replay DB.

Two configurations of the same 2-env fleet:

- **1 shard x 2 envs** — one host process serves both clusters, so
  their simulation work is serialized on its core (the ``serial``
  backend with a socket in the middle);
- **2 shards x 1 env** — each cluster gets its own host process; a
  chunk's simulation work runs genuinely in parallel.

``shard_scaling`` is the throughput ratio of the two.  The rows merge
into ``BENCH_collect.json`` (read-update-write, preserving the
collection-throughput rows) and CI uploads the file on every run; the
near-linear assertion only fires when there are >= 2 cores to scale
onto.  ``REPRO_BENCH_SHARD_TICKS`` resizes the measurement.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.env import VectorEnv

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_collect.json"

SEED = 42
SHARD_TICKS = int(os.environ.get("REPRO_BENCH_SHARD_TICKS", "60"))
REPEATS = 3

#: The shard hosts' conf: a deliberately small cluster so host startup
#: and socket traffic are a visible share of the cost being measured.
CONF_TEXT = '''\
"""Shard-scaling benchmark conf (written by test_shard_scaling.py)."""
from repro.workloads import RandomReadWrite

N_SERVERS = 2
N_CLIENTS = 2
HIDDEN_LAYER_SIZE = 8
EXPLORATION_TICKS = 20
SEED = 42


def WORKLOAD(cluster, seed):
    return RandomReadWrite(
        cluster, read_fraction=0.1, instances_per_client=2, seed=seed
    )
'''


@pytest.fixture(scope="module")
def conf_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("shard_bench") / "conf.py"
    path.write_text(CONF_TEXT)
    return path


def _subprocess_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p
        for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH"))
        if p
    )
    return env


def spawn_host(conf_path, n_envs: int):
    """One real ``repro shard-host --once`` process; returns
    ``(proc, address)`` once the ephemeral port is known."""
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "shard-host",
            "--config",
            str(conf_path),
            "--n-envs",
            str(n_envs),
            "--bind",
            "127.0.0.1:0",
            "--once",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_subprocess_env(),
        cwd=REPO_ROOT,
    )
    # The launch contract: the first stdout line names the bound
    # address ("shard-host listening on HOST:PORT (K env(s))").
    line = proc.stdout.readline()
    if "listening on" not in line:
        proc.kill()
        raise RuntimeError(f"shard-host failed to start: {line!r}")
    return proc, line.split("listening on ", 1)[1].split()[0]


def _reap(procs, timeout: float = 30.0):
    for proc in procs:
        try:
            assert proc.wait(timeout=timeout) == 0, proc.stdout.read()
        finally:
            if proc.poll() is None:  # pragma: no cover - hung host
                proc.kill()


def _sharded_rate(conf_path, sizes) -> float:
    """Ticks/s of one chunked collect over freshly spawned hosts."""
    procs, addrs = [], []
    try:
        for k in sizes:
            proc, addr = spawn_host(conf_path, k)
            procs.append(proc)
            addrs.append(addr)
        venv = VectorEnv(
            None, backend="shards", shards=addrs, base_seed=SEED
        )
        try:
            venv.reset()
            t0 = time.perf_counter()
            venv.collect(SHARD_TICKS)
            elapsed = time.perf_counter() - t0
            n_envs = venv.n_envs
        finally:
            venv.close()
        _reap(procs)
        procs = []
        return SHARD_TICKS * n_envs / elapsed
    finally:
        for proc in procs:  # pragma: no cover - failure cleanup
            proc.kill()


@pytest.fixture(scope="module")
def bench(conf_path):
    """Best-of-N for both layouts, interleaved round-robin (same
    anti-drift discipline as the collection-throughput bench)."""
    single = two = 0.0
    for _ in range(REPEATS):
        single = max(single, _sharded_rate(conf_path, [2]))
        two = max(two, _sharded_rate(conf_path, [1, 1]))
    return {
        "shard_n_envs": 2,
        "shard_collect_ticks": SHARD_TICKS,
        "single_shard_ticks_per_s": round(single, 1),
        "sharded_ticks_per_s": round(two, 1),
        "shard_scaling": round(two / single, 2),
    }


def test_shard_scaling_records_bench_json(bench):
    # Read-update-write: the collection-throughput bench owns the other
    # rows of this file and may have run first (or not at all).
    data = {}
    if OUT_PATH.exists():
        data = json.loads(OUT_PATH.read_text())
    data.update(bench)
    OUT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(f"\nshard scaling (2 envs): {json.dumps(bench)}")
    assert bench["sharded_ticks_per_s"] > 0
    # Whatever the core count, splitting the fleet across two host
    # processes must never collapse below the single-host rate by more
    # than measurement noise allows.
    assert bench["shard_scaling"] > 0.5, bench


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="shard scaling needs >= 2 cores to demonstrate",
)
def test_two_shards_scale_near_linearly(bench):
    """Two host processes must realize real parallelism: the chunk's
    simulation work overlaps, so throughput approaches 2x (1.4x allows
    for socket overhead and shared-core jitter on busy CI boxes)."""
    assert bench["shard_scaling"] > 1.4, bench


def test_cli_collect_attaches_to_shards_e2e(conf_path):
    """The full CLI loop: spawn `repro shard-host` twice, fan both into
    one `repro collect --shard ... --shard ...` session."""
    procs, addrs = [], []
    try:
        for _ in range(2):
            proc, addr = spawn_host(conf_path, 1)
            procs.append(proc)
            addrs.append(addr)
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "collect",
                "--config",
                str(conf_path),
                "--ticks",
                "24",
                "--chunk",
                "12",
                "--n-envs",
                "2",
                "--shard",
                addrs[0],
                "--shard",
                addrs[1],
            ],
            capture_output=True,
            text=True,
            env=_subprocess_env(),
            cwd=REPO_ROOT,
            timeout=300,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        _reap(procs)
        procs = []
    finally:
        for proc in procs:  # pragma: no cover - failure cleanup
            proc.kill()
