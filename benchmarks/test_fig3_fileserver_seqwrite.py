"""Figure 3 regeneration: Filebench fileserver and sequential write.

Paper findings to reproduce in shape:
- the fileserver workload (mixed data + metadata) is the *hardest*: 12
  hours of training was not enough; 24 hours converged to a +17 % gain;
- the 5-stream sequential write workload shows a positive but more
  modest improvement (transfer time dominates, so scheduling buys
  less).
"""

import pytest

from benchmarks._harness import (
    TRAIN_TICKS,
    TRAIN_TICKS_EXTRA,
    bench_spec,
    fileserver_workload,
    fmt_row,
    phase_row,
    run_specs,
    seqwrite_workload,
)

_cache = {}


def _ensure_runs() -> dict:
    """Both workloads as one spec grid, so ``REPRO_BENCH_JOBS=N`` runs
    them concurrently (per-run results are identical either way)."""
    if not _cache:
        fs, sw = run_specs(
            [
                bench_spec(
                    fileserver_workload(),
                    seed=21,
                    checkpoints=(TRAIN_TICKS, TRAIN_TICKS_EXTRA),
                ),
                bench_spec(seqwrite_workload(), seed=22),
            ]
        ).results
        _cache["fs"] = {
            "12h": phase_row(fs.phases[0]),
            "24h": phase_row(fs.phases[1]),
        }
        _cache["sw"] = {"24h": phase_row(sw.phases[0])}
    return _cache


def run_fileserver() -> dict:
    return _ensure_runs()["fs"]


def run_seqwrite() -> dict:
    return _ensure_runs()["sw"]


@pytest.mark.benchmark(group="fig3")
def test_fig3_fileserver(benchmark):
    out = benchmark.pedantic(run_fileserver, rounds=1, iterations=1)
    print("\nFigure 3 — Filebench fileserver (paper: +17% after 24 h)")
    print(fmt_row("after 12h", out["12h"]))
    print(fmt_row("after 24h", out["24h"]))
    # The long-budget policy must help; the workload is noisy, so the
    # bar is a clear positive gain rather than a point estimate.
    assert out["24h"]["percent"] > 5.0
    # The paper's "12 h was not enough" observation: the longer budget
    # must not do materially worse than the shorter one.
    assert out["24h"]["percent"] >= out["12h"]["percent"] - 5.0


@pytest.mark.benchmark(group="fig3")
def test_fig3_sequential_write(benchmark):
    out = benchmark.pedantic(run_seqwrite, rounds=1, iterations=1)
    print("\nFigure 3 — five-stream sequential write (paper: positive gain)")
    print(fmt_row("tuned", out["24h"]))
    assert out["24h"]["percent"] > 0.0
