"""Figure 4 regeneration: the overfitting check.

"We tested a DNN in three sessions that were spread out over two weeks,
with numerous unrelated file operations between the sessions. ... The
CAPES DNN has increased the throughput of all three sessions by from
13% to 36%."

Here: train once on the fileserver-style system, checkpoint, then
reload the frozen model against three *perturbed* systems (different
workload placement seeds → different file→platter layout and op
arrival pattern, the drift the paper's two weeks of unrelated file
operations produced).  The policy must improve throughput in every
session — a policy that only works on its training layout has overfit.
"""

import pytest

from benchmarks._harness import (
    EVAL_TICKS,
    TRAIN_TICKS,
    make_capes,
    random_rw_workload,
    MBPS_PER_UNIT,
)
from repro.core import CapesSession
from repro.env import StorageTuningEnv
from repro.stats import compare_measurements

PERTURB_SEEDS = (0, 17, 91)  # session 1 = training layout, 2-3 drifted

_cache = {}


def run_sessions(tmp_path_str: str) -> list:
    if "rows" in _cache:
        return _cache["rows"]
    ckpt = f"{tmp_path_str}/fig4-model.npz"
    trainer = make_capes(random_rw_workload(1, 9), seed=42)
    trainer.train(TRAIN_TICKS)
    trainer.save(ckpt)

    rows = []
    for perturb in PERTURB_SEEDS:
        capes = make_capes(
            random_rw_workload(1, 9), seed=42, perturb_seed=perturb
        )
        capes.session.ensure_started()
        capes.load(ckpt)
        baseline = capes.measure_baseline(EVAL_TICKS)
        capes.env.set_params(capes.env.action_space.defaults())
        tuned = capes.evaluate(EVAL_TICKS)
        cmp = compare_measurements(baseline, tuned.rewards)
        rows.append(
            {
                "perturb": perturb,
                "baseline": cmp.baseline.mean * MBPS_PER_UNIT,
                "tuned": cmp.tuned.mean * MBPS_PER_UNIT,
                "percent": cmp.percent,
            }
        )
    _cache["rows"] = rows
    return rows


@pytest.mark.benchmark(group="fig4")
def test_fig4_no_overfitting(benchmark, tmp_path):
    rows = benchmark.pedantic(
        run_sessions, args=(str(tmp_path),), rounds=1, iterations=1
    )
    print("\nFigure 4 — reused DNN across drifted sessions "
          "(paper: +13% to +36% in all three)")
    for i, row in enumerate(rows, start=1):
        print(f"  session {i} (perturb={row['perturb']:>3}): "
              f"{row['baseline']:6.1f} -> {row['tuned']:6.1f} MB/s "
              f"({row['percent']:+.1f}%)")
    # Every session must improve: the trained policy generalises.
    for row in rows:
        assert row["percent"] > 5.0, (
            f"session with perturb={row['perturb']} did not improve — "
            f"policy overfit to the training layout"
        )
