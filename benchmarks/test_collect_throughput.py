"""Experience-collection throughput: N-loop baseline vs vectorized.

The vectorized hot-path claims of the environment redesign, measured:

- **batched act** — pricing N stacked observations with one forward
  pass (``DQNAgent.act_batch``) must beat N single-row ``act`` calls;
- **collection** — ``VectorEnv`` stepping N clusters in lockstep with
  shared-DB fan-in, against the plain Python loop over N independent
  single environments (the pre-vectorization way to run N clusters).

Results land in ``BENCH_collect.json`` at the repository root — CI
uploads it as an artifact on every run, so the collection-throughput
trajectory is recorded over time.  ``REPRO_BENCH_N_ENVS`` picks the
fleet size (default 2, the CI smoke setting).
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.cluster import ClusterConfig
from repro.env import EnvConfig, StorageTuningEnv, VectorEnv, vector_seeds
from repro.rl import DQNAgent, Hyperparameters
from repro.workloads import RandomReadWrite

N_ENVS = int(os.environ.get("REPRO_BENCH_N_ENVS", "2"))
COLLECT_TICKS = 60
#: Throughput runs per configuration; best-of wins (single-core boxes
#: jitter by several percent run to run, swamping the effects measured).
REPEATS = 3
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_collect.json"

BENCH_HP = Hyperparameters(
    hidden_layer_size=64,
    exploration_ticks=800,
    sampling_ticks_per_observation=10,
)


def _workload(cluster, seed):
    return RandomReadWrite(
        cluster, read_fraction=0.1, seed=seed, instances_per_client=5
    )


def _config(seed: int = 42) -> EnvConfig:
    return EnvConfig(
        cluster=ClusterConfig(n_servers=2, n_clients=3),
        workload_factory=_workload,
        hp=BENCH_HP,
        seed=seed,
    )


def _nloop_collect(n_ticks: int) -> float:
    """The baseline: N single envs stepped one-by-one, per-obs act."""
    from dataclasses import replace

    cfg = _config()
    envs = [
        StorageTuningEnv(replace(cfg, seed=s))
        for s in vector_seeds(cfg.seed, N_ENVS)
    ]
    observations = [env.reset() for env in envs]
    agent = DQNAgent(envs[0].obs_dim, envs[0].n_actions, hp=BENCH_HP, rng=0)
    t0 = time.perf_counter()
    for _ in range(n_ticks):
        for i, env in enumerate(envs):
            action = agent.act(observations[i], greedy=True)
            observations[i], _r, _info = env.step(action)
    elapsed = time.perf_counter() - t0
    for env in envs:
        env.close()
    return n_ticks * N_ENVS / elapsed


def _vector_collect(n_ticks: int, backend: str) -> float:
    venv = VectorEnv.from_config(_config(), N_ENVS, backend=backend)
    agent = DQNAgent(venv.obs_dim, venv.n_actions, hp=BENCH_HP, rng=0)
    obs = venv.reset()
    t0 = time.perf_counter()
    for _ in range(n_ticks):
        actions = agent.act_batch(obs, greedy=True)
        obs, _rewards, _infos = venv.step(actions)
    elapsed = time.perf_counter() - t0
    venv.close()
    return n_ticks * N_ENVS / elapsed


def _act_bench(n: int, repeats: int = 300) -> tuple:
    """Per-call cost of N-loop act vs one batched act, microseconds."""
    agent = DQNAgent(
        BENCH_HP.sampling_ticks_per_observation * 66 * 3,
        5,
        hp=BENCH_HP,
        rng=0,
    )
    obs = np.random.default_rng(0).normal(size=(n, agent.obs_dim))
    # warm-up
    agent.act_batch(obs, greedy=True)
    [agent.act(o, greedy=True) for o in obs]
    t0 = time.perf_counter()
    for _ in range(repeats):
        for o in obs:
            agent.act(o, greedy=True)
    loop_us = (time.perf_counter() - t0) / repeats * 1e6
    t0 = time.perf_counter()
    for _ in range(repeats):
        agent.act_batch(obs, greedy=True)
    batch_us = (time.perf_counter() - t0) / repeats * 1e6
    return loop_us, batch_us


def test_collect_throughput_records_bench_json():
    loop_us, batch_us = _act_bench(N_ENVS)
    serial = max(_nloop_collect(COLLECT_TICKS) for _ in range(REPEATS))
    vec_serial = max(
        _vector_collect(COLLECT_TICKS, "serial") for _ in range(REPEATS)
    )
    vec_fork = max(
        _vector_collect(COLLECT_TICKS, "fork") for _ in range(REPEATS)
    )
    result = {
        "n_envs": N_ENVS,
        "collect_ticks": COLLECT_TICKS,
        "nloop_ticks_per_s": round(serial, 1),
        "vector_serial_ticks_per_s": round(vec_serial, 1),
        "vector_fork_ticks_per_s": round(vec_fork, 1),
        "act_nloop_us": round(loop_us, 1),
        "act_batch_us": round(batch_us, 1),
        "act_batch_speedup": round(loop_us / batch_us, 2),
        "collect_best_speedup": round(max(vec_serial, vec_fork) / serial, 2),
    }
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\ncollection throughput ({N_ENVS} envs): " + json.dumps(result))
    # Batched inference must beat the N-loop outright.
    assert batch_us < loop_us, result
    # Vectorized collection (best backend) must beat the plain N-loop;
    # the serial backend alone must at least stay in the same ballpark
    # despite doing strictly more work (shared-DB fan-in).
    assert max(vec_serial, vec_fork) > serial * 0.95, result
    assert vec_serial > serial * 0.5, result
