"""Experience-collection throughput: N-loop baseline vs vectorized.

The vectorized hot-path claims of the environment redesign, measured:

- **batched act** — pricing N stacked observations with one forward
  pass (``DQNAgent.act_batch``) must beat N single-row ``act`` calls;
- **lockstep collection** — ``VectorEnv`` stepping N clusters with
  per-tick actions and shared-DB fan-in, against the plain Python loop
  over N independent single environments (the pre-vectorization way to
  run N clusters);
- **chunked collection** — monitoring-only ``VectorEnv.collect``
  (§3.3), which advances a whole chunk of ticks per worker round-trip
  and batches the replay fan-in (packed records + ``put_many``),
  against the per-tick monitoring-only N-loop;
- **train+collect overlap** — the decoupled trainer (``repro.train``)
  running against the fan-in stream *while* the fleet collects:
  serial interleaving (collection and SGD round-robin on one core)
  vs the process backend (SGD in a forked trainer worker, overlapped
  with collection);
- **vec backend** — the struct-of-arrays fleet engine
  (``repro.sim.vec``) behind the same ``VectorEnv`` surface: one
  ``tick_all`` advances every cluster with numpy array ops, so its
  rows are expected to beat every discrete-event configuration by an
  order of magnitude on a single core (the kernel-level ratio is
  asserted in ``test_perf_microbench.py::test_perf_tick_all``).

Results land in ``BENCH_collect.json`` at the repository root — CI
uploads it as an artifact on every run, so the collection-throughput
trajectory is recorded over time.  ``REPRO_BENCH_N_ENVS`` picks the
fleet size (default 2, the CI smoke setting).

The chunked ``fork`` backend is the configuration that must actually
*beat* the N-loop — its workers advance their simulations in parallel
and the chunking keeps pipe traffic off the per-tick path — but only
when there are cores to run them on, so that assertion is skipped on
single-core boxes (where every backend necessarily degenerates to
time-slicing the same simulation work).  The same gating applies to
the train+collect overlap claim (process beats serial): the overlap
row is *recorded* everywhere, *asserted* only on >= 2 cores.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.env import EnvConfig, StorageTuningEnv, VectorEnv, vector_seeds
from repro.rl import DQNAgent, Hyperparameters
from repro.train import TrainerConfig, train_collect
from repro.workloads import RandomReadWrite

N_ENVS = int(os.environ.get("REPRO_BENCH_N_ENVS", "2"))
COLLECT_TICKS = 60
#: Throughput rounds per configuration; best-of wins (single-core boxes
#: jitter by several percent run to run, swamping the effects measured).
REPEATS = 4
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_collect.json"

BENCH_HP = Hyperparameters(
    hidden_layer_size=64,
    exploration_ticks=800,
    sampling_ticks_per_observation=10,
)


def _workload(cluster, seed):
    return RandomReadWrite(
        cluster, read_fraction=0.1, seed=seed, instances_per_client=5
    )


def _config(seed: int = 42) -> EnvConfig:
    return EnvConfig(
        cluster=ClusterConfig(n_servers=2, n_clients=3),
        workload_factory=_workload,
        hp=BENCH_HP,
        seed=seed,
    )


def _make_nloop_envs():
    from dataclasses import replace

    cfg = _config()
    return [
        StorageTuningEnv(replace(cfg, seed=s))
        for s in vector_seeds(cfg.seed, N_ENVS)
    ]


def _nloop_collect(n_ticks: int) -> float:
    """The baseline: N single envs stepped one-by-one, per-obs act."""
    envs = _make_nloop_envs()
    observations = [env.reset() for env in envs]
    agent = DQNAgent(envs[0].obs_dim, envs[0].n_actions, hp=BENCH_HP, rng=0)
    t0 = time.perf_counter()
    for _ in range(n_ticks):
        for i, env in enumerate(envs):
            action = agent.act(observations[i], greedy=True)
            observations[i], _r, _info = env.step(action)
    elapsed = time.perf_counter() - t0
    for env in envs:
        env.close()
    return n_ticks * N_ENVS / elapsed


def _nloop_monitor(n_ticks: int) -> float:
    """Monitoring-only baseline: N single envs, per-tick NULL steps."""
    envs = _make_nloop_envs()
    for env in envs:
        env.reset()
    t0 = time.perf_counter()
    for _ in range(n_ticks):
        for env in envs:
            env.step(0)
    elapsed = time.perf_counter() - t0
    for env in envs:
        env.close()
    return n_ticks * N_ENVS / elapsed


def _vector_collect(n_ticks: int, backend: str) -> float:
    """Lockstep acting collection: batched act + per-tick fan-in."""
    venv = VectorEnv.from_config(_config(), N_ENVS, backend=backend)
    agent = DQNAgent(venv.obs_dim, venv.n_actions, hp=BENCH_HP, rng=0)
    obs = venv.reset()
    t0 = time.perf_counter()
    for _ in range(n_ticks):
        actions = agent.act_batch(obs, greedy=True)
        obs, _rewards, _infos = venv.step(actions)
    elapsed = time.perf_counter() - t0
    venv.close()
    return n_ticks * N_ENVS / elapsed


def _chunked_collect(n_ticks: int, backend: str) -> float:
    """Chunked monitoring-only collection: the fan-in hot path."""
    venv = VectorEnv.from_config(_config(), N_ENVS, backend=backend)
    venv.reset()
    t0 = time.perf_counter()
    venv.collect(n_ticks)
    elapsed = time.perf_counter() - t0
    venv.close()
    return n_ticks * N_ENVS / elapsed


#: Overlap rows: SGD steps granted per collected action tick.  High
#: enough that training is a comparable share of the work (the regime
#: the decoupling targets), low enough to keep the bench quick.
OVERLAP_TRAIN_RATIO = 2.0
OVERLAP_CHUNK = 10


def _overlap_collect(n_ticks: int, trainer_backend: str) -> float:
    """Train+collect: the decoupled trainer against live collection.

    ``serial`` interleaves collection chunks with training bursts on
    one core; ``process`` runs the same SGD budget in a forked trainer
    worker while the (fork-backend) fleet keeps simulating — the §3
    continuous-DRL-engine overlap this PR exists to buy.
    """
    venv = VectorEnv.from_config(_config(), N_ENVS, backend="fork")
    agent = DQNAgent(venv.obs_dim, venv.n_actions, hp=BENCH_HP, rng=0)
    t0 = time.perf_counter()
    train_collect(
        venv,
        agent,
        TrainerConfig(
            backend=trainer_backend,
            train_ratio=OVERLAP_TRAIN_RATIO,
            sync_every=32,
        ),
        n_ticks,
        chunk=OVERLAP_CHUNK,
        sampler_seed=0,
    )
    elapsed = time.perf_counter() - t0
    venv.close()
    return n_ticks * N_ENVS / elapsed


def _act_bench(n: int, repeats: int = 300) -> tuple:
    """Per-call cost of N-loop act vs one batched act, microseconds."""
    agent = DQNAgent(
        BENCH_HP.sampling_ticks_per_observation * 66 * 3,
        5,
        hp=BENCH_HP,
        rng=0,
    )
    obs = np.random.default_rng(0).normal(size=(n, agent.obs_dim))
    # warm-up
    agent.act_batch(obs, greedy=True)
    [agent.act(o, greedy=True) for o in obs]
    t0 = time.perf_counter()
    for _ in range(repeats):
        for o in obs:
            agent.act(o, greedy=True)
    loop_us = (time.perf_counter() - t0) / repeats * 1e6
    t0 = time.perf_counter()
    for _ in range(repeats):
        agent.act_batch(obs, greedy=True)
    batch_us = (time.perf_counter() - t0) / repeats * 1e6
    return loop_us, batch_us


@pytest.fixture(scope="module")
def bench():
    """Measure every configuration once; tests share the numbers.

    The configurations are interleaved round-robin (one run of each per
    round, best-of over rounds) rather than measured back to back —
    shared boxes drift over a multi-minute benchmark, and sequential
    blocks would fold that drift into the ratios.
    """
    loop_us, batch_us = _act_bench(N_ENVS)
    runners = {
        "nloop_act": lambda: _nloop_collect(COLLECT_TICKS),
        "nloop_mon": lambda: _nloop_monitor(COLLECT_TICKS),
        "vec_serial": lambda: _vector_collect(COLLECT_TICKS, "serial"),
        "vec_fork": lambda: _vector_collect(COLLECT_TICKS, "fork"),
        "chunk_serial": lambda: _chunked_collect(COLLECT_TICKS, "serial"),
        "chunk_fork": lambda: _chunked_collect(COLLECT_TICKS, "fork"),
        "vec_lock": lambda: _vector_collect(COLLECT_TICKS, "vec"),
        "chunk_vec": lambda: _chunked_collect(COLLECT_TICKS, "vec"),
        "overlap_serial": lambda: _overlap_collect(COLLECT_TICKS, "serial"),
        "overlap_process": lambda: _overlap_collect(COLLECT_TICKS, "process"),
    }
    best: dict = {name: 0.0 for name in runners}
    for _ in range(REPEATS):
        for name, run in runners.items():
            best[name] = max(best[name], run())
    nloop_act, nloop_mon = best["nloop_act"], best["nloop_mon"]
    vec_serial, vec_fork = best["vec_serial"], best["vec_fork"]
    chunk_serial, chunk_fork = best["chunk_serial"], best["chunk_fork"]
    overlap_serial = best["overlap_serial"]
    overlap_process = best["overlap_process"]
    best_speedup = max(
        vec_serial / nloop_act,
        vec_fork / nloop_act,
        chunk_serial / nloop_mon,
        chunk_fork / nloop_mon,
    )
    return {
        "n_envs": N_ENVS,
        "collect_ticks": COLLECT_TICKS,
        "cpu_count": os.cpu_count(),
        "nloop_ticks_per_s": round(nloop_act, 1),
        "nloop_collect_ticks_per_s": round(nloop_mon, 1),
        "vector_serial_ticks_per_s": round(vec_serial, 1),
        "vector_fork_ticks_per_s": round(vec_fork, 1),
        "chunked_serial_ticks_per_s": round(chunk_serial, 1),
        "chunked_fork_ticks_per_s": round(chunk_fork, 1),
        "vector_vec_ticks_per_s": round(best["vec_lock"], 1),
        "chunked_vec_ticks_per_s": round(best["chunk_vec"], 1),
        "overlap_serial_ticks_per_s": round(overlap_serial, 1),
        "overlap_process_ticks_per_s": round(overlap_process, 1),
        "overlap_train_ratio": OVERLAP_TRAIN_RATIO,
        "act_nloop_us": round(loop_us, 1),
        "act_batch_us": round(batch_us, 1),
        "act_batch_speedup": round(loop_us / batch_us, 2),
        "chunked_collect_speedup": round(
            max(chunk_serial, chunk_fork) / nloop_mon, 2
        ),
        "collect_best_speedup": round(best_speedup, 2),
        "train_overlap_speedup": round(overlap_process / overlap_serial, 2),
    }


def test_collect_throughput_records_bench_json(bench):
    OUT_PATH.write_text(json.dumps(bench, indent=2) + "\n")
    print(f"\ncollection throughput ({N_ENVS} envs): " + json.dumps(bench))
    # Batched inference must beat the N-loop outright.
    assert bench["act_batch_us"] < bench["act_nloop_us"], bench
    # Vectorized acting collection (best backend) must stay in the
    # N-loop's ballpark despite doing strictly more work (fan-in); the
    # serial backend alone must not collapse.
    nloop = bench["nloop_ticks_per_s"]
    assert (
        max(
            bench["vector_serial_ticks_per_s"],
            bench["vector_fork_ticks_per_s"],
        )
        > nloop * 0.95
    ), bench
    assert bench["vector_serial_ticks_per_s"] > nloop * 0.5, bench
    # Chunked serial collection does the N-loop's simulation work plus
    # the whole fan-in, minus the per-tick observation builds and
    # per-record writes — it must hold parity with the monitoring-only
    # N-loop on any box (0.9: single-core boxes jitter several percent
    # between interleaved rounds).
    assert (
        bench["chunked_serial_ticks_per_s"]
        > bench["nloop_collect_ticks_per_s"] * 0.9
    ), bench
    # The vec backend trades the discrete-event engine for one numpy
    # tick kernel over the whole fleet: even at the CI smoke fleet size
    # it must beat the monitoring-only N-loop by 5x on any box —
    # single-core included, so no skip gating (measured 2 orders of
    # magnitude in practice; 5x is the floor that keeps the backend
    # worth its second physics).  The canonical BENCH field
    # (``vec_collect_speedup`` at n_envs=16) is owned by
    # test_perf_microbench.py::test_perf_tick_all.
    assert (
        bench["chunked_vec_ticks_per_s"]
        >= bench["nloop_collect_ticks_per_s"] * 5.0
    ), bench


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="chunked fork collection needs >= 2 cores to advance "
    "simulations in parallel; on 1 core every backend time-slices "
    "the same work",
)
def test_chunked_fork_beats_nloop_on_multicore(bench):
    """The point of the fan-in rebuild: with real parallelism, chunked
    fork collection must beat the per-tick N-loop outright."""
    assert (
        bench["chunked_fork_ticks_per_s"]
        > bench["nloop_collect_ticks_per_s"]
    ), bench
    assert bench["collect_best_speedup"] > 1.0, bench


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="the overlap claim needs a core for the trainer worker in "
    "addition to the collection workers; on 1 core serial and process "
    "time-slice the same SGD+simulation work",
)
def test_process_trainer_overlap_beats_serial_on_multicore(bench):
    """The point of the trainer decoupling: the same collect+train
    budget must finish faster when SGD overlaps collection in its own
    worker than when the two interleave on one loop."""
    assert (
        bench["overlap_process_ticks_per_s"]
        > bench["overlap_serial_ticks_per_s"]
    ), bench
    assert bench["train_overlap_speedup"] > 1.0, bench
