"""Scenario adaptation: the DQN tuner vs the static baseline under
fault/perturbation timelines.

The paper's pitch is that a DQN tuner *adapts* while a fixed
configuration goes stale.  For every registered scenario this bench
runs one compressed CAPES session and one static-default session
against the same perturbed cluster and records the tuned-throughput
delta into ``BENCH_scenarios.json`` at the repository root — CI uploads
it next to ``BENCH_collect.json``, so the adaptation trajectory is
tracked run over run.

Event timings are compressed so every scenario keeps perturbing
through the final measurement window; the assertion is on coverage and
sanity (every scenario measured, finite positive throughputs), not on
the delta's sign — compressed sessions are far too short to promise a
win per scenario, and that claim belongs to the figure benches.
"""

import json
from pathlib import Path

import numpy as np

from repro.cluster import ClusterConfig
from repro.exp import ExperimentSpec, RunBudget, WorkloadSpec, execute_spec
from repro.rl import Hyperparameters
from repro.scenarios import scenario_names

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_scenarios.json"

BENCH_HP = Hyperparameters(
    hidden_layer_size=32,
    exploration_ticks=60,
    sampling_ticks_per_observation=3,
    adam_learning_rate=1e-3,
)

#: One capes run spans ~3 (warm) + 60 (train) + 2×30 (eval) ticks;
#: these timings keep each timeline perturbing into the eval window.
SCENARIO_KW = {
    "sim-lustre-degraded": dict(start_tick=20),
    "sim-lustre-bursty": dict(
        first_tick=20, period=30, n_bursts=4, duration=10
    ),
    "sim-lustre-churn": dict(
        first_tick=20, period=30, absence_ticks=15, n_cycles=4
    ),
}


def _spec(scenario: str, tuner: str) -> ExperimentSpec:
    return ExperimentSpec(
        tuner=tuner,
        seed=42,
        scenario=scenario,
        scenario_kwargs=SCENARIO_KW.get(scenario, {}),
        cluster=ClusterConfig(n_servers=2, n_clients=3),
        workload=WorkloadSpec(
            "random_rw", {"read_fraction": 0.1, "instances_per_client": 5}
        ),
        hp=BENCH_HP,
        budget=RunBudget(train_ticks=60, eval_ticks=30, epoch_ticks=15),
    )


def test_scenario_adaptation_records_bench_json():
    rows = {}
    for scenario in scenario_names():
        capes = execute_spec(_spec(scenario, "capes")).final
        static = execute_spec(_spec(scenario, "static")).final
        capes_tuned = float(np.mean(capes.tuned_rewards))
        static_tuned = float(np.mean(static.tuned_rewards))
        # Diagnose a dead system here, before the delta divides by it.
        assert static_tuned > 0, (scenario, static_tuned)
        rows[scenario] = {
            "capes_tuned": round(capes_tuned, 5),
            "static_tuned": round(static_tuned, 5),
            "capes_baseline": round(float(np.mean(capes.baseline_rewards)), 5),
            "tuner_vs_static_pct": round(
                100.0 * (capes_tuned - static_tuned) / static_tuned, 2
            ),
        }
    result = {
        "train_ticks": 60,
        "eval_ticks": 30,
        "scenarios": rows,
    }
    OUT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"\nscenario adaptation: {json.dumps(result)}")
    # Coverage: a delta for every registered scenario, and sane numbers.
    assert set(rows) == set(scenario_names())
    for scenario, row in rows.items():
        assert np.isfinite(row["tuner_vs_static_pct"]), (scenario, row)
        assert row["capes_tuned"] > 0, (scenario, row)
        assert row["static_tuned"] > 0, (scenario, row)
