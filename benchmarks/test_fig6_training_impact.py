"""Figure 6 regeneration: the training session's impact on the workload.

"Because we used an ε-greedy policy that anneals from 100% random
action to 5% action, the DNN should be able to 'mitigate' the impact of
the suboptimal random actions ... the overall throughput of a 70-hour
training session is comparable to the three baseline throughputs we
measured at three different times."

We measure the mean throughput *during* a full training session
(exploration included) and compare against three baseline runs of the
same length on untouched systems.  Training must not materially
depress the workload.
"""

import numpy as np
import pytest

from benchmarks._harness import (
    MBPS_PER_UNIT,
    TRAIN_TICKS,
    make_capes,
    random_rw_workload,
)
from repro.env import StorageTuningEnv
from repro.stats import analyze

_cache = {}


def run_comparison() -> dict:
    if "out" in _cache:
        return _cache["out"]
    # Training session (ε-greedy exploration happening live).
    capes = make_capes(random_rw_workload(1, 9), seed=55)
    result = capes.train(TRAIN_TICKS)
    training_tput = analyze(result.rewards, trim=False)

    # Three independent baselines "measured at three different times".
    baselines = []
    for seed in (56, 57, 58):
        b = make_capes(random_rw_workload(1, 9), seed=seed)
        rewards = b.measure_baseline(TRAIN_TICKS // 3)
        baselines.append(analyze(rewards, trim=False))
    _cache["out"] = {"training": training_tput, "baselines": baselines}
    return _cache["out"]


@pytest.mark.benchmark(group="fig6")
def test_fig6_training_does_not_hurt_the_workload(benchmark):
    out = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    t = out["training"]
    print("\nFigure 6 — throughput during training vs idle baselines")
    print(f"  training session: {t.mean * MBPS_PER_UNIT:6.1f} "
          f"± {t.ci_halfwidth * MBPS_PER_UNIT:.1f} MB/s")
    for i, b in enumerate(out["baselines"], start=1):
        print(f"  baseline {i}:       {b.mean * MBPS_PER_UNIT:6.1f} "
              f"± {b.ci_halfwidth * MBPS_PER_UNIT:.1f} MB/s")

    mean_baseline = np.mean([b.mean for b in out["baselines"]])
    ratio = t.mean / mean_baseline
    print(f"  training/baseline ratio: {ratio:.2f} (paper: comparable)")
    # "Comparable": the exploration phase costs something, but the
    # session must stay within 25 % of the untouched system.
    assert ratio > 0.75
