"""Vectorized multi-cluster experience collection (Figure 1 at scale).

The paper's architecture is explicitly one-to-many: "a single central
DRL engine" behind the Interface Daemon serves *many* monitoring and
control agents.  :class:`VectorEnv` reproduces that topology over N
independently-seeded target systems stepped in lockstep: one
``reset()`` returns a stacked ``(n, obs_dim)`` observation, one
``step(actions)`` performs one action per cluster and advances every
cluster one tick, and every cluster's replay records fan into one
shared :class:`~repro.replaydb.db.ReplayDB` — the many-agents-one-engine
experience stream a single DQN trains from.

Backends
--------
``serial``
    All sub-environments live in-process and are stepped in a Python
    loop.  The payoff is batched inference (one stacked forward pass
    per tick instead of N) and the shared replay stream.
``fork``
    Each sub-environment lives in a forked worker process; steps are
    dispatched to all workers before any result is collected, so the
    simulations advance in parallel.  ``fork`` inherits memory, so
    unpicklable workload factories work unchanged.
``vec``
    All sub-environments are rows of one struct-of-arrays
    :class:`~repro.sim.vec.fleet_env.FleetEnv`: a single ``tick_all``
    kernel advances the whole fleet per tick, so stepping cost stays
    nearly flat in ``n_envs`` on one core.  Each worker holds a
    :class:`~repro.sim.vec.fleet_env.FleetSlot` view, so the per-env
    plumbing (``env_method``, record fan-in, resets) is shared with
    ``serial``; lockstep stepping takes a batched fast path straight
    into the fleet.  The vec backend is a tick-level fluid model — not
    byte-identical to ``serial``/``fork`` (see
    :mod:`repro.sim.vec`) — but vec rollouts are themselves exactly
    reproducible, fleet-size independent, and chunk-invariant.

Fan-in transport
----------------
Every reply that advances ticks carries the environment's new replay
records inline, packed as one
:class:`~repro.replaydb.records.PackedRecords` array block rather than
a pickled object list, and the master lands each batch with one
:meth:`~repro.replaydb.db.ReplayDB.put_many`.  Acting paths stay in
per-tick lockstep (the policy needs every observation) but pay no
separate records round-trip; monitoring-only :meth:`VectorEnv.collect`
and :meth:`VectorEnv.run_ticks` additionally run *chunked* — one
``run_chunk`` round-trip advances many ticks — which is pure
transport: chunked and per-tick stepping are byte-identical.

Determinism contract
--------------------
Per-env trajectories are a pure function of the per-env seed and the
action sequence: ``VectorEnv`` over ``vector_seeds(seed, n)`` is
byte-identical, env by env, to n serial single-environment runs built
with the same derived seeds and fed the same actions — and the
``serial`` and ``fork`` backends are byte-identical to each other.

Shared-DB layout
----------------
The replay cache is tick-indexed, so each sub-environment owns a block
of the shared tick space: env ``i`` writes its local tick ``t`` at
``i * tick_stride + t``.  Blocks keep observation windows contiguous
within one cluster (the Algorithm 1 sampler never stacks frames across
clusters); :class:`StridedMinibatchSampler` draws candidates block-aware
so sampling stays O(1) regardless of stride.  A session must stay under
``tick_stride`` ticks per environment — exceeding it raises rather than
silently aliasing another cluster's block.
"""

from __future__ import annotations

import functools
import multiprocessing
from dataclasses import replace
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.env.protocol import Environment
from repro.env.tuning_env import EnvConfig, StorageTuningEnv
from repro.replaydb.db import CACHE_ONLY, ReplayDB
from repro.replaydb.records import PackedRecords
from repro.replaydb.spans import StridedMinibatchSampler, TickSpans
from repro.util.rng import derive_rng, ensure_rng
from repro.util.validation import check_positive

EnvFactoryFn = Callable[[], Environment]


def vector_seeds(base_seed: int, n: int) -> List[int]:
    """Derive n independent environment seeds from one base seed.

    Env ``i``'s seed depends only on ``(base_seed, i)`` — not on ``n`` —
    so growing the fleet keeps existing clusters' trajectories intact,
    and a vectorized run can be replayed env by env with serial
    single-environment runs.
    """
    check_positive("n", n)
    return [
        int(
            derive_rng(ensure_rng(base_seed), "vector-env", i).integers(2**31)
        )
        for i in range(n)
    ]


def per_env_rngs(
    base_seed: int, n: int, label: str = "vector-act"
) -> List[np.random.Generator]:
    """Per-env exploration streams for ε-greedy batched acting.

    Like :func:`vector_seeds`, stream ``i`` depends only on
    ``(base_seed, label, i)``, so the vector size never perturbs the
    random-action sequence any single cluster sees.
    """
    check_positive("n", n)
    return [
        derive_rng(ensure_rng(base_seed), label, i) for i in range(n)
    ]


# --------------------------------------------------------------------------
# Worker backends: one sub-environment behind a submit/result pair
# --------------------------------------------------------------------------


def _fetch_packed(env: Environment, since: int) -> PackedRecords:
    """New replay records after ``since``, in packed array form.

    Uses the backend's native packed feed when it has one; otherwise
    packs the object-form ``records_since`` so any Environment with a
    record feed can join a fan-in fleet.
    """
    fn = getattr(env, "records_since_packed", None)
    if fn is not None:
        return fn(since)
    return PackedRecords.from_records(env.records_since(since), env.frame_dim)


def _chunk_rewards(env: Environment, action: Optional[int], k: int) -> np.ndarray:
    """Advance ``k`` ticks (``action`` per tick, or none); per-tick rewards.

    Prefers the backend's ``run_chunk`` (which skips the per-tick
    observation builds nobody reads during chunked collection); the
    fallback per-tick loop is byte-identical, just slower.
    """
    fn = getattr(env, "run_chunk", None)
    if fn is not None:
        return np.asarray(fn(k, action=action))
    if action is None:
        return np.asarray(env.run_ticks(k))
    rewards = np.empty(k)
    for j in range(k):
        _obs, rewards[j], _info = env.step(action)
    return rewards


def _exec_env_cmd(env: Environment, cmd: str, payload: Any) -> Any:
    """One worker command against one environment — both backends run
    exactly this, so serial and fork stay behaviourally identical.

    Replies that advance ticks carry the new replay records inline
    (``since`` is the master's last-synced tick, or ``None`` when
    fan-in is off), collapsing the old step-then-fetch double
    round-trip into one.
    """
    if cmd == "reset":
        want_records = payload
        obs = env.reset()
        packed = _fetch_packed(env, -1) if want_records else None
        return obs, packed
    if cmd == "step":
        action, out, since = payload
        obs, reward, info = env.step(action, out=out)
        packed = _fetch_packed(env, since) if since is not None else None
        return obs, reward, info, packed
    if cmd == "run_chunk":
        action, k, since, out = payload
        rewards = _chunk_rewards(env, action, k)
        obs = env.current_observation(out=out)
        packed = _fetch_packed(env, since) if since is not None else None
        return rewards, obs, packed
    if cmd == "records":
        return _fetch_packed(env, payload)
    if cmd == "call":
        name, args, kwargs = payload
        return getattr(env, name)(*args, **kwargs)
    if cmd == "commit":
        fn = getattr(env, "commit_replay", None)
        if fn is not None:
            fn()
        return None
    raise ValueError(f"unknown worker command {cmd!r}")  # pragma: no cover


class _SerialWorker:
    """In-process backend: submit computes immediately."""

    def __init__(self, factory: EnvFactoryFn):
        self.env = factory()
        self._result: Any = None

    def submit(self, cmd: str, payload: Any = None) -> None:
        if cmd == "close":
            self.env.close()
            self._result = None
        else:
            self._result = _exec_env_cmd(self.env, cmd, payload)

    def result(self) -> Any:
        out, self._result = self._result, None
        return out


class WorkerCrashError(RuntimeError):
    """A fork worker raised an exception that could not cross the pipe.

    Carries the original exception's type name, message and full
    traceback as text — everything the real exception knew, minus the
    unpicklable payload (open connections, generators, ...) that would
    otherwise have killed the pipe and surfaced as a bare ``EOFError``.
    """


def _transportable(exc: BaseException) -> BaseException:
    """``exc`` if it survives a pickle round-trip, else a text wrapper."""
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        import traceback

        return WorkerCrashError(
            f"{type(exc).__name__}: {exc}\n"
            f"[worker traceback]\n{traceback.format_exc()}"
        )


def _env_worker(factory: EnvFactoryFn, conn) -> None:
    """Forked worker loop: owns one environment for its whole life."""
    env = factory()
    try:
        while True:
            cmd, payload = conn.recv()
            try:
                if cmd == "close":
                    env.close()
                    conn.send(("ok", None))
                    return
                result = _exec_env_cmd(env, cmd, payload)
            except Exception as exc:  # surface remote failures
                conn.send(("err", _transportable(exc)))
            else:
                conn.send(("ok", result))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown
        pass
    finally:
        conn.close()


class _ForkWorker:
    """Forked-process backend: submit is asynchronous, result blocks."""

    def __init__(self, factory: EnvFactoryFn, context):
        self._conn, child = context.Pipe()
        self._proc = context.Process(
            target=_env_worker, args=(factory, child), daemon=True
        )
        self._proc.start()
        child.close()

    def submit(self, cmd: str, payload: Any = None) -> None:
        self._conn.send((cmd, payload))

    def result(self) -> Any:
        status, value = self._conn.recv()
        if status == "err":
            raise value
        return value

    def terminate(self) -> None:
        self._conn.close()
        self._proc.join(timeout=5)
        if self._proc.is_alive():  # pragma: no cover - hung worker
            self._proc.terminate()


# --------------------------------------------------------------------------
# The vector environment
# --------------------------------------------------------------------------


class VectorEnv:
    """N independently-seeded environments stepped in lockstep.

    Parameters
    ----------
    factories:
        One zero-argument callable per sub-environment.  Each must
        return an :class:`~repro.env.protocol.Environment`; fan-in
        additionally requires ``records_since`` (which the sim-lustre
        backend provides).
    backend:
        ``"serial"`` (in-process) or ``"fork"`` (one worker process per
        environment).  Results are byte-identical either way.
    shared_db_path:
        Where the shared fan-in :class:`ReplayDB` lives.  The default,
        :data:`~repro.replaydb.db.CACHE_ONLY`, keeps the fan-in store
        in the NumPy cache alone — an in-memory SQLite layer under it
        buys no durability, only per-write overhead on the collection
        hot path.  Pass a filesystem path (or ``":memory:"``) for a
        SQLite-backed store, or ``None`` to disable fan-in entirely.
    tick_stride:
        Tick-space block size per environment in the shared DB; an
        environment raises once its local tick reaches the stride.
    """

    def __init__(
        self,
        factories: Sequence[EnvFactoryFn],
        backend: str = "serial",
        shared_db_path: Optional[str] = CACHE_ONLY,
        tick_stride: int = 65536,
    ):
        if not factories:
            raise ValueError("VectorEnv needs at least one environment")
        if backend not in ("serial", "fork", "vec"):
            raise ValueError(
                f"backend must be 'serial', 'fork' or 'vec', got {backend!r}"
            )
        check_positive("tick_stride", tick_stride)
        self.backend = backend
        self.tick_stride = int(tick_stride)
        self._shared_db_path = shared_db_path
        self._fleet: Any = None
        if backend == "fork":
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                context = multiprocessing.get_context()
            self._workers: List[Any] = [
                _ForkWorker(f, context) for f in factories
            ]
        else:
            self._workers = [_SerialWorker(f) for f in factories]
        if backend == "vec":
            envs = [w.env for w in self._workers]
            fleets = {id(getattr(e, "fleet", None)) for e in envs}
            if (
                any(not getattr(e, "fleet_slot", False) for e in envs)
                or len(fleets) != 1
                or [e.index for e in envs] != list(range(len(envs)))
            ):
                raise ValueError(
                    "backend='vec' needs factories yielding the slots of "
                    "one FleetEnv, in order 0..n-1 (build with "
                    "VectorEnv.from_config(..., backend='vec') or "
                    "functools.partial(fleet.slot, i))"
                )
            self._fleet = envs[0].fleet
        # Static metadata from env 0 (all envs share one configuration
        # shape; heterogeneous fleets would need per-env replay DBs).
        self.obs_dim: int = int(self._get_attr(0, "obs_dim"))
        self.n_actions: int = int(self._get_attr(0, "n_actions"))
        self.frame_dim: int = int(self._get_attr(0, "frame_dim"))
        self.action_space = self._get_attr(0, "action_space")
        self.hp = self._get_attr(0, "hp")
        self.shared_db: Optional[ReplayDB] = None
        if shared_db_path is not None:
            self.shared_db = ReplayDB(
                self.frame_dim,
                path=shared_db_path,
                cache_capacity=self.n_envs * self.tick_stride,
            )
        #: Per-env fan-in frontier: which local tick each cluster's
        #: records are synced through.  Shared with the strided sampler
        #: (candidate spans) and re-read on every draw.
        self.spans = TickSpans(self.n_envs, self.tick_stride)
        self._ingest_listeners: List[Callable[[PackedRecords], None]] = []
        # Snapshot support for the worker backends: the op log since the
        # last reset().  Worker-side simulators drive live Python
        # generators (unpicklable), but trajectories are a pure function
        # of seed + op sequence, so replaying the log after a reset *is*
        # the restore.  ``None`` = not resettable to a known point (no
        # reset yet, or an env_method drove one env out of lockstep).
        self._oplog: Optional[List[tuple]] = None
        # Reused every tick: the stacked observation and reward buffers
        # (the hot-path allocation the collection loop must not repeat).
        self._obs_buf = np.zeros((self.n_envs, self.obs_dim))
        self._reward_buf = np.zeros(self.n_envs)

    # -- construction helpers -------------------------------------------
    @classmethod
    def from_config(
        cls,
        config: EnvConfig,
        n_envs: int,
        backend: str = "serial",
        **vec_kwargs: Any,
    ) -> "VectorEnv":
        """N sim-lustre clusters from one base config.

        Per-env seeds come from :func:`vector_seeds` over
        ``config.seed``; each cluster gets its own cache-only replay
        store — per-cluster records are staging for the fan-in, so the
        shared DB is the only store that can want a durable layer.

        ``backend="vec"`` builds one struct-of-arrays
        :class:`~repro.sim.vec.fleet_env.FleetEnv` over the same derived
        seeds and wraps its per-env slots.
        """
        if backend == "vec":
            from repro.sim.vec.fleet_env import FleetEnv

            fleet = FleetEnv(
                replace(config, db_path=CACHE_ONLY), n_envs=n_envs
            )
            factories = [
                functools.partial(fleet.slot, i) for i in range(n_envs)
            ]
            return cls(factories, backend="vec", **vec_kwargs)
        factories = [
            functools.partial(
                StorageTuningEnv,
                replace(config, seed=s, db_path=CACHE_ONLY),
            )
            for s in vector_seeds(config.seed, n_envs)
        ]
        return cls(factories, backend=backend, **vec_kwargs)

    @classmethod
    def from_registry(
        cls,
        name: str,
        n_envs: int,
        base_seed: int = 0,
        backend: str = "serial",
        env_kwargs: Optional[dict] = None,
        **vec_kwargs: Any,
    ) -> "VectorEnv":
        """N registered environments, seeds derived from ``base_seed``.

        The backend's factory must accept a ``seed`` keyword (the
        registry convention; sim-lustre forwards it into
        :class:`EnvConfig`).

        ``backend="vec"`` resolves the named environment's
        :class:`EnvConfig` (scenario-named keys included) and routes it
        through :meth:`from_config`'s fleet path, so scenario timelines
        ride along.
        """
        from repro.env.registry import make_env

        if backend == "vec":
            probe = make_env(name, seed=base_seed, **(env_kwargs or {}))
            config = getattr(probe, "config", None)
            probe.close()
            if not isinstance(config, EnvConfig):
                raise ValueError(
                    f"environment {name!r} exposes no EnvConfig; the vec "
                    f"backend can only vectorize sim-lustre-style "
                    f"configurations"
                )
            return cls.from_config(
                config, n_envs, backend="vec", **vec_kwargs
            )
        factories = [
            functools.partial(make_env, name, seed=s, **(env_kwargs or {}))
            for s in vector_seeds(base_seed, n_envs)
        ]
        return cls(factories, backend=backend, **vec_kwargs)

    # -- worker plumbing -------------------------------------------------
    @property
    def n_envs(self) -> int:
        """Number of sub-environments in the fleet."""
        return len(self._workers)

    @property
    def _synced(self) -> List[int]:
        """Per-env synced tops (read-only view of :attr:`spans`)."""
        return self.spans.tops()

    def _get_attr(self, i: int, name: str) -> Any:
        self._workers[i].submit("call", ("__getattribute__", (name,), {}))
        return self._workers[i].result()

    def env_method(self, i: int, name: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke ``env_i.name(*args, **kwargs)`` (remotely for fork).

        The target environment may advance ticks (``run_ticks``,
        ``step``), so its new replay records are fanned in afterwards.
        """
        if not 0 <= i < self.n_envs:
            raise IndexError(f"env index {i} out of range 0..{self.n_envs - 1}")
        self._workers[i].submit("call", (name, args, kwargs))
        result = self._workers[i].result()
        self._sync_env(i)
        # One env may now be ahead of the others; a reset+replay of the
        # lockstep op log can no longer reproduce this state.
        self._oplog = None
        return result

    # -- shared-DB fan-in ------------------------------------------------
    def _since(self, i: int) -> Optional[int]:
        """The records-after tick for env ``i``'s next reply, or ``None``
        when fan-in is off.

        One behind the synced high-water mark: the synced tick's action
        is recorded one step later than its frame (the action decided
        *after* observing that tick), so re-fetching it picks the
        action up.
        """
        if self.shared_db is None:
            return None
        return self.spans.top(i) - 1

    def add_ingest_listener(
        self, fn: Callable[[PackedRecords], None]
    ) -> None:
        """Call ``fn`` with every global-tick batch landed in the shared
        DB — the tap a decoupled trainer (:mod:`repro.train`) uses to
        mirror the fan-in stream without a second records round-trip.
        """
        self._ingest_listeners.append(fn)

    def remove_ingest_listener(
        self, fn: Callable[[PackedRecords], None]
    ) -> None:
        """Detach a listener added by :meth:`add_ingest_listener`."""
        self._ingest_listeners.remove(fn)

    def _ingest(self, i: int, packed: Optional[PackedRecords]) -> None:
        """Batch-write env ``i``'s new records into the shared DB."""
        if self.shared_db is None or packed is None or len(packed) == 0:
            return
        top = int(packed.ticks[-1])
        if top >= self.tick_stride:
            raise RuntimeError(
                f"env {i} reached tick {top} >= tick_stride "
                f"{self.tick_stride}; raise tick_stride to run longer "
                f"vectorized sessions"
            )
        global_batch = PackedRecords(
            ticks=packed.ticks + i * self.tick_stride,
            frames=packed.frames,
            actions=packed.actions,
            rewards=packed.rewards,
        )
        self.shared_db.put_many(
            global_batch.ticks,
            global_batch.frames,
            global_batch.rewards,
            global_batch.actions,
        )
        self.spans.observe_top(i, top)
        for fn in self._ingest_listeners:
            fn(global_batch)

    def _ingest_fleet(self) -> None:
        """Fan in every fleet row's new records (vec fast paths).

        No worker round-trips: the packed blocks slice straight off the
        fleet's record arrays.
        """
        if self.shared_db is None:
            return
        for i in range(self.n_envs):
            self._ingest(
                i,
                self._fleet.records_since_packed(
                    self._since(i), env_index=i
                ),
            )

    def _sync_env(self, i: int) -> None:
        """Pull-and-ingest env ``i``'s new records (one worker round-trip).

        Only needed after :meth:`env_method` — every lockstep path folds
        the records into the stepping reply instead.
        """
        if self.shared_db is None:
            return
        self._workers[i].submit("records", self._since(i))
        self._ingest(i, self._workers[i].result())

    # -- lockstep lifecycle ----------------------------------------------
    def reset(self) -> np.ndarray:
        """Reset every cluster; returns the stacked ``(n, obs_dim)``
        observation.

        The shared fan-in DB is cleared first — a reused vector env must
        never serve transitions recorded by the previous episode's
        target systems.  The returned array is an internal buffer reused
        by ``step`` — copy it if you need it beyond the next tick.
        """
        if self.shared_db is not None:
            self.shared_db.clear()
        self.spans.reset()
        want_records = self.shared_db is not None
        for w in self._workers:
            w.submit("reset", want_records)
        for i, w in enumerate(self._workers):
            obs, packed = w.result()
            self._obs_buf[i] = obs
            self._ingest(i, packed)
        self._oplog = []
        return self._obs_buf

    def step(
        self, actions: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray, List[dict]]:
        """One action per cluster; every cluster advances one tick.

        Returns ``(obs, rewards, infos)`` where ``obs`` is the reused
        ``(n, obs_dim)`` buffer and ``rewards`` the reused ``(n,)``
        buffer.  All submissions go out before any result is collected,
        so the ``fork`` backend steps clusters in parallel; each reply
        carries the cluster's new replay records, so fan-in costs no
        extra round-trip.
        """
        actions = np.asarray(actions)
        if actions.shape != (self.n_envs,):
            raise ValueError(
                f"expected {self.n_envs} actions, got shape {actions.shape}"
            )
        if self.backend != "vec" and self._oplog is not None:
            self._oplog.append(("step", [int(a) for a in actions]))
        if self.backend == "vec":
            # Batched fast path: one fleet-wide kernel call instead of
            # n per-slot round-trips.
            _obs, rewards, infos = self._fleet.step(
                actions, out=self._obs_buf
            )
            self._reward_buf[:] = rewards
            self._ingest_fleet()
            return self._obs_buf, self._reward_buf, infos
        for i, w in enumerate(self._workers):
            out = self._obs_buf[i] if self.backend == "serial" else None
            w.submit("step", (int(actions[i]), out, self._since(i)))
        infos: List[dict] = []
        for i, w in enumerate(self._workers):
            obs, reward, info, packed = w.result()
            if self.backend != "serial":
                # Serial steps wrote straight into the buffer via out=;
                # pipe-crossing observations need the one copy.
                self._obs_buf[i] = obs
            self._reward_buf[i] = reward
            infos.append(info)
            self._ingest(i, packed)
        return self._obs_buf, self._reward_buf, infos

    def _run_chunks(
        self, action: Optional[int], n_ticks: int, chunk: Optional[int]
    ) -> np.ndarray:
        """Advance all clusters ``n_ticks`` ticks, ``chunk`` per
        round-trip; per-env per-tick rewards, shape ``(n_envs, n_ticks)``.

        One worker round-trip per chunk replaces two pipe crossings per
        tick: each reply carries the chunk's rewards, the post-chunk
        observation and the new replay records together.
        """
        check_positive("n_ticks", n_ticks)
        if chunk is None:
            chunk = n_ticks
        check_positive("chunk", chunk)
        if self.backend != "vec" and self._oplog is not None:
            # Chunk size is transport, not semantics (chunked == per-tick
            # byte-identical), so the log records only what was run.
            self._oplog.append(
                ("chunks", None if action is None else int(action), int(n_ticks))
            )
        rewards = np.empty((self.n_envs, n_ticks))
        done = 0
        while done < n_ticks:
            k = min(chunk, n_ticks - done)
            if self.backend == "vec":
                rewards[:, done : done + k] = self._fleet.run_chunk(
                    k, action=action
                )
                self._fleet.current_observation(out=self._obs_buf)
                self._ingest_fleet()
                done += k
                continue
            for i, w in enumerate(self._workers):
                out = self._obs_buf[i] if self.backend == "serial" else None
                w.submit("run_chunk", (action, k, self._since(i), out))
            for i, w in enumerate(self._workers):
                r, obs, packed = w.result()
                rewards[i, done : done + k] = r
                if self.backend != "serial":
                    self._obs_buf[i] = obs
                self._ingest(i, packed)
            done += k
        return rewards

    def run_ticks(self, n: int, chunk: Optional[int] = None) -> np.ndarray:
        """Advance all clusters ``n`` ticks with no actions.

        Returns per-env per-tick rewards, shape ``(n_envs, n)``.  Runs
        chunked (``chunk`` ticks per worker round-trip, default all of
        them) and leaves :meth:`current_observation` refreshed.
        """
        return self._run_chunks(None, n, chunk)

    def collect(self, n_ticks: int, chunk: Optional[int] = None) -> np.ndarray:
        """Monitoring-only collection: NULL actions on every cluster.

        §3.3's "solely monitoring" mode, vectorized — every tick lands
        one valid (NULL-action) transition per cluster in the shared
        replay DB.  Returns rewards of shape ``(n_envs, n_ticks)``.

        Runs fully chunked: ``chunk`` ticks (default: all ``n_ticks``)
        advance per worker round-trip, with the records batched into
        the same reply — byte-identical to per-tick stepping
        (``chunk=1``), without the per-tick pipe crossings, observation
        builds and per-record DB writes.
        """
        return self._run_chunks(0, n_ticks, chunk)

    # -- session snapshot ------------------------------------------------
    def snapshot(self) -> dict:
        """Capture this vector env's state as ``{"meta", "arrays"}``.

        Two capture strategies, one per backend family:

        - ``vec`` — the :class:`~repro.sim.vec.state.FleetState` arrays
          and every RNG/scenario-runtime state, wholesale (the fleet is
          plain data);
        - ``serial``/``fork`` — the op log since ``reset()``.  Worker
          simulators drive live generator coroutines that cannot cross
          a process boundary, but their trajectories are a pure
          function of seed + op sequence, so the log *is* the state.

        Raises when no lockstep history exists (never reset, or an
        :meth:`env_method` call drove one env ahead of the others).
        """
        from repro.snapshot.core import SnapshotError

        if self.backend == "vec":
            fleet_meta, arrays = self._fleet.snapshot_state()
            meta = {
                "kind": "fleet",
                "backend": self.backend,
                "n_envs": int(self.n_envs),
                "tick_stride": int(self.tick_stride),
                "fleet": fleet_meta,
            }
            return {"meta": meta, "arrays": arrays}
        if self._oplog is None:
            raise SnapshotError(
                "vector env has no replayable history: call reset() "
                "first, and avoid env_method() on snapshotted sessions "
                "(it breaks lockstep)"
            )
        meta = {
            "kind": "oplog",
            "backend": self.backend,
            "n_envs": int(self.n_envs),
            "tick_stride": int(self.tick_stride),
            "oplog": [list(op) for op in self._oplog],
        }
        return {"meta": meta, "arrays": {}}

    def restore(self, snap: dict) -> None:
        """Rebuild the state captured by :meth:`snapshot`.

        The env must have been built from the same config (seeds,
        geometry, scenario).  Ingest listeners attached before the call
        hear the whole restored record stream — a trainer mirror
        re-fed this way ends up with the same replay cache the
        original session had.  ``serial`` and ``fork`` snapshots are
        interchangeable (their trajectories are byte-identical by
        contract); ``vec`` snapshots only restore onto ``vec``.
        """
        from repro.snapshot.core import SnapshotError

        meta = snap["meta"]
        if int(meta["n_envs"]) != self.n_envs:
            raise SnapshotError(
                f"n_envs mismatch: snapshot has {meta['n_envs']}, "
                f"env has {self.n_envs}"
            )
        if int(meta["tick_stride"]) != self.tick_stride:
            raise SnapshotError(
                f"tick_stride mismatch: snapshot has "
                f"{meta['tick_stride']}, env has {self.tick_stride}"
            )
        if meta["kind"] == "fleet":
            if self.backend != "vec":
                raise SnapshotError(
                    f"fleet snapshot cannot restore onto the "
                    f"{self.backend!r} backend"
                )
            self._fleet.restore_state(meta["fleet"], snap["arrays"])
            if self.shared_db is not None:
                self.shared_db.clear()
            self.spans.reset()
            self._fleet.current_observation(out=self._obs_buf)
            self._ingest_fleet()
            return
        if meta["kind"] != "oplog":
            raise SnapshotError(f"unknown env snapshot kind {meta['kind']!r}")
        if self.backend == "vec":
            raise SnapshotError(
                "op-log snapshot cannot restore onto the 'vec' backend"
            )
        self.reset()
        for op in meta["oplog"]:
            if op[0] == "step":
                self.step([int(a) for a in op[1]])
            elif op[0] == "chunks":
                action = None if op[1] is None else int(op[1])
                self._run_chunks(action, int(op[2]), None)
            else:
                raise SnapshotError(f"unknown op {op[0]!r} in env snapshot")

    def commit_replay(self) -> None:
        """Flush every durable replay layer (session-checkpoint hook).

        Broadcasts to the workers (their local stores commit, when they
        have a durable layer) and commits the shared fan-in DB.
        """
        for w in self._workers:
            w.submit("commit")
        for w in self._workers:
            w.result()
        if self.shared_db is not None:
            self.shared_db.commit()

    def current_observation(self) -> np.ndarray:
        """The stacked observation buffer as of the last reset/step."""
        return self._obs_buf

    def refresh_observation(self, i: int) -> np.ndarray:
        """Re-read env ``i``'s live observation into buffer row ``i``.

        Needed after driving one cluster out of lockstep through
        :meth:`env_method` (checkpoint measurements advance its ticks),
        so the next batched act sees that cluster's *current* state.
        Returns the full stacked buffer.
        """
        if not 0 <= i < self.n_envs:
            raise IndexError(f"env index {i} out of range 0..{self.n_envs - 1}")
        if self.backend != "fork":
            # serial and vec are both in-process: write straight into
            # the buffer row via out=.
            self._workers[i].submit(
                "call", ("current_observation", (), {"out": self._obs_buf[i]})
            )
            self._workers[i].result()
        else:
            self._workers[i].submit("call", ("current_observation", (), {}))
            self._obs_buf[i] = self._workers[i].result()
        return self._obs_buf

    def make_sampler(self, seed=None) -> "StridedMinibatchSampler":
        """Algorithm 1 sampler over the shared fan-in replay DB."""
        if self.shared_db is None:
            raise RuntimeError(
                "VectorEnv was built with shared_db_path=None; there is "
                "no shared replay DB to sample from"
            )
        return StridedMinibatchSampler(
            self.shared_db.cache,
            self.spans,
            obs_ticks=self.hp.sampling_ticks_per_observation,
            missing_tolerance=self.hp.missing_entry_tolerance,
            seed=seed,
        )

    def close(self) -> None:
        """Close every sub-environment (and fork worker) and the
        shared fan-in DB."""
        for w in self._workers:
            w.submit("close")
        for w in self._workers:
            try:
                w.result()
            except (EOFError, BrokenPipeError):  # pragma: no cover
                pass
            if isinstance(w, _ForkWorker):
                w.terminate()
        if self.shared_db is not None:
            self.shared_db.close()

    def __enter__(self) -> "VectorEnv":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
