"""Vectorized multi-cluster experience collection (Figure 1 at scale).

The paper's architecture is explicitly one-to-many: "a single central
DRL engine" behind the Interface Daemon serves *many* monitoring and
control agents.  :class:`VectorEnv` reproduces that topology over N
independently-seeded target systems stepped in lockstep: one
``reset()`` returns a stacked ``(n, obs_dim)`` observation, one
``step(actions)`` performs one action per cluster and advances every
cluster one tick, and every cluster's replay records fan into one
shared :class:`~repro.replaydb.db.ReplayDB` — the many-agents-one-engine
experience stream a single DQN trains from.

Backends
--------
``serial``
    All sub-environments live in-process and are stepped in a Python
    loop.  The payoff is batched inference (one stacked forward pass
    per tick instead of N) and the shared replay stream.
``fork``
    Each sub-environment lives in a forked worker process; steps are
    dispatched to all workers before any result is collected, so the
    simulations advance in parallel.  ``fork`` inherits memory, so
    unpicklable workload factories work unchanged.
``shards``
    Sub-environments live on remote shard hosts (``repro shard-host``)
    and are driven over TCP — the fork worker protocol carried by
    :class:`~repro.transport.tcp.SocketTransport` instead of a pipe.
    The master derives *global* per-env seeds with
    :func:`vector_seeds` and assigns each shard a contiguous slice at
    attach time, so env ``i``'s trajectory is byte-identical whether
    it runs forked, serial, or on any shard — placement never touches
    the stream.
``vec``
    All sub-environments are rows of one struct-of-arrays
    :class:`~repro.sim.vec.fleet_env.FleetEnv`: a single ``tick_all``
    kernel advances the whole fleet per tick, so stepping cost stays
    nearly flat in ``n_envs`` on one core.  Each worker holds a
    :class:`~repro.sim.vec.fleet_env.FleetSlot` view, so the per-env
    plumbing (``env_method``, record fan-in, resets) is shared with
    ``serial``; lockstep stepping takes a batched fast path straight
    into the fleet.  The vec backend is a tick-level fluid model — not
    byte-identical to ``serial``/``fork`` (see
    :mod:`repro.sim.vec`) — but vec rollouts are themselves exactly
    reproducible, fleet-size independent, and chunk-invariant.

Fan-in transport
----------------
Every reply that advances ticks carries the environment's new replay
records inline, packed as one
:class:`~repro.replaydb.records.PackedRecords` array block rather than
a pickled object list, and the master lands each batch with one
:meth:`~repro.replaydb.db.ReplayDB.put_many`.  Worker commands and
replies are framed binary messages (:mod:`repro.transport.codec`):
observations, reward vectors and record columns cross pipes and
sockets as raw array buffers, not pickles.  Acting paths stay in
per-tick lockstep (the policy needs every observation) but pay no
separate records round-trip; monitoring-only :meth:`VectorEnv.collect`
and :meth:`VectorEnv.run_ticks` additionally run *chunked* — one
``run_chunk`` round-trip advances many ticks — which is pure
transport: chunked and per-tick stepping are byte-identical.

Determinism contract
--------------------
Per-env trajectories are a pure function of the per-env seed and the
action sequence: ``VectorEnv`` over ``vector_seeds(seed, n)`` is
byte-identical, env by env, to n serial single-environment runs built
with the same derived seeds and fed the same actions — and the
``serial``, ``fork`` and ``shards`` backends are byte-identical to
each other, regardless of how envs are placed across shards.

Shared-DB layout
----------------
The replay cache is tick-indexed, so each sub-environment owns a block
of the shared tick space: env ``i`` writes its local tick ``t`` at
``i * tick_stride + t``.  Blocks keep observation windows contiguous
within one cluster (the Algorithm 1 sampler never stacks frames across
clusters); :class:`StridedMinibatchSampler` draws candidates block-aware
so sampling stays O(1) regardless of stride.  A session must stay under
``tick_stride`` ticks per environment — exceeding it raises rather than
silently aliasing another cluster's block.
"""

from __future__ import annotations

import functools
import multiprocessing
from collections import deque
from dataclasses import replace
from typing import Any, Callable, Deque, List, Optional, Sequence, Tuple

import numpy as np

from repro.env.protocol import Environment
from repro.env.tuning_env import EnvConfig, StorageTuningEnv
from repro.env.worker import (
    WorkerCrashError,
    _transportable,
    exec_env_cmd,
    serve_env_session,
)
from repro.replaydb.db import CACHE_ONLY, ReplayDB
from repro.replaydb.records import PackedRecords
from repro.replaydb.spans import StridedMinibatchSampler, TickSpans
from repro.transport.base import TransportClosedError
from repro.transport.codec import (
    MSG_CMD,
    MSG_ERR,
    decode_error,
    decode_reply,
    encode_command,
)
from repro.transport.framing import ProtocolError
from repro.transport.pipe import PipeTransport
from repro.transport.tcp import SocketTransport
from repro.util.rng import derive_rng, ensure_rng
from repro.util.validation import check_positive

__all__ = [
    "VectorEnv",
    "WorkerCrashError",
    "per_env_rngs",
    "vector_seeds",
]

EnvFactoryFn = Callable[[], Environment]

# Re-exported for callers that import the pickle-survival check from
# its historical home (repro.train.process does).
_transportable = _transportable


def vector_seeds(base_seed: int, n: int) -> List[int]:
    """Derive n independent environment seeds from one base seed.

    Env ``i``'s seed depends only on ``(base_seed, i)`` — not on ``n``
    and not on shard placement — so growing or resharding the fleet
    keeps existing clusters' trajectories intact, and a vectorized run
    can be replayed env by env with serial single-environment runs.
    """
    check_positive("n", n)
    return [
        int(
            derive_rng(ensure_rng(base_seed), "vector-env", i).integers(2**31)
        )
        for i in range(n)
    ]


def per_env_rngs(
    base_seed: int, n: int, label: str = "vector-act"
) -> List[np.random.Generator]:
    """Per-env exploration streams for ε-greedy batched acting.

    Like :func:`vector_seeds`, stream ``i`` depends only on
    ``(base_seed, label, i)``, so the vector size never perturbs the
    random-action sequence any single cluster sees.
    """
    check_positive("n", n)
    return [
        derive_rng(ensure_rng(base_seed), label, i) for i in range(n)
    ]


# --------------------------------------------------------------------------
# Worker backends: one sub-environment behind a submit/result pair
# --------------------------------------------------------------------------


class _SerialWorker:
    """In-process backend: submit computes immediately."""

    def __init__(self, factory: EnvFactoryFn):
        self.env = factory()
        self._result: Any = None

    def submit(self, cmd: str, payload: Any = None) -> None:
        if cmd == "close":
            self.env.close()
            self._result = None
        else:
            self._result = exec_env_cmd(self.env, cmd, payload)

    def result(self) -> Any:
        out, self._result = self._result, None
        return out


def _raise_worker_reply_error(
    payload: bytes, env_index: int, shard: Optional[str] = None
) -> None:
    """Re-raise the failure a worker error frame carries.

    The original exception is raised verbatim when it crossed whole
    (pickled); otherwise its text travels inside a
    :class:`WorkerCrashError` tagged with the global env index (and
    shard address, when the worker lives on one).
    """
    _env, text, exc = decode_error(payload)
    if exc is not None:
        raise exc
    raise WorkerCrashError(text, env_index=env_index, shard=shard)


def _env_worker(factory: EnvFactoryFn, conn) -> None:
    """Forked worker main: serve one environment over its pipe."""
    try:
        serve_env_session([factory()], PipeTransport(conn))
    except KeyboardInterrupt:  # pragma: no cover - teardown
        pass


class _ForkWorker:
    """Forked-process backend: submit is asynchronous, result blocks.

    The child runs the same :func:`~repro.env.worker.serve_env_session`
    loop a shard host runs, over a
    :class:`~repro.transport.pipe.PipeTransport`.  A worker that dies
    mid-command surfaces as :class:`WorkerCrashError` naming the env
    and the command — never as a bare ``EOFError``.
    """

    def __init__(self, factory: EnvFactoryFn, context, env_index: int = 0):
        self.env_index = int(env_index)
        parent, child = context.Pipe()
        self._proc = context.Process(
            target=_env_worker, args=(factory, child), daemon=True
        )
        self._proc.start()
        child.close()
        self._transport = PipeTransport(parent)
        self._pending: Deque[str] = deque()

    def submit(self, cmd: str, payload: Any = None) -> None:
        try:
            self._transport.send(MSG_CMD, encode_command(cmd, 0, payload))
        except TransportClosedError as exc:
            raise WorkerCrashError(
                f"fork worker for env {self.env_index} is gone; cannot "
                f"submit {cmd!r}: {exc}",
                env_index=self.env_index,
            ) from exc
        self._pending.append(cmd)

    def result(self) -> Any:
        cmd = self._pending.popleft() if self._pending else "?"
        try:
            msg_type, payload = self._transport.recv()
        except (TransportClosedError, ProtocolError) as exc:
            raise WorkerCrashError(
                f"fork worker for env {self.env_index} died during "
                f"{cmd!r}: {exc}",
                env_index=self.env_index,
            ) from exc
        if msg_type == MSG_ERR:
            _raise_worker_reply_error(payload, self.env_index)
        _cmd, result = decode_reply(payload)
        return result

    def shutdown(self, timeout: float = 5.0) -> None:
        """Reap the worker process: join with a timeout, escalate to
        terminate and finally kill rather than hang the master."""
        self._transport.close()
        self._proc.join(timeout=timeout)
        if self._proc.is_alive():  # pragma: no cover - hung worker
            self._proc.terminate()
            self._proc.join(timeout=timeout)
        if self._proc.is_alive():  # pragma: no cover - unkillable
            self._proc.kill()
            self._proc.join(timeout=timeout)


class _ShardChannel:
    """One master-side socket to a shard host, multiplexing its envs.

    Commands for every env hosted on the shard share this transport;
    the shard serves them strictly in arrival order, and the master
    collects results in submission order, so a FIFO of in-flight
    commands is the whole multiplexing state.
    """

    def __init__(self, address: str, timeout: Optional[float] = 30.0):
        from repro.env.shard import SHARD_PROTO

        self.address = address
        self.transport = SocketTransport.connect(address, timeout=timeout)
        #: (global env index, local slot, command) per in-flight command.
        self._pending: Deque[Tuple[int, int, str]] = deque()
        reply = self.rpc("hello", {"proto": SHARD_PROTO})
        if not isinstance(reply, dict) or "n_envs" not in reply:
            raise ProtocolError(
                f"shard {address} sent a malformed hello reply: {reply!r}"
            )
        if int(reply.get("proto", -1)) != SHARD_PROTO:
            raise ProtocolError(
                f"shard {address} speaks proto {reply.get('proto')}, "
                f"master speaks {SHARD_PROTO}"
            )
        #: How many envs this shard hosts (its ``--n-envs``).
        self.n_envs = int(reply["n_envs"])

    def submit(
        self, local: int, cmd: str, payload: Any = None, env_index: int = -1
    ) -> None:
        try:
            self.transport.send(MSG_CMD, encode_command(cmd, local, payload))
        except TransportClosedError as exc:
            raise WorkerCrashError(
                f"shard {self.address} is gone; cannot submit {cmd!r} "
                f"for env {env_index}: {exc}",
                env_index=env_index,
                shard=self.address,
            ) from exc
        self._pending.append((env_index, local, cmd))

    def result(self) -> Any:
        env_index, local, cmd = (
            self._pending.popleft() if self._pending else (-1, -1, "?")
        )
        try:
            msg_type, payload = self.transport.recv()
        except (TransportClosedError, ProtocolError) as exc:
            raise WorkerCrashError(
                f"shard {self.address} went away during {cmd!r} for env "
                f"{env_index} (its slot {local}): {exc}",
                env_index=env_index,
                shard=self.address,
            ) from exc
        if msg_type == MSG_ERR:
            _raise_worker_reply_error(payload, env_index, shard=self.address)
        _cmd, result = decode_reply(payload)
        return result

    def rpc(self, cmd: str, payload: Any = None) -> Any:
        """One synchronous session-level command (handshake, snapshot)."""
        self.submit(0, cmd, payload)
        return self.result()

    def close(self) -> None:
        """Drain-then-close the shard socket (idempotent)."""
        self.transport.close()


class _ShardWorker:
    """One sub-environment slot on a shard channel."""

    def __init__(self, channel: _ShardChannel, local: int, env_index: int):
        self._channel = channel
        self._local = int(local)
        self.env_index = int(env_index)

    def submit(self, cmd: str, payload: Any = None) -> None:
        self._channel.submit(
            self._local, cmd, payload, env_index=self.env_index
        )

    def result(self) -> Any:
        return self._channel.result()


# --------------------------------------------------------------------------
# The vector environment
# --------------------------------------------------------------------------


class VectorEnv:
    """N independently-seeded environments stepped in lockstep.

    Parameters
    ----------
    factories:
        One zero-argument callable per sub-environment (``serial``,
        ``fork``, ``vec``).  Each must return an
        :class:`~repro.env.protocol.Environment`; fan-in additionally
        requires ``records_since`` (which the sim-lustre backend
        provides).  ``backend="shards"`` builds its environments on the
        shard hosts instead — pass ``factories=None`` with ``shards=``
        and ``base_seed=``.
    backend:
        ``"serial"`` (in-process), ``"fork"`` (one worker process per
        environment) or ``"shards"`` (remote shard hosts over TCP).
        Results are byte-identical across all three.  ``"vec"`` is the
        struct-of-arrays fluid model (see the module docs).
    shared_db_path:
        Where the shared fan-in :class:`ReplayDB` lives.  The default,
        :data:`~repro.replaydb.db.CACHE_ONLY`, keeps the fan-in store
        in the NumPy cache alone — an in-memory SQLite layer under it
        buys no durability, only per-write overhead on the collection
        hot path.  Pass a filesystem path (or ``":memory:"``) for a
        SQLite-backed store, or ``None`` to disable fan-in entirely.
    tick_stride:
        Tick-space block size per environment in the shared DB; an
        environment raises once its local tick reaches the stride.
    shards:
        ``backend="shards"`` only: the ``host:port`` addresses of the
        shard hosts, in fleet order — shard ``s`` hosts the next
        contiguous ``K_s`` global env slots.
    base_seed:
        ``backend="shards"`` only: the base seed global per-env seeds
        derive from (the :func:`vector_seeds` argument); the master
        sends each shard its slice at attach time.
    connect_timeout:
        ``backend="shards"`` only: seconds to wait for each shard
        dial; established sessions block indefinitely.
    """

    def __init__(
        self,
        factories: Optional[Sequence[EnvFactoryFn]] = None,
        backend: str = "serial",
        shared_db_path: Optional[str] = CACHE_ONLY,
        tick_stride: int = 65536,
        shards: Optional[Sequence[str]] = None,
        base_seed: Optional[int] = None,
        connect_timeout: Optional[float] = 30.0,
    ):
        if backend not in ("serial", "fork", "vec", "shards"):
            raise ValueError(
                f"backend must be 'serial', 'fork', 'vec' or 'shards', "
                f"got {backend!r}"
            )
        if backend == "shards":
            if factories:
                raise ValueError(
                    "backend='shards' builds its environments on the "
                    "shard hosts; pass shards=[...] instead of factories"
                )
            if not shards:
                raise ValueError(
                    "backend='shards' needs at least one shard address"
                )
            if base_seed is None:
                raise ValueError(
                    "backend='shards' needs base_seed: per-env seeds are "
                    "derived globally on the master and sent to the shards"
                )
        elif not factories:
            raise ValueError("VectorEnv needs at least one environment")
        check_positive("tick_stride", tick_stride)
        self.backend = backend
        self.tick_stride = int(tick_stride)
        self._shared_db_path = shared_db_path
        self._fleet: Any = None
        self._closed = False
        self._channels: List[_ShardChannel] = []
        #: Shard addresses (``backend="shards"``) in fleet order.
        self.shards: Optional[List[str]] = None
        #: Env count per shard, aligned with :attr:`shards`.
        self.shard_sizes: Optional[List[int]] = None
        if backend == "shards":
            self._workers = self._connect_shards(
                list(shards), int(base_seed), connect_timeout
            )
        elif backend == "fork":
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                context = multiprocessing.get_context()
            self._workers: List[Any] = [
                _ForkWorker(f, context, env_index=i)
                for i, f in enumerate(factories)
            ]
        else:
            self._workers = [_SerialWorker(f) for f in factories]
        if backend == "vec":
            envs = [w.env for w in self._workers]
            fleets = {id(getattr(e, "fleet", None)) for e in envs}
            if (
                any(not getattr(e, "fleet_slot", False) for e in envs)
                or len(fleets) != 1
                or [e.index for e in envs] != list(range(len(envs)))
            ):
                raise ValueError(
                    "backend='vec' needs factories yielding the slots of "
                    "one FleetEnv, in order 0..n-1 (build with "
                    "VectorEnv.from_config(..., backend='vec') or "
                    "functools.partial(fleet.slot, i))"
                )
            self._fleet = envs[0].fleet
        # Static metadata from env 0 (all envs share one configuration
        # shape; heterogeneous fleets would need per-env replay DBs).
        self.obs_dim: int = int(self._get_attr(0, "obs_dim"))
        self.n_actions: int = int(self._get_attr(0, "n_actions"))
        self.frame_dim: int = int(self._get_attr(0, "frame_dim"))
        self.action_space = self._get_attr(0, "action_space")
        self.hp = self._get_attr(0, "hp")
        self.shared_db: Optional[ReplayDB] = None
        if shared_db_path is not None:
            self.shared_db = ReplayDB(
                self.frame_dim,
                path=shared_db_path,
                cache_capacity=self.n_envs * self.tick_stride,
            )
        #: Per-env fan-in frontier: which local tick each cluster's
        #: records are synced through.  Shared with the strided sampler
        #: (candidate spans) and re-read on every draw.  Sharded fleets
        #: carry the shard topology so frontier bookkeeping can be
        #: reasoned about (and snapshotted) per shard.
        self.spans = TickSpans(
            self.n_envs, self.tick_stride, shard_sizes=self.shard_sizes
        )
        self._ingest_listeners: List[Callable[[PackedRecords], None]] = []
        # Snapshot support for the worker backends: the op log since the
        # last reset().  Worker-side simulators drive live Python
        # generators (unpicklable), but trajectories are a pure function
        # of seed + op sequence, so replaying the log after a reset *is*
        # the restore.  ``None`` = not resettable to a known point (no
        # reset yet, or an env_method drove one env out of lockstep).
        self._oplog: Optional[List[tuple]] = None
        # Reused every tick: the stacked observation and reward buffers
        # (the hot-path allocation the collection loop must not repeat).
        self._obs_buf = np.zeros((self.n_envs, self.obs_dim))
        self._reward_buf = np.zeros(self.n_envs)

    def _connect_shards(
        self,
        shards: List[str],
        base_seed: int,
        connect_timeout: Optional[float],
    ) -> List[_ShardWorker]:
        """Dial every shard, derive the global seed sequence, attach.

        Seeds are computed over the *total* fleet size and sliced
        contiguously per shard, so each env's stream depends on its
        global index alone — resharding the same total fleet is
        byte-invisible.
        """
        try:
            self._channels = [
                _ShardChannel(addr, timeout=connect_timeout)
                for addr in shards
            ]
            self.shards = shards
            self.shard_sizes = [ch.n_envs for ch in self._channels]
            seeds = vector_seeds(base_seed, sum(self.shard_sizes))
            workers: List[_ShardWorker] = []
            offset = 0
            for ch in self._channels:
                ch.rpc(
                    "attach",
                    {"seeds": seeds[offset : offset + ch.n_envs]},
                )
                workers.extend(
                    _ShardWorker(ch, local, offset + local)
                    for local in range(ch.n_envs)
                )
                offset += ch.n_envs
            return workers
        except Exception:
            for ch in self._channels:
                ch.close()
            raise

    # -- construction helpers -------------------------------------------
    @classmethod
    def from_config(
        cls,
        config: EnvConfig,
        n_envs: int,
        backend: str = "serial",
        **vec_kwargs: Any,
    ) -> "VectorEnv":
        """N sim-lustre clusters from one base config.

        Per-env seeds come from :func:`vector_seeds` over
        ``config.seed``; each cluster gets its own cache-only replay
        store — per-cluster records are staging for the fan-in, so the
        shared DB is the only store that can want a durable layer.

        ``backend="vec"`` builds one struct-of-arrays
        :class:`~repro.sim.vec.fleet_env.FleetEnv` over the same derived
        seeds and wraps its per-env slots.

        ``backend="shards"`` (pass ``shards=[...]`` in ``vec_kwargs``)
        attaches to running shard hosts with ``config.seed`` as the
        base seed; ``n_envs`` is validated against the fleet the shards
        actually host.
        """
        if backend == "shards":
            venv = cls(
                None,
                backend="shards",
                base_seed=config.seed,
                **vec_kwargs,
            )
            if int(n_envs) != venv.n_envs:
                sizes = venv.shard_sizes
                venv.close()
                raise ValueError(
                    f"requested n_envs={n_envs} but the shards host "
                    f"{sum(sizes)} env(s) (sizes {sizes})"
                )
            return venv
        if backend == "vec":
            from repro.sim.vec.fleet_env import FleetEnv

            fleet = FleetEnv(
                replace(config, db_path=CACHE_ONLY), n_envs=n_envs
            )
            factories = [
                functools.partial(fleet.slot, i) for i in range(n_envs)
            ]
            return cls(factories, backend="vec", **vec_kwargs)
        factories = [
            functools.partial(
                StorageTuningEnv,
                replace(config, seed=s, db_path=CACHE_ONLY),
            )
            for s in vector_seeds(config.seed, n_envs)
        ]
        return cls(factories, backend=backend, **vec_kwargs)

    @classmethod
    def from_registry(
        cls,
        name: str,
        n_envs: int,
        base_seed: int = 0,
        backend: str = "serial",
        env_kwargs: Optional[dict] = None,
        **vec_kwargs: Any,
    ) -> "VectorEnv":
        """N registered environments, seeds derived from ``base_seed``.

        The backend's factory must accept a ``seed`` keyword (the
        registry convention; sim-lustre forwards it into
        :class:`EnvConfig`).

        ``backend="vec"`` resolves the named environment's
        :class:`EnvConfig` (scenario-named keys included) and routes it
        through :meth:`from_config`'s fleet path, so scenario timelines
        ride along.

        ``backend="shards"`` attaches to running shard hosts (each
        built with its own ``--env``/``--config``; the master only
        sends seeds), validating ``n_envs`` against the hosted total.
        """
        from repro.env.registry import make_env

        if backend == "shards":
            venv = cls(
                None, backend="shards", base_seed=base_seed, **vec_kwargs
            )
            if int(n_envs) != venv.n_envs:
                sizes = venv.shard_sizes
                venv.close()
                raise ValueError(
                    f"requested n_envs={n_envs} but the shards host "
                    f"{sum(sizes)} env(s) (sizes {sizes})"
                )
            return venv
        if backend == "vec":
            probe = make_env(name, seed=base_seed, **(env_kwargs or {}))
            config = getattr(probe, "config", None)
            probe.close()
            if not isinstance(config, EnvConfig):
                raise ValueError(
                    f"environment {name!r} exposes no EnvConfig; the vec "
                    f"backend can only vectorize sim-lustre-style "
                    f"configurations"
                )
            return cls.from_config(
                config, n_envs, backend="vec", **vec_kwargs
            )
        factories = [
            functools.partial(make_env, name, seed=s, **(env_kwargs or {}))
            for s in vector_seeds(base_seed, n_envs)
        ]
        return cls(factories, backend=backend, **vec_kwargs)

    # -- worker plumbing -------------------------------------------------
    @property
    def n_envs(self) -> int:
        """Number of sub-environments in the fleet."""
        return len(self._workers)

    @property
    def _synced(self) -> List[int]:
        """Per-env synced tops (read-only view of :attr:`spans`)."""
        return self.spans.tops()

    def _get_attr(self, i: int, name: str) -> Any:
        self._workers[i].submit("call", ("__getattribute__", (name,), {}))
        return self._workers[i].result()

    def env_method(self, i: int, name: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke ``env_i.name(*args, **kwargs)`` (remotely for fork).

        The target environment may advance ticks (``run_ticks``,
        ``step``), so its new replay records are fanned in afterwards.
        """
        if not 0 <= i < self.n_envs:
            raise IndexError(f"env index {i} out of range 0..{self.n_envs - 1}")
        self._workers[i].submit("call", (name, args, kwargs))
        result = self._workers[i].result()
        self._sync_env(i)
        # One env may now be ahead of the others; a reset+replay of the
        # lockstep op log can no longer reproduce this state.
        self._oplog = None
        return result

    # -- shared-DB fan-in ------------------------------------------------
    def _since(self, i: int) -> Optional[int]:
        """The records-after tick for env ``i``'s next reply, or ``None``
        when fan-in is off.

        One behind the synced high-water mark: the synced tick's action
        is recorded one step later than its frame (the action decided
        *after* observing that tick), so re-fetching it picks the
        action up.
        """
        if self.shared_db is None:
            return None
        return self.spans.top(i) - 1

    def add_ingest_listener(
        self, fn: Callable[[PackedRecords], None]
    ) -> None:
        """Call ``fn`` with every global-tick batch landed in the shared
        DB — the tap a decoupled trainer (:mod:`repro.train`) uses to
        mirror the fan-in stream without a second records round-trip.
        """
        self._ingest_listeners.append(fn)

    def remove_ingest_listener(
        self, fn: Callable[[PackedRecords], None]
    ) -> None:
        """Detach a listener added by :meth:`add_ingest_listener`."""
        self._ingest_listeners.remove(fn)

    def _ingest(self, i: int, packed: Optional[PackedRecords]) -> None:
        """Batch-write env ``i``'s new records into the shared DB."""
        if self.shared_db is None or packed is None or len(packed) == 0:
            return
        top = int(packed.ticks[-1])
        if top >= self.tick_stride:
            raise RuntimeError(
                f"env {i} reached tick {top} >= tick_stride "
                f"{self.tick_stride}; raise tick_stride to run longer "
                f"vectorized sessions"
            )
        global_batch = PackedRecords(
            ticks=packed.ticks + i * self.tick_stride,
            frames=packed.frames,
            actions=packed.actions,
            rewards=packed.rewards,
        )
        self.shared_db.put_many(
            global_batch.ticks,
            global_batch.frames,
            global_batch.rewards,
            global_batch.actions,
        )
        self.spans.observe_top(i, top)
        for fn in self._ingest_listeners:
            fn(global_batch)

    def _ingest_fleet(self) -> None:
        """Fan in every fleet row's new records (vec fast paths).

        No worker round-trips: the packed blocks slice straight off the
        fleet's record arrays.
        """
        if self.shared_db is None:
            return
        for i in range(self.n_envs):
            self._ingest(
                i,
                self._fleet.records_since_packed(
                    self._since(i), env_index=i
                ),
            )

    def _sync_env(self, i: int) -> None:
        """Pull-and-ingest env ``i``'s new records (one worker round-trip).

        Only needed after :meth:`env_method` — every lockstep path folds
        the records into the stepping reply instead.
        """
        if self.shared_db is None:
            return
        self._workers[i].submit("records", self._since(i))
        self._ingest(i, self._workers[i].result())

    # -- lockstep lifecycle ----------------------------------------------
    def reset(self) -> np.ndarray:
        """Reset every cluster; returns the stacked ``(n, obs_dim)``
        observation.

        The shared fan-in DB is cleared first — a reused vector env must
        never serve transitions recorded by the previous episode's
        target systems.  The returned array is an internal buffer reused
        by ``step`` — copy it if you need it beyond the next tick.
        """
        if self.shared_db is not None:
            self.shared_db.clear()
        self.spans.reset()
        want_records = self.shared_db is not None
        for w in self._workers:
            w.submit("reset", want_records)
        for i, w in enumerate(self._workers):
            obs, packed = w.result()
            self._obs_buf[i] = obs
            self._ingest(i, packed)
        self._oplog = []
        return self._obs_buf

    def step(
        self, actions: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray, List[dict]]:
        """One action per cluster; every cluster advances one tick.

        Returns ``(obs, rewards, infos)`` where ``obs`` is the reused
        ``(n, obs_dim)`` buffer and ``rewards`` the reused ``(n,)``
        buffer.  All submissions go out before any result is collected,
        so the ``fork`` and ``shards`` backends step clusters in
        parallel; each reply carries the cluster's new replay records,
        so fan-in costs no extra round-trip.
        """
        actions = np.asarray(actions)
        if actions.shape != (self.n_envs,):
            raise ValueError(
                f"expected {self.n_envs} actions, got shape {actions.shape}"
            )
        if self.backend != "vec" and self._oplog is not None:
            self._oplog.append(("step", [int(a) for a in actions]))
        if self.backend == "vec":
            # Batched fast path: one fleet-wide kernel call instead of
            # n per-slot round-trips.
            _obs, rewards, infos = self._fleet.step(
                actions, out=self._obs_buf
            )
            self._reward_buf[:] = rewards
            self._ingest_fleet()
            return self._obs_buf, self._reward_buf, infos
        for i, w in enumerate(self._workers):
            out = self._obs_buf[i] if self.backend == "serial" else None
            w.submit("step", (int(actions[i]), out, self._since(i)))
        infos: List[dict] = []
        for i, w in enumerate(self._workers):
            obs, reward, info, packed = w.result()
            if self.backend != "serial":
                # Serial steps wrote straight into the buffer via out=;
                # boundary-crossing observations need the one copy.
                self._obs_buf[i] = obs
            self._reward_buf[i] = reward
            infos.append(info)
            self._ingest(i, packed)
        return self._obs_buf, self._reward_buf, infos

    def _run_chunks(
        self, action: Optional[int], n_ticks: int, chunk: Optional[int]
    ) -> np.ndarray:
        """Advance all clusters ``n_ticks`` ticks, ``chunk`` per
        round-trip; per-env per-tick rewards, shape ``(n_envs, n_ticks)``.

        One worker round-trip per chunk replaces two pipe crossings per
        tick: each reply carries the chunk's rewards, the post-chunk
        observation and the new replay records together.
        """
        check_positive("n_ticks", n_ticks)
        if chunk is None:
            chunk = n_ticks
        check_positive("chunk", chunk)
        if self.backend != "vec" and self._oplog is not None:
            # Chunk size is transport, not semantics (chunked == per-tick
            # byte-identical), so the log records only what was run.
            self._oplog.append(
                ("chunks", None if action is None else int(action), int(n_ticks))
            )
        rewards = np.empty((self.n_envs, n_ticks))
        done = 0
        while done < n_ticks:
            k = min(chunk, n_ticks - done)
            if self.backend == "vec":
                rewards[:, done : done + k] = self._fleet.run_chunk(
                    k, action=action
                )
                self._fleet.current_observation(out=self._obs_buf)
                self._ingest_fleet()
                done += k
                continue
            for i, w in enumerate(self._workers):
                out = self._obs_buf[i] if self.backend == "serial" else None
                w.submit("run_chunk", (action, k, self._since(i), out))
            for i, w in enumerate(self._workers):
                r, obs, packed = w.result()
                rewards[i, done : done + k] = r
                if self.backend != "serial":
                    self._obs_buf[i] = obs
                self._ingest(i, packed)
            done += k
        return rewards

    def run_ticks(self, n: int, chunk: Optional[int] = None) -> np.ndarray:
        """Advance all clusters ``n`` ticks with no actions.

        Returns per-env per-tick rewards, shape ``(n_envs, n)``.  Runs
        chunked (``chunk`` ticks per worker round-trip, default all of
        them) and leaves :meth:`current_observation` refreshed.
        """
        return self._run_chunks(None, n, chunk)

    def collect(self, n_ticks: int, chunk: Optional[int] = None) -> np.ndarray:
        """Monitoring-only collection: NULL actions on every cluster.

        §3.3's "solely monitoring" mode, vectorized — every tick lands
        one valid (NULL-action) transition per cluster in the shared
        replay DB.  Returns rewards of shape ``(n_envs, n_ticks)``.

        Runs fully chunked: ``chunk`` ticks (default: all ``n_ticks``)
        advance per worker round-trip, with the records batched into
        the same reply — byte-identical to per-tick stepping
        (``chunk=1``), without the per-tick pipe crossings, observation
        builds and per-record DB writes.
        """
        return self._run_chunks(0, n_ticks, chunk)

    # -- session snapshot ------------------------------------------------
    def snapshot(self) -> dict:
        """Capture this vector env's state as ``{"meta", "arrays"}``.

        Two capture strategies, one per backend family:

        - ``vec`` — the :class:`~repro.sim.vec.state.FleetState` arrays
          and every RNG/scenario-runtime state, wholesale (the fleet is
          plain data);
        - ``serial``/``fork``/``shards`` — the op log since
          ``reset()``.  Worker simulators drive live generator
          coroutines that cannot cross a process boundary, but their
          trajectories are a pure function of seed + op sequence, so
          the log *is* the state.  Sharded fleets additionally run a
          ``snapshot`` barrier against every shard (all in-flight
          commands applied, topology acknowledged) and record the
          shard layout in the meta.

        Raises when no lockstep history exists (never reset, or an
        :meth:`env_method` call drove one env ahead of the others).
        """
        from repro.snapshot.core import SnapshotError

        if self.backend == "vec":
            fleet_meta, arrays = self._fleet.snapshot_state()
            meta = {
                "kind": "fleet",
                "backend": self.backend,
                "n_envs": int(self.n_envs),
                "tick_stride": int(self.tick_stride),
                "fleet": fleet_meta,
            }
            return {"meta": meta, "arrays": arrays}
        if self._oplog is None:
            raise SnapshotError(
                "vector env has no replayable history: call reset() "
                "first, and avoid env_method() on snapshotted sessions "
                "(it breaks lockstep)"
            )
        meta = {
            "kind": "oplog",
            "backend": self.backend,
            "n_envs": int(self.n_envs),
            "tick_stride": int(self.tick_stride),
            "oplog": [list(op) for op in self._oplog],
        }
        if self.backend == "shards":
            acks = [ch.rpc("snapshot") for ch in self._channels]
            meta["shards"] = {
                "addresses": list(self.shards),
                "sizes": list(self.shard_sizes),
                "acks": acks,
            }
        return {"meta": meta, "arrays": {}}

    def restore(self, snap: dict) -> None:
        """Rebuild the state captured by :meth:`snapshot`.

        The env must have been built from the same config (seeds,
        geometry, scenario).  Ingest listeners attached before the call
        hear the whole restored record stream — a trainer mirror
        re-fed this way ends up with the same replay cache the
        original session had.  ``serial``, ``fork`` and ``shards``
        snapshots are interchangeable (their trajectories are
        byte-identical by contract — a 2×2 sharded session may resume
        as a 4-env fork fleet and vice versa, any shard layout);
        ``vec`` snapshots only restore onto ``vec``.
        """
        from repro.snapshot.core import SnapshotError

        meta = snap["meta"]
        if int(meta["n_envs"]) != self.n_envs:
            raise SnapshotError(
                f"n_envs mismatch: snapshot has {meta['n_envs']}, "
                f"env has {self.n_envs}"
            )
        if int(meta["tick_stride"]) != self.tick_stride:
            raise SnapshotError(
                f"tick_stride mismatch: snapshot has "
                f"{meta['tick_stride']}, env has {self.tick_stride}"
            )
        if meta["kind"] == "fleet":
            if self.backend != "vec":
                raise SnapshotError(
                    f"fleet snapshot cannot restore onto the "
                    f"{self.backend!r} backend"
                )
            self._fleet.restore_state(meta["fleet"], snap["arrays"])
            if self.shared_db is not None:
                self.shared_db.clear()
            self.spans.reset()
            self._fleet.current_observation(out=self._obs_buf)
            self._ingest_fleet()
            return
        if meta["kind"] != "oplog":
            raise SnapshotError(f"unknown env snapshot kind {meta['kind']!r}")
        if self.backend == "vec":
            raise SnapshotError(
                "op-log snapshot cannot restore onto the 'vec' backend"
            )
        self.reset()
        for op in meta["oplog"]:
            if op[0] == "step":
                self.step([int(a) for a in op[1]])
            elif op[0] == "chunks":
                action = None if op[1] is None else int(op[1])
                self._run_chunks(action, int(op[2]), None)
            else:
                raise SnapshotError(f"unknown op {op[0]!r} in env snapshot")

    def commit_replay(self) -> None:
        """Flush every durable replay layer (session-checkpoint hook).

        Broadcasts to the workers (their local stores commit, when they
        have a durable layer) and commits the shared fan-in DB.
        """
        for w in self._workers:
            w.submit("commit")
        for w in self._workers:
            w.result()
        if self.shared_db is not None:
            self.shared_db.commit()

    def current_observation(self) -> np.ndarray:
        """The stacked observation buffer as of the last reset/step."""
        return self._obs_buf

    def refresh_observation(self, i: int) -> np.ndarray:
        """Re-read env ``i``'s live observation into buffer row ``i``.

        Needed after driving one cluster out of lockstep through
        :meth:`env_method` (checkpoint measurements advance its ticks),
        so the next batched act sees that cluster's *current* state.
        Returns the full stacked buffer.
        """
        if not 0 <= i < self.n_envs:
            raise IndexError(f"env index {i} out of range 0..{self.n_envs - 1}")
        if self.backend in ("serial", "vec"):
            # Both are in-process: write straight into the buffer row
            # via out=.
            self._workers[i].submit(
                "call", ("current_observation", (), {"out": self._obs_buf[i]})
            )
            self._workers[i].result()
        else:
            # fork and shards cross a process/host boundary: the out=
            # buffer cannot travel, so copy the returned observation.
            self._workers[i].submit("call", ("current_observation", (), {}))
            self._obs_buf[i] = self._workers[i].result()
        return self._obs_buf

    def make_sampler(self, seed=None) -> "StridedMinibatchSampler":
        """Algorithm 1 sampler over the shared fan-in replay DB."""
        if self.shared_db is None:
            raise RuntimeError(
                "VectorEnv was built with shared_db_path=None; there is "
                "no shared replay DB to sample from"
            )
        return StridedMinibatchSampler(
            self.shared_db.cache,
            self.spans,
            obs_ticks=self.hp.sampling_ticks_per_observation,
            missing_tolerance=self.hp.missing_entry_tolerance,
            seed=seed,
        )

    def close(self) -> None:
        """Close every sub-environment, reap every worker process with a
        bounded join, drain-then-close every shard socket, and close the
        shared fan-in DB.  Idempotent — a second call is a no-op, and a
        crashed worker never blocks the teardown of the healthy ones.
        """
        if self._closed:
            return
        self._closed = True
        for w in self._workers:
            try:
                w.submit("close")
            except (
                WorkerCrashError,
                TransportClosedError,
                ProtocolError,
                OSError,
            ):
                pass  # this worker is already gone; keep reaping
        for w in self._workers:
            try:
                w.result()
            except (
                WorkerCrashError,
                TransportClosedError,
                ProtocolError,
                EOFError,
                BrokenPipeError,
                OSError,
            ):
                pass
        for w in self._workers:
            shutdown = getattr(w, "shutdown", None)
            if shutdown is not None:
                shutdown()
        for ch in self._channels:
            ch.close()
        if self.shared_db is not None:
            self.shared_db.close()

    def __enter__(self) -> "VectorEnv":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
