"""Vectorized multi-cluster experience collection (Figure 1 at scale).

The paper's architecture is explicitly one-to-many: "a single central
DRL engine" behind the Interface Daemon serves *many* monitoring and
control agents.  :class:`VectorEnv` reproduces that topology over N
independently-seeded target systems stepped in lockstep: one
``reset()`` returns a stacked ``(n, obs_dim)`` observation, one
``step(actions)`` performs one action per cluster and advances every
cluster one tick, and every cluster's replay records fan into one
shared :class:`~repro.replaydb.db.ReplayDB` — the many-agents-one-engine
experience stream a single DQN trains from.

Backends
--------
``serial``
    All sub-environments live in-process and are stepped in a Python
    loop.  The payoff is batched inference (one stacked forward pass
    per tick instead of N) and the shared replay stream.
``fork``
    Each sub-environment lives in a forked worker process; steps are
    dispatched to all workers before any result is collected, so the
    simulations advance in parallel.  ``fork`` inherits memory, so
    unpicklable workload factories work unchanged.

Determinism contract
--------------------
Per-env trajectories are a pure function of the per-env seed and the
action sequence: ``VectorEnv`` over ``vector_seeds(seed, n)`` is
byte-identical, env by env, to n serial single-environment runs built
with the same derived seeds and fed the same actions — and the
``serial`` and ``fork`` backends are byte-identical to each other.

Shared-DB layout
----------------
The replay cache is tick-indexed, so each sub-environment owns a block
of the shared tick space: env ``i`` writes its local tick ``t`` at
``i * tick_stride + t``.  Blocks keep observation windows contiguous
within one cluster (the Algorithm 1 sampler never stacks frames across
clusters); :class:`StridedMinibatchSampler` draws candidates block-aware
so sampling stays O(1) regardless of stride.  A session must stay under
``tick_stride`` ticks per environment — exceeding it raises rather than
silently aliasing another cluster's block.
"""

from __future__ import annotations

import functools
import multiprocessing
from dataclasses import replace
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.env.protocol import Environment
from repro.env.tuning_env import EnvConfig, StorageTuningEnv
from repro.replaydb.db import ReplayDB
from repro.replaydb.sampler import MinibatchSampler, SamplerStarvedError
from repro.util.rng import derive_rng, ensure_rng
from repro.util.validation import check_positive

EnvFactoryFn = Callable[[], Environment]


def vector_seeds(base_seed: int, n: int) -> List[int]:
    """Derive n independent environment seeds from one base seed.

    Env ``i``'s seed depends only on ``(base_seed, i)`` — not on ``n`` —
    so growing the fleet keeps existing clusters' trajectories intact,
    and a vectorized run can be replayed env by env with serial
    single-environment runs.
    """
    check_positive("n", n)
    return [
        int(
            derive_rng(ensure_rng(base_seed), "vector-env", i).integers(2**31)
        )
        for i in range(n)
    ]


def per_env_rngs(
    base_seed: int, n: int, label: str = "vector-act"
) -> List[np.random.Generator]:
    """Per-env exploration streams for ε-greedy batched acting.

    Like :func:`vector_seeds`, stream ``i`` depends only on
    ``(base_seed, label, i)``, so the vector size never perturbs the
    random-action sequence any single cluster sees.
    """
    check_positive("n", n)
    return [
        derive_rng(ensure_rng(base_seed), label, i) for i in range(n)
    ]


# --------------------------------------------------------------------------
# Worker backends: one sub-environment behind a submit/result pair
# --------------------------------------------------------------------------


class _SerialWorker:
    """In-process backend: submit computes immediately."""

    def __init__(self, factory: EnvFactoryFn):
        self.env = factory()
        self._result: Any = None

    def submit(self, cmd: str, payload: Any = None) -> None:
        if cmd == "reset":
            self._result = self.env.reset()
        elif cmd == "step":
            action, out = payload
            self._result = self.env.step(action, out=out)
        elif cmd == "records":
            self._result = self.env.records_since(payload)
        elif cmd == "call":
            name, args, kwargs = payload
            self._result = getattr(self.env, name)(*args, **kwargs)
        elif cmd == "close":
            self.env.close()
            self._result = None
        else:  # pragma: no cover - internal protocol
            raise ValueError(f"unknown worker command {cmd!r}")

    def result(self) -> Any:
        out, self._result = self._result, None
        return out


def _env_worker(factory: EnvFactoryFn, conn) -> None:
    """Forked worker loop: owns one environment for its whole life."""
    env = factory()
    try:
        while True:
            cmd, payload = conn.recv()
            try:
                if cmd == "reset":
                    result = env.reset()
                elif cmd == "step":
                    action, _out = payload  # out-buffers don't cross pipes
                    result = env.step(action)
                elif cmd == "records":
                    result = env.records_since(payload)
                elif cmd == "call":
                    name, args, kwargs = payload
                    result = getattr(env, name)(*args, **kwargs)
                elif cmd == "close":
                    env.close()
                    conn.send(("ok", None))
                    return
                else:  # pragma: no cover - internal protocol
                    raise ValueError(f"unknown worker command {cmd!r}")
            except Exception as exc:  # surface remote failures verbatim
                conn.send(("err", exc))
            else:
                conn.send(("ok", result))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown
        pass
    finally:
        conn.close()


class _ForkWorker:
    """Forked-process backend: submit is asynchronous, result blocks."""

    def __init__(self, factory: EnvFactoryFn, context):
        self._conn, child = context.Pipe()
        self._proc = context.Process(
            target=_env_worker, args=(factory, child), daemon=True
        )
        self._proc.start()
        child.close()

    def submit(self, cmd: str, payload: Any = None) -> None:
        self._conn.send((cmd, payload))

    def result(self) -> Any:
        status, value = self._conn.recv()
        if status == "err":
            raise value
        return value

    def terminate(self) -> None:
        self._conn.close()
        self._proc.join(timeout=5)
        if self._proc.is_alive():  # pragma: no cover - hung worker
            self._proc.terminate()


# --------------------------------------------------------------------------
# The vector environment
# --------------------------------------------------------------------------


class VectorEnv:
    """N independently-seeded environments stepped in lockstep.

    Parameters
    ----------
    factories:
        One zero-argument callable per sub-environment.  Each must
        return an :class:`~repro.env.protocol.Environment`; fan-in
        additionally requires ``records_since`` (which the sim-lustre
        backend provides).
    backend:
        ``"serial"`` (in-process) or ``"fork"`` (one worker process per
        environment).  Results are byte-identical either way.
    shared_db_path:
        Where the shared fan-in :class:`ReplayDB` lives (default
        in-memory); ``None`` disables fan-in entirely.
    tick_stride:
        Tick-space block size per environment in the shared DB; an
        environment raises once its local tick reaches the stride.
    """

    def __init__(
        self,
        factories: Sequence[EnvFactoryFn],
        backend: str = "serial",
        shared_db_path: Optional[str] = ":memory:",
        tick_stride: int = 65536,
    ):
        if not factories:
            raise ValueError("VectorEnv needs at least one environment")
        if backend not in ("serial", "fork"):
            raise ValueError(
                f"backend must be 'serial' or 'fork', got {backend!r}"
            )
        check_positive("tick_stride", tick_stride)
        self.backend = backend
        self.tick_stride = int(tick_stride)
        self._shared_db_path = shared_db_path
        if backend == "serial":
            self._workers: List[Any] = [_SerialWorker(f) for f in factories]
        else:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                context = multiprocessing.get_context()
            self._workers = [_ForkWorker(f, context) for f in factories]
        # Static metadata from env 0 (all envs share one configuration
        # shape; heterogeneous fleets would need per-env replay DBs).
        self.obs_dim: int = int(self._get_attr(0, "obs_dim"))
        self.n_actions: int = int(self._get_attr(0, "n_actions"))
        self.frame_dim: int = int(self._get_attr(0, "frame_dim"))
        self.action_space = self._get_attr(0, "action_space")
        self.hp = self._get_attr(0, "hp")
        self.shared_db: Optional[ReplayDB] = None
        if shared_db_path is not None:
            self.shared_db = ReplayDB(
                self.frame_dim,
                path=shared_db_path,
                cache_capacity=self.n_envs * self.tick_stride,
            )
        self._synced = [-1] * self.n_envs
        # Reused every tick: the stacked observation and reward buffers
        # (the hot-path allocation the collection loop must not repeat).
        self._obs_buf = np.zeros((self.n_envs, self.obs_dim))
        self._reward_buf = np.zeros(self.n_envs)

    # -- construction helpers -------------------------------------------
    @classmethod
    def from_config(
        cls,
        config: EnvConfig,
        n_envs: int,
        backend: str = "serial",
        **vec_kwargs: Any,
    ) -> "VectorEnv":
        """N sim-lustre clusters from one base config.

        Per-env seeds come from :func:`vector_seeds` over
        ``config.seed``; each cluster gets its own in-memory replay DB
        (the shared fan-in DB is the cross-cluster store).
        """
        factories = [
            functools.partial(
                StorageTuningEnv,
                replace(config, seed=s, db_path=":memory:"),
            )
            for s in vector_seeds(config.seed, n_envs)
        ]
        return cls(factories, backend=backend, **vec_kwargs)

    @classmethod
    def from_registry(
        cls,
        name: str,
        n_envs: int,
        base_seed: int = 0,
        backend: str = "serial",
        env_kwargs: Optional[dict] = None,
        **vec_kwargs: Any,
    ) -> "VectorEnv":
        """N registered environments, seeds derived from ``base_seed``.

        The backend's factory must accept a ``seed`` keyword (the
        registry convention; sim-lustre forwards it into
        :class:`EnvConfig`).
        """
        from repro.env.registry import make_env

        factories = [
            functools.partial(make_env, name, seed=s, **(env_kwargs or {}))
            for s in vector_seeds(base_seed, n_envs)
        ]
        return cls(factories, backend=backend, **vec_kwargs)

    # -- worker plumbing -------------------------------------------------
    @property
    def n_envs(self) -> int:
        return len(self._workers)

    def _get_attr(self, i: int, name: str) -> Any:
        self._workers[i].submit("call", ("__getattribute__", (name,), {}))
        return self._workers[i].result()

    def env_method(self, i: int, name: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke ``env_i.name(*args, **kwargs)`` (remotely for fork).

        The target environment may advance ticks (``run_ticks``,
        ``step``), so its new replay records are fanned in afterwards.
        """
        if not 0 <= i < self.n_envs:
            raise IndexError(f"env index {i} out of range 0..{self.n_envs - 1}")
        self._workers[i].submit("call", (name, args, kwargs))
        result = self._workers[i].result()
        self._sync_env(i)
        return result

    # -- shared-DB fan-in ------------------------------------------------
    def _sync_env(self, i: int) -> None:
        """Mirror env ``i``'s new replay records into the shared DB.

        Re-fetches the last synced tick too: its action is recorded one
        step later than its frame (the action decided *after* observing
        that tick), so the refresh picks it up.
        """
        if self.shared_db is None:
            return
        worker = self._workers[i]
        worker.submit("records", self._synced[i] - 1)
        offset = i * self.tick_stride
        for rec in worker.result():
            if rec.tick >= self.tick_stride:
                raise RuntimeError(
                    f"env {i} reached tick {rec.tick} >= tick_stride "
                    f"{self.tick_stride}; raise tick_stride to run longer "
                    f"vectorized sessions"
                )
            self.shared_db.put_observation(
                offset + rec.tick, rec.frame, rec.reward
            )
            if rec.action >= 0:
                self.shared_db.put_action(offset + rec.tick, rec.action)
            if rec.tick > self._synced[i]:
                self._synced[i] = rec.tick

    def _sync_all(self) -> None:
        for i in range(self.n_envs):
            self._sync_env(i)

    # -- lockstep lifecycle ----------------------------------------------
    def reset(self) -> np.ndarray:
        """Reset every cluster; returns the stacked ``(n, obs_dim)``
        observation.

        The returned array is an internal buffer reused by ``step`` —
        copy it if you need it beyond the next tick.
        """
        for w in self._workers:
            w.submit("reset")
        for i, w in enumerate(self._workers):
            self._obs_buf[i] = w.result()
        self._synced = [-1] * self.n_envs
        self._sync_all()
        return self._obs_buf

    def step(
        self, actions: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray, List[dict]]:
        """One action per cluster; every cluster advances one tick.

        Returns ``(obs, rewards, infos)`` where ``obs`` is the reused
        ``(n, obs_dim)`` buffer and ``rewards`` the reused ``(n,)``
        buffer.  All submissions go out before any result is collected,
        so the ``fork`` backend steps clusters in parallel.
        """
        actions = np.asarray(actions)
        if actions.shape != (self.n_envs,):
            raise ValueError(
                f"expected {self.n_envs} actions, got shape {actions.shape}"
            )
        for i, w in enumerate(self._workers):
            out = self._obs_buf[i] if self.backend == "serial" else None
            w.submit("step", (int(actions[i]), out))
        infos: List[dict] = []
        for i, w in enumerate(self._workers):
            obs, reward, info = w.result()
            if self.backend != "serial":
                # Serial steps wrote straight into the buffer via out=;
                # pipe-crossing observations need the one copy.
                self._obs_buf[i] = obs
            self._reward_buf[i] = reward
            infos.append(info)
        self._sync_all()
        return self._obs_buf, self._reward_buf, infos

    def run_ticks(self, n: int) -> np.ndarray:
        """Advance all clusters ``n`` ticks with no actions.

        Returns per-env per-tick rewards, shape ``(n_envs, n)``.
        """
        check_positive("n", n)
        for w in self._workers:
            w.submit("call", ("run_ticks", (n,), {}))
        rewards = np.stack([w.result() for w in self._workers])
        self._sync_all()
        return rewards

    def collect(self, n_ticks: int) -> np.ndarray:
        """Monitoring-only collection: NULL actions on every cluster.

        §3.3's "solely monitoring" mode, vectorized — every tick lands
        one valid (NULL-action) transition per cluster in the shared
        replay DB.  Returns rewards of shape ``(n_envs, n_ticks)``.
        """
        check_positive("n_ticks", n_ticks)
        nulls = np.zeros(self.n_envs, dtype=np.int64)
        rewards = np.zeros((self.n_envs, n_ticks))
        for t in range(n_ticks):
            _obs, r, _infos = self.step(nulls)
            rewards[:, t] = r
        return rewards

    def current_observation(self) -> np.ndarray:
        """The stacked observation buffer as of the last reset/step."""
        return self._obs_buf

    def refresh_observation(self, i: int) -> np.ndarray:
        """Re-read env ``i``'s live observation into buffer row ``i``.

        Needed after driving one cluster out of lockstep through
        :meth:`env_method` (checkpoint measurements advance its ticks),
        so the next batched act sees that cluster's *current* state.
        Returns the full stacked buffer.
        """
        if not 0 <= i < self.n_envs:
            raise IndexError(f"env index {i} out of range 0..{self.n_envs - 1}")
        if self.backend == "serial":
            self._workers[i].submit(
                "call", ("current_observation", (), {"out": self._obs_buf[i]})
            )
            self._workers[i].result()
        else:
            self._workers[i].submit("call", ("current_observation", (), {}))
            self._obs_buf[i] = self._workers[i].result()
        return self._obs_buf

    def make_sampler(self, seed=None) -> "StridedMinibatchSampler":
        """Algorithm 1 sampler over the shared fan-in replay DB."""
        if self.shared_db is None:
            raise RuntimeError(
                "VectorEnv was built with shared_db_path=None; there is "
                "no shared replay DB to sample from"
            )
        return StridedMinibatchSampler(
            self.shared_db.cache,
            self,
            obs_ticks=self.hp.sampling_ticks_per_observation,
            missing_tolerance=self.hp.missing_entry_tolerance,
            seed=seed,
        )

    def close(self) -> None:
        for w in self._workers:
            w.submit("close")
        for w in self._workers:
            try:
                w.result()
            except (EOFError, BrokenPipeError):  # pragma: no cover
                pass
            if isinstance(w, _ForkWorker):
                w.terminate()
        if self.shared_db is not None:
            self.shared_db.close()

    def __enter__(self) -> "VectorEnv":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class StridedMinibatchSampler(MinibatchSampler):
    """Algorithm 1 over a block-strided shared replay DB.

    The base sampler draws candidate timestamps uniformly from
    ``[min_tick, max_tick]`` — over a blocked tick space that range is
    almost entirely empty, so rejection sampling would starve.  This
    subclass draws a uniform index over the concatenated candidate
    spans of every non-empty block instead, which stays uniform over
    all stored transitions even when one cluster has run ahead (e.g.
    after a checkpoint measurement on the reference cluster).
    """

    def __init__(
        self,
        cache,
        venv: VectorEnv,
        obs_ticks: int = 10,
        missing_tolerance: float = 0.20,
        seed=None,
    ):
        super().__init__(
            cache,
            obs_ticks=obs_ticks,
            missing_tolerance=missing_tolerance,
            seed=seed,
        )
        self._venv = venv

    def _block_spans(self) -> List[tuple[int, int]]:
        """Inclusive global-tick candidate spans, one per non-empty env."""
        spans = []
        stride = self._venv.tick_stride
        for i, top in enumerate(self._venv._synced):
            first = self.obs_ticks - 1
            last = top - 1  # t+1 must exist
            if last >= first:
                spans.append((i * stride + first, i * stride + last))
        return spans

    def sample_minibatch(self, n: int, max_attempts: int = 200):
        check_positive("n", n)
        spans = self._block_spans()
        if not spans:
            raise SamplerStarvedError(
                "shared replay DB does not yet span one full observation "
                "window in any environment"
            )
        from repro.replaydb.records import Minibatch, Transition

        lengths = np.array([last - first + 1 for first, last in spans])
        cum = np.cumsum(lengths)
        collected: list[Transition] = []
        needed = n
        attempts = 0
        while needed > 0:
            attempts += 1
            if attempts > max_attempts:
                raise SamplerStarvedError(
                    f"could not fill a minibatch of {n} after "
                    f"{max_attempts} rounds; too many incomplete timestamps"
                )
            # Uniform over the concatenation of all candidate spans.
            flat = self.rng.integers(0, int(cum[-1]), size=needed)
            for idx in flat:
                b = int(np.searchsorted(cum, idx, side="right"))
                offset_in_block = int(idx) - (int(cum[b - 1]) if b else 0)
                t = spans[b][0] + offset_in_block
                tr = self.transition_at(t)
                if tr is not None:
                    collected.append(tr)
            needed = n - len(collected)
        collected = collected[:n]
        return Minibatch(
            s_t=np.stack([t.s_t for t in collected]),
            s_next=np.stack([t.s_next for t in collected]),
            actions=np.array([t.action for t in collected], dtype=np.int64),
            rewards=np.array([t.reward for t in collected], dtype=np.float64),
        )
