"""String-keyed environment registry (mirrors the tuner registry).

Specs and the CLI name environments by key instead of importing
concrete classes, so one training engine can be pointed at any
registered backend::

    env = make_env("sim-lustre", config=EnvConfig(...))

A factory receives whatever keyword configuration its backend expects
and returns an object satisfying :class:`~repro.env.protocol.Environment`.
The reference implementation — the simulated Lustre cluster of
:class:`~repro.env.tuning_env.StorageTuningEnv` — registers as
``"sim-lustre"`` and accepts either a ready ``config=EnvConfig`` or the
:class:`~repro.env.tuning_env.EnvConfig` fields as plain kwargs, plus
``scenario=``/``scenario_kwargs=`` to attach a fault/perturbation
timeline from :mod:`repro.scenarios`.  Every registered scenario name
doubles as an environment key (``make_env("sim-lustre-degraded",
seed=S)`` works standalone, with a default 1:9 random R/W workload).
"""

from __future__ import annotations

import functools
from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional, Union

from repro.env.protocol import Environment
from repro.env.tuning_env import EnvConfig, StorageTuningEnv
from repro.scenarios.registry import has_scenario, make_scenario, scenario_names
from repro.scenarios.scenario import Scenario

EnvFactory = Callable[..., Environment]

_ENVS: Dict[str, EnvFactory] = {}


def register_env(name: str, factory: EnvFactory) -> None:
    """Register ``factory(**cfg)`` as environment backend ``name``."""
    _ENVS[name] = factory


def env_names() -> List[str]:
    """Every currently registered environment key, sorted."""
    # Scenario names resolve dynamically (see make_env), so scenarios
    # registered after this module imported are env keys too.
    return sorted(set(_ENVS) | set(scenario_names()))


def make_env(name: str, **cfg: Any) -> Environment:
    """Instantiate a registered environment backend by name.

    Every registered *scenario* name is also an environment key: it
    builds the sim-lustre reference backend with that scenario
    attached (resolved at call time, so user scenarios registered via
    :func:`repro.scenarios.register_scenario` work immediately).
    """
    factory = _ENVS.get(name)
    if factory is None and has_scenario(name):
        factory = functools.partial(_make_sim_lustre_scenario, name)
    if factory is None:
        raise KeyError(
            f"unknown environment {name!r}; registered: {env_names()}"
        )
    return factory(**cfg)


def _resolve_scenario(
    scenario: Union[str, Scenario, None],
    scenario_kwargs: Optional[Dict[str, Any]],
) -> Optional[Scenario]:
    """Accept a registered name, a ready Scenario, or nothing."""
    if scenario is None:
        if scenario_kwargs:
            raise ValueError(
                "scenario_kwargs given without a scenario to apply them to"
            )
        return None
    if isinstance(scenario, Scenario):
        if scenario_kwargs:
            raise ValueError(
                "pass scenario_kwargs only with a scenario *name*; a ready "
                "Scenario object is already fully built"
            )
        return scenario
    return make_scenario(scenario, **(scenario_kwargs or {}))


def _make_sim_lustre(
    config: EnvConfig | None = None,
    scenario: Union[str, Scenario, None] = None,
    scenario_kwargs: Optional[Dict[str, Any]] = None,
    **kwargs: Any,
) -> StorageTuningEnv:
    """``"sim-lustre"``: the simulated Lustre cluster reference backend.

    ``scenario`` attaches a fault/perturbation timeline — a registered
    scenario name (``scenario_kwargs`` forwarded to its factory) or a
    ready :class:`~repro.scenarios.scenario.Scenario`; it composes with
    both configuration styles (``config=`` or plain EnvConfig kwargs).
    """
    scen = _resolve_scenario(scenario, scenario_kwargs)
    if config is not None:
        if kwargs:
            raise ValueError(
                "pass either config=EnvConfig(...) or EnvConfig field "
                f"kwargs, not both (got extra {sorted(kwargs)})"
            )
        if scen is not None:
            if config.scenario is not None:
                raise ValueError(
                    f"config already carries scenario "
                    f"{config.scenario.name!r}; refusing to overwrite it "
                    f"with {scen.name!r} (compose them explicitly instead)"
                )
            config = replace(config, scenario=scen)
        return StorageTuningEnv(config)
    if scen is not None:
        kwargs["scenario"] = scen
        # A scenario run is meaningful without hand-picking a workload;
        # default to the Figure 2 best-case mix, exactly as the
        # scenario-named environment keys do.
        kwargs.setdefault("workload_factory", _default_workload)
    return StorageTuningEnv(EnvConfig(**kwargs))


def _default_workload(cluster, seed: int):
    """Figure 2 best-case mix: 1:9 random R:W, five threads per client.

    Module-level so scenario-named environments built without an
    explicit ``workload_factory`` still pickle by reference across
    worker processes.
    """
    from repro.workloads import RandomReadWrite

    return RandomReadWrite(
        cluster, read_fraction=0.1, seed=seed, instances_per_client=5
    )


def _make_sim_lustre_scenario(
    scenario_name: str,
    config: EnvConfig | None = None,
    scenario_kwargs: Optional[Dict[str, Any]] = None,
    **kwargs: Any,
) -> StorageTuningEnv:
    """A sim-lustre cluster with a named scenario pre-attached.

    ``make_env("sim-lustre-degraded", seed=S)`` works standalone:
    whenever a scenario is attached without an explicit
    ``workload_factory``, :func:`_make_sim_lustre` fills in the default
    1:9 random read/write workload.
    """
    return _make_sim_lustre(
        config=config,
        scenario=scenario_name,
        scenario_kwargs=scenario_kwargs,
        **kwargs,
    )


def _make_sim_lustre_vec(**cfg: Any) -> Environment:
    """``"sim-lustre-vec"``: the struct-of-arrays fleet backend.

    Same configuration surface as ``"sim-lustre"`` plus ``n_envs=`` and
    ``seeds=``; see :func:`repro.sim.vec.fleet_env.make_fleet_env`.
    Imported lazily so the registry stays import-light.
    """
    from repro.sim.vec.fleet_env import make_fleet_env

    return make_fleet_env(**cfg)


register_env("sim-lustre", _make_sim_lustre)
register_env("sim-lustre-vec", _make_sim_lustre_vec)
# Every scenario name doubles as an environment key ("sim-lustre-
# degraded" builds sim-lustre with the degraded-disk timeline
# attached); make_env/env_names resolve them dynamically against the
# scenario registry, so nothing is registered here.
