"""String-keyed environment registry (mirrors the tuner registry).

Specs and the CLI name environments by key instead of importing
concrete classes, so one training engine can be pointed at any
registered backend::

    env = make_env("sim-lustre", config=EnvConfig(...))

A factory receives whatever keyword configuration its backend expects
and returns an object satisfying :class:`~repro.env.protocol.Environment`.
The reference implementation — the simulated Lustre cluster of
:class:`~repro.env.tuning_env.StorageTuningEnv` — registers as
``"sim-lustre"`` and accepts either a ready ``config=EnvConfig`` or the
:class:`~repro.env.tuning_env.EnvConfig` fields as plain kwargs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.env.protocol import Environment
from repro.env.tuning_env import EnvConfig, StorageTuningEnv

EnvFactory = Callable[..., Environment]

_ENVS: Dict[str, EnvFactory] = {}


def register_env(name: str, factory: EnvFactory) -> None:
    """Register ``factory(**cfg)`` as environment backend ``name``."""
    _ENVS[name] = factory


def env_names() -> List[str]:
    return sorted(_ENVS)


def make_env(name: str, **cfg: Any) -> Environment:
    """Instantiate a registered environment backend by name."""
    try:
        factory = _ENVS[name]
    except KeyError:
        raise KeyError(
            f"unknown environment {name!r}; registered: {env_names()}"
        ) from None
    return factory(**cfg)


def _make_sim_lustre(
    config: EnvConfig | None = None, **kwargs: Any
) -> StorageTuningEnv:
    """``"sim-lustre"``: the simulated Lustre cluster reference backend."""
    if config is not None:
        if kwargs:
            raise ValueError(
                "pass either config=EnvConfig(...) or EnvConfig field "
                f"kwargs, not both (got extra {sorted(kwargs)})"
            )
        return StorageTuningEnv(config)
    return StorageTuningEnv(EnvConfig(**kwargs))


register_env("sim-lustre", _make_sim_lustre)
