"""The pluggable ``Environment`` protocol (§3.3's engine-side contract).

The paper's deployment is one-to-many: a single central DRL engine
behind the Interface Daemon ingests observations from many monitoring
agents and broadcasts actions to many control agents.  The engine never
cares *what* the target system is — only that it can be reset, stepped
one action tick at a time, and measured.  This module captures that
contract as a structural :class:`typing.Protocol`, so new backends (a
different simulator, a shim over real Lustre daemons, a trace replayer)
plug in without touching the tuners: anything with the right methods
*is* an :class:`Environment`, no inheritance required.

The concrete reference implementation is
:class:`~repro.env.tuning_env.StorageTuningEnv`, registered as
``"sim-lustre"`` in :mod:`repro.env.registry`;
:class:`~repro.env.vector.VectorEnv` steps N of them in lockstep for
the paper's many-agents-one-engine topology.  The struct-of-arrays
fleet engine (:class:`~repro.sim.vec.fleet_env.FleetEnv`, registered
as ``"sim-lustre-vec"``) satisfies the same scalar protocol through
its per-row :class:`~repro.sim.vec.fleet_env.FleetSlot` views while
exposing the batch surface (``step`` over all envs, ``run_chunk``,
``records_since_packed``) natively — the shape
``VectorEnv(backend="vec")`` drives.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # typing only — avoids an import cycle with repro.core
    from repro.core.actions import ActionSpace
    from repro.replaydb.sampler import MinibatchSampler
    from repro.rl.hyperparams import Hyperparameters


@runtime_checkable
class Environment(Protocol):
    """What the DRL engine and the search baselines drive.

    The gym-style core is ``reset()`` / ``step()`` / ``obs_dim`` /
    ``action_space`` / ``close()``; the remaining members are the
    measurement-and-training surface the CAPES session and the §5
    comparators actually use (parameter assignment for before/after
    measurements, replay sampling for Algorithm 1).  The protocol is
    structural and ``runtime_checkable``: ``isinstance(env, Environment)``
    checks member presence only, so existing call sites that construct a
    bare :class:`~repro.env.tuning_env.StorageTuningEnv` keep working
    unchanged.

    Optional hot-path extensions (duck-typed, never required): backends
    may additionally provide ``records_since(after_tick)`` /
    ``records_since_packed(after_tick)`` (the replay-record feed
    :class:`~repro.env.vector.VectorEnv` fans into its shared DB — the
    packed form ships one
    :class:`~repro.replaydb.records.PackedRecords` array block instead
    of a pickled object list), ``run_chunk(k, action=None)`` (advance k
    ticks per call on the chunked collection path), and
    ``commit_replay()`` (flush a durable replay layer at session
    checkpoints).  ``VectorEnv`` and the session fall back to the
    required surface when an extension is absent.
    """

    #: Discrete action vocabulary (direction-per-parameter plus NULL).
    action_space: "ActionSpace"
    #: Table 1 hyperparameters (observation stacking, sampler tolerance).
    hp: "Hyperparameters"

    # -- dimensions ------------------------------------------------------
    @property
    def obs_dim(self) -> int:
        """Flattened observation width handed to the Q-network."""
        ...  # pragma: no cover - protocol

    @property
    def n_actions(self) -> int:
        """Size of the discrete action vocabulary."""
        ...  # pragma: no cover - protocol

    @property
    def frame_dim(self) -> int:
        """Width of one per-tick cluster frame (replay-DB row width)."""
        ...  # pragma: no cover - protocol

    # -- lifecycle -------------------------------------------------------
    @property
    def is_started(self) -> bool:
        """Whether a live target system exists (``reset()`` has run)."""
        ...  # pragma: no cover - protocol

    def reset(self) -> np.ndarray:
        """(Re)build the target system; return the first observation."""
        ...  # pragma: no cover - protocol

    def step(
        self, action: int, out: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, float, dict]:
        """Perform ``action``, advance one tick, observe and reward."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Release the target system's resources (idempotent)."""
        ...  # pragma: no cover - protocol

    # -- measurement -----------------------------------------------------
    def run_ticks(self, n: int) -> np.ndarray:
        """Advance ``n`` ticks with no actions; per-tick objective."""
        ...  # pragma: no cover - protocol

    def set_params(self, values: Dict[str, float]) -> None:
        """Directly apply a tunable-parameter assignment."""
        ...  # pragma: no cover - protocol

    def current_params(self) -> Dict[str, float]:
        """The tunable parameters currently applied, by name."""
        ...  # pragma: no cover - protocol

    def current_observation(
        self, out: Optional[np.ndarray] = None
    ) -> Optional[np.ndarray]:
        """Stacked observation ending at the newest stored tick."""
        ...  # pragma: no cover - protocol

    # -- experience replay ----------------------------------------------
    def make_sampler(self, seed=None) -> "MinibatchSampler":
        """Algorithm 1 sampler over this environment's replay data."""
        ...  # pragma: no cover - protocol
