"""Gym-style environment over the simulated Lustre cluster.

One ``step`` is one action tick (Table 1: one second): the chosen
action is checked/broadcast/recorded, the simulation advances a tick,
monitoring agents sample and ship their PI frames through the real wire
codec into the Interface Daemon, the objective is measured, and the new
stacked observation comes back.

The environment rebuilds the entire target system on ``reset`` from its
config and seed, so experiment scripts get independent, reproducible
runs; Figure 4's "two weeks later, system state has drifted" sessions
are resets with a different ``perturb_seed``, which re-seeds workload
file placement — new object ids land elsewhere on the platters, giving
the different on-disk layout/fragmentation the paper perturbs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.core.actions import ActionSpace, TunableParameter, lustre_parameters
from repro.core.checker import ActionChecker
from repro.core.control import ControlAgent
from repro.core.interface_daemon import InterfaceDaemon
from repro.replaydb.db import ReplayDB
from repro.replaydb.records import PackedRecords, TickRecord
from repro.replaydb.sampler import MinibatchSampler
from repro.rl.hyperparams import Hyperparameters
from repro.scenarios.scenario import Scenario, ScenarioRuntime
from repro.sim.engine import Simulator
from repro.telemetry.indicators import frame_width
from repro.telemetry.monitor import MonitoringAgent
from repro.telemetry.reward import Objective, ThroughputObjective, TickRewardSource
from repro.util.rng import derive_rng, ensure_rng
from repro.workloads.base import Workload

#: Builds the workload for a fresh cluster; second arg is a seed.
WorkloadFactory = Callable[[Cluster, int], Workload]


@dataclass
class EnvConfig:
    """Everything needed to (re)build the tuning environment."""

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    workload_factory: Optional[WorkloadFactory] = None
    parameters: Optional[List[TunableParameter]] = None
    hp: Hyperparameters = field(default_factory=Hyperparameters)
    objective_factory: Callable[[], Objective] = ThroughputObjective
    #: Probability that a monitoring message is lost each tick.
    drop_probability: float = 0.0
    db_path: str = ":memory:"
    replay_capacity: int = 250_000
    seed: int = 0
    #: Extra seed folded into workload placement only (Figure 4).
    perturb_seed: int = 0
    #: Append server-side PIs to every observation (§6 future work).
    include_server_pis: bool = False
    #: Append date/time features for cyclical workloads (§3.1).
    include_time_features: bool = False
    #: Calendar instant of simulated t=0, in seconds (see timefeat).
    time_epoch_offset: float = 0.0
    #: Inject §4.2-style background network interference.
    enable_noise: bool = False
    #: Scheduled fault/perturbation timeline (repro.scenarios); the
    #: runtime is rebuilt on every reset with a stream derived from
    #: ``seed``, so scenario runs replay bit-identically.
    scenario: Optional[Scenario] = None


class StorageTuningEnv:
    """reset()/step() driver over the simulated target system."""

    def __init__(self, config: EnvConfig):
        if config.workload_factory is None:
            raise ValueError("EnvConfig.workload_factory is required")
        self.config = config
        self.hp = config.hp
        params = config.parameters or lustre_parameters(
            window_default=config.cluster.max_rpcs_in_flight,
            rate_default=config.cluster.io_rate_limit,
        )
        self.action_space = ActionSpace(params)
        self.checker = ActionChecker()
        self._client_fw = frame_width(config.cluster.n_servers)
        self._extra_fw = 0
        if config.include_server_pis:
            from repro.telemetry.server_monitor import server_frame_width

            self._extra_fw += config.cluster.n_servers * server_frame_width()
        if config.include_time_features:
            from repro.telemetry.timefeat import time_feature_width

            self._extra_fw += time_feature_width()
        self._cluster_fw = (
            self._client_fw * config.cluster.n_clients + self._extra_fw
        )
        # Populated by reset():
        self.sim: Optional[Simulator] = None
        self.cluster: Optional[Cluster] = None
        self.workload: Optional[Workload] = None
        self.daemon: Optional[InterfaceDaemon] = None
        self.db: Optional[ReplayDB] = None
        self.reward_source: Optional[TickRewardSource] = None
        self.monitors: List[MonitoringAgent] = []
        self.scenario_runtime: Optional[ScenarioRuntime] = None
        self.tick = 0
        self._drop_rng = None

    # -- dimensions ------------------------------------------------------
    @property
    def n_actions(self) -> int:
        """Size of the discrete action vocabulary."""
        return self.action_space.n_actions

    @property
    def frame_dim(self) -> int:
        """Width of one cluster-wide PI frame."""
        return self._cluster_fw

    @property
    def obs_dim(self) -> int:
        """Flattened observation: S ticks × cluster frame width."""
        return self.hp.sampling_ticks_per_observation * self._cluster_fw

    @property
    def is_started(self) -> bool:
        """Whether a live target system exists (reset() has run)."""
        return self.sim is not None

    # -- lifecycle ----------------------------------------------------------
    def reset(self) -> np.ndarray:
        """Build a fresh target system and warm one observation window."""
        cfg = self.config
        root = ensure_rng(cfg.seed)
        self.sim = Simulator()
        self.cluster = Cluster(self.sim, cfg.cluster)
        wl_seed = int(
            derive_rng(
                ensure_rng(cfg.seed), "workload", cfg.perturb_seed
            ).integers(2**31)
        )
        self.workload = cfg.workload_factory(self.cluster, wl_seed)
        self.workload.start()
        self.db = ReplayDB(
            self._cluster_fw,
            path=cfg.db_path,
            cache_capacity=cfg.replay_capacity,
        )
        controls = [ControlAgent(c) for c in self.cluster.clients]
        self.server_monitors = []
        provider = None
        if self._extra_fw > 0:
            if cfg.include_server_pis:
                from repro.telemetry.server_monitor import ServerMonitoringAgent

                self.server_monitors = [
                    ServerMonitoringAgent(
                        self.sim, s, tick_length=self.hp.sampling_tick_length
                    )
                    for s in self.cluster.servers
                ]

            def provider(tick: int):
                import numpy as _np

                parts = [
                    agent.sample_frame(tick) for agent in self.server_monitors
                ]
                if cfg.include_time_features:
                    from repro.telemetry.timefeat import time_features

                    parts.append(
                        time_features(
                            self.sim.now, epoch_offset=cfg.time_epoch_offset
                        )
                    )
                return _np.concatenate(parts) if parts else _np.empty(0)

        self.daemon = InterfaceDaemon(
            n_clients=cfg.cluster.n_clients,
            client_frame_width=self._client_fw,
            db=self.db,
            action_space=self.action_space,
            control_agents=controls,
            checker=self.checker,
            obs_ticks=self.hp.sampling_ticks_per_observation,
            extra_frame_width=self._extra_fw,
            extra_frame_provider=provider,
        )
        self.monitors = [
            MonitoringAgent(
                self.sim,
                client,
                sink=self.daemon.ingest,
                tick_length=self.hp.sampling_tick_length,
                autostart=False,
            )
            for client in self.cluster.clients
        ]
        self.reward_source = TickRewardSource(
            self.cluster,
            cfg.objective_factory(),
            tick_length=self.hp.sampling_tick_length,
        )
        self.noise = None
        if cfg.enable_noise:
            from repro.cluster.noise import NoiseTraffic

            self.noise = NoiseTraffic(
                self.cluster, seed=derive_rng(root, "noise")
            )
        self._drop_rng = derive_rng(root, "drops")
        self.scenario_runtime = None
        if cfg.scenario is not None:
            # Derived from this environment's own seed: replica i of a
            # vectorized fleet perturbs on a stream that depends only
            # on (base_seed, i), never on the fleet size.  The key is
            # deliberately name-free so composing scenarios (which
            # renames, e.g. "a+b") cannot re-shuffle the event streams
            # of the timeline that was already there.
            self.scenario_runtime = ScenarioRuntime(
                cfg.scenario, self, derive_rng(root, "scenario")
            )
        self.tick = 0
        # Warm-up: collect a full observation window under NULL actions.
        # Under heavy monitoring-message loss every warm-up tick can be
        # dropped; keep warming (bounded) until at least one cluster
        # frame reached the daemon.
        warm = self.hp.sampling_ticks_per_observation
        for _ in range(warm):
            self._advance_one_tick()
        extra_budget = max(50, 10 * warm)
        while self.daemon.ticks_stored == 0 and extra_budget > 0:
            self._advance_one_tick()
            extra_budget -= 1
        obs = self.daemon.current_observation()
        if obs is None:
            raise RuntimeError(
                "warm-up failed: no complete monitoring frame reached the "
                "Interface Daemon (drop_probability too high?)"
            )
        return obs

    def _require_reset(self) -> None:
        if self.sim is None:
            raise RuntimeError("call reset() before stepping the environment")

    def _advance_one_tick(self) -> float:
        self.tick += 1
        if self.scenario_runtime is not None:
            # Perturbations land before the tick's interval runs, so
            # tick ``t``'s I/O (and its monitoring frame) already sees
            # an event scheduled ``at_tick=t``.
            self.scenario_runtime.on_tick(self.tick)
        self.sim.run(until=self.tick * self.hp.sampling_tick_length)
        for monitor in self.monitors:
            msg = monitor.sample_once(self.tick)
            monitor.ticks_sampled += 1
            if (
                self.config.drop_probability > 0.0
                and self._drop_rng.random() < self.config.drop_probability
            ):
                # Message lost on the control network: the decoder never
                # sees it, so the next message must carry full state.
                monitor.ticks_dropped += 1
                monitor.encoder.reset()
                continue
            self.daemon.ingest(monitor.client.client_id, msg)
        self.daemon.finish_tick(self.tick)
        reward = self.reward_source.sample()
        self.daemon.set_reward(self.tick, reward)
        return reward

    def step(
        self, action: int, out: Optional[np.ndarray] = None
    ) -> tuple[np.ndarray, float, dict]:
        """Perform ``action``, advance one tick, observe and reward.

        ``out``, when given, receives the new stacked observation in
        place (and is returned) — collection loops pass a preallocated
        buffer so the hot path never reallocates.
        """
        self._require_reset()
        effect = self.daemon.perform_action(self.tick, action)
        reward = self._advance_one_tick()
        obs = self.daemon.current_observation(out=out)
        info = {
            "tick": self.tick,
            "effect": effect,
            "params": self.daemon.parameter_values(),
            "reward": reward,
        }
        return obs, reward, info

    def current_observation(
        self, out: Optional[np.ndarray] = None
    ) -> Optional[np.ndarray]:
        """Stacked observation ending at the newest stored tick.

        Part of the :class:`~repro.env.protocol.Environment` surface so
        drivers never reach into ``env.daemon`` directly.
        """
        self._require_reset()
        return self.daemon.current_observation(out=out)

    def records_since(self, after_tick: int) -> List["TickRecord"]:
        """Replay records with ``tick > after_tick``, oldest first.

        The incremental feed :class:`~repro.env.vector.VectorEnv` drains
        to fan many clusters' experience into one shared Replay DB.
        Warm-up ticks are included (they are valid replay input); ticks
        dropped on the monitoring network are simply absent.
        """
        self._require_reset()
        cache = self.db.cache
        if cache.max_tick is None:
            return []
        lo = max(after_tick + 1, cache.min_tick or 0)
        return [
            cache.get(t)
            for t in range(lo, cache.max_tick + 1)
            if cache.has(t)
        ]

    def records_since_packed(self, after_tick: int) -> "PackedRecords":
        """:meth:`records_since` in column-packed array form.

        Field-for-field identical content, but shipped as one
        ``(k, frame_dim)`` frame block plus tick/action/reward vectors —
        the transport the vectorized fan-in hot path uses so a worker
        reply costs four array pickles instead of k object pickles.
        """
        self._require_reset()
        cache = self.db.cache
        if cache.max_tick is None:
            return PackedRecords.empty(self.frame_dim)
        return cache.records_between(after_tick + 1, cache.max_tick)

    def commit_replay(self) -> None:
        """Flush the durable replay store (a session-checkpoint hook).

        The per-record writers never commit; sessions call this at
        segment boundaries so a crash mid-run cannot lose the whole
        store Figure 4's multi-session reload depends on.
        """
        if self.db is not None:
            self.db.commit()

    # -- baseline/measurement helpers ----------------------------------------
    def run_chunk(self, k: int, action: Optional[int] = None) -> np.ndarray:
        """Advance ``k`` ticks in one call; returns per-tick rewards.

        ``action`` (when given) is performed before every tick — the
        chunked form of k identical ``step(action)`` calls, minus the k
        per-tick observation builds nobody reads in monitoring-only
        collection.  ``action=None`` performs no actions at all (the
        baseline-measurement mode of :meth:`run_ticks`).  Rewards,
        replay records and the post-chunk observation are byte-identical
        to the per-tick loop.
        """
        self._require_reset()
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        rewards = np.empty(k)
        for j in range(k):
            if action is not None:
                self.daemon.perform_action(self.tick, action)
            rewards[j] = self._advance_one_tick()
        return rewards

    def run_ticks(self, n: int) -> np.ndarray:
        """Advance ``n`` ticks with no actions; returns per-tick rewards."""
        return self.run_chunk(n)

    def set_params(self, values: Dict[str, float]) -> None:
        """Directly apply a parameter assignment (baselines, experiments)."""
        self._require_reset()
        known = {p.name for p in self.action_space.parameters}
        for name, value in values.items():
            if name not in known:
                raise KeyError(f"unknown tunable parameter {name!r}")
            for agent in self.daemon.control_agents:
                agent.apply(name, value)

    def current_params(self) -> Dict[str, float]:
        """The tunable parameters currently applied, by name."""
        self._require_reset()
        return self.daemon.parameter_values()

    def make_sampler(self, seed=None) -> MinibatchSampler:
        """Algorithm 1 sampler over this environment's replay cache."""
        self._require_reset()
        return MinibatchSampler(
            self.db.cache,
            obs_ticks=self.hp.sampling_ticks_per_observation,
            missing_tolerance=self.hp.missing_entry_tolerance,
            seed=seed,
        )

    def perturbed(self, perturb_seed: int) -> "StorageTuningEnv":
        """A copy of this environment with drifted workload placement."""
        return StorageTuningEnv(replace(self.config, perturb_seed=perturb_seed))

    def close(self) -> None:
        """Release the replay store (the simulator needs no teardown)."""
        if self.db is not None:
            self.db.close()
