"""The worker side of vectorized collection, medium-agnostic.

One environment command set, one executor, one serve loop — whatever
carries the bytes.  :func:`exec_env_cmd` runs a single command against
a single environment (the in-process ``serial`` backend calls it
directly); :func:`serve_env_session` runs the framed request/response
loop over any :class:`~repro.transport.base.Transport`, serving one
env (a forked worker over its pipe) or many (a shard host over a TCP
socket) with identical semantics.

Error discipline: an exception inside a command crosses back whole
when it pickles (the master re-raises it verbatim); otherwise its
type, message and worker traceback travel as text and surface as a
:class:`WorkerCrashError` — never as a bare ``EOFError`` from a pipe
that died with the secret.
"""

from __future__ import annotations

import traceback
from typing import Any, List, Optional, Sequence

import numpy as np

from repro.env.protocol import Environment
from repro.replaydb.records import PackedRecords
from repro.transport.base import Transport, TransportClosedError
from repro.transport.codec import (
    MSG_CMD,
    MSG_ERR,
    MSG_OK,
    decode_command,
    encode_error,
    encode_reply,
)
from repro.transport.framing import ProtocolError

__all__ = [
    "WorkerCrashError",
    "exec_env_cmd",
    "serve_env_session",
]


class WorkerCrashError(RuntimeError):
    """A collection worker failed in a way its exception couldn't cross.

    Two flavours, one error: the worker raised something unpicklable
    (the message carries the original type, message and full worker
    traceback), or the worker process/host vanished mid-command (the
    message says which command died).  ``env_index`` is the global
    sub-environment index and ``shard`` the shard address when the
    worker lived on one — so a crash in a 2×8 fleet names the culprit.
    """

    def __init__(
        self,
        message: str,
        *,
        env_index: Optional[int] = None,
        shard: Optional[str] = None,
    ):
        super().__init__(message)
        self.env_index = env_index
        self.shard = shard


def fetch_packed(env: Environment, since: int) -> PackedRecords:
    """New replay records after ``since``, in packed array form.

    Uses the backend's native packed feed when it has one; otherwise
    packs the object-form ``records_since`` so any Environment with a
    record feed can join a fan-in fleet.
    """
    fn = getattr(env, "records_since_packed", None)
    if fn is not None:
        return fn(since)
    return PackedRecords.from_records(env.records_since(since), env.frame_dim)


def chunk_rewards(
    env: Environment, action: Optional[int], k: int
) -> np.ndarray:
    """Advance ``k`` ticks (``action`` per tick, or none); per-tick rewards.

    Prefers the backend's ``run_chunk`` (which skips the per-tick
    observation builds nobody reads during chunked collection); the
    fallback per-tick loop is byte-identical, just slower.
    """
    fn = getattr(env, "run_chunk", None)
    if fn is not None:
        return np.asarray(fn(k, action=action))
    if action is None:
        return np.asarray(env.run_ticks(k))
    rewards = np.empty(k)
    for j in range(k):
        _obs, rewards[j], _info = env.step(action)
    return rewards


def exec_env_cmd(env: Environment, cmd: str, payload: Any) -> Any:
    """One worker command against one environment — every backend runs
    exactly this, so serial, fork and sharded stay behaviourally
    identical.

    Replies that advance ticks carry the new replay records inline
    (``since`` is the master's last-synced tick, or ``None`` when
    fan-in is off), collapsing the old step-then-fetch double
    round-trip into one.
    """
    if cmd == "reset":
        want_records = payload
        obs = env.reset()
        packed = fetch_packed(env, -1) if want_records else None
        return obs, packed
    if cmd == "step":
        action, out, since = payload
        obs, reward, info = env.step(action, out=out)
        packed = fetch_packed(env, since) if since is not None else None
        return obs, reward, info, packed
    if cmd == "run_chunk":
        action, k, since, out = payload
        rewards = chunk_rewards(env, action, k)
        obs = env.current_observation(out=out)
        packed = fetch_packed(env, since) if since is not None else None
        return rewards, obs, packed
    if cmd == "records":
        return fetch_packed(env, payload)
    if cmd == "call":
        name, args, kwargs = payload
        return getattr(env, name)(*args, **kwargs)
    if cmd == "commit":
        fn = getattr(env, "commit_replay", None)
        if fn is not None:
            fn()
        return None
    raise ValueError(f"unknown worker command {cmd!r}")  # pragma: no cover


def _transportable(exc: BaseException) -> BaseException:
    """``exc`` if it survives a pickle round-trip, else a text wrapper.

    Call from inside the ``except`` block handling ``exc`` — the
    wrapper's message embeds the active traceback.
    """
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return WorkerCrashError(_error_text(exc))


def _error_text(exc: BaseException) -> str:
    """The text fallback an unpicklable exception travels as."""
    return (
        f"{type(exc).__name__}: {exc}\n"
        f"[worker traceback]\n{traceback.format_exc()}"
    )


def serve_env_session(
    envs: Sequence[Environment], transport: Transport
) -> None:
    """Serve the worker command loop for ``envs`` over ``transport``.

    Runs until every environment has been closed by the master (the
    normal goodbye) or the master's side of the transport goes away.
    A command failure is replied as an error frame and the loop keeps
    serving — one bad ``env_method`` must not take down a shard that
    seven other clusters live on.  On exit, every still-open
    environment is closed and the transport is drained then closed.
    """
    open_envs: List[bool] = [True] * len(envs)
    try:
        while any(open_envs):
            try:
                msg_type, payload = transport.recv()
            except (TransportClosedError, ProtocolError):
                return  # master vanished; finally reaps the envs
            env_i = -1
            try:
                if msg_type != MSG_CMD:
                    raise ProtocolError(
                        f"unexpected message type {msg_type} on the worker "
                        f"command channel"
                    )
                cmd, env_i, data = decode_command(payload)
                if cmd == "close":
                    if 0 <= env_i < len(envs) and open_envs[env_i]:
                        open_envs[env_i] = False
                        envs[env_i].close()
                    transport.send(MSG_OK, encode_reply("close", None))
                    continue
                if cmd == "snapshot":
                    # A shard-level barrier: all prior commands have
                    # been applied; reply with the live topology the
                    # master folds into its session snapshot.
                    transport.send(
                        MSG_OK,
                        encode_reply(
                            "snapshot",
                            {
                                "n_envs": len(envs),
                                "open": int(sum(open_envs)),
                            },
                        ),
                    )
                    continue
                if not 0 <= env_i < len(envs):
                    raise IndexError(
                        f"env index {env_i} out of range 0..{len(envs) - 1}"
                    )
                result = exec_env_cmd(envs[env_i], cmd, data)
            except Exception as exc:  # surface remote failures
                try:
                    transport.send(
                        MSG_ERR, encode_error(exc, _error_text(exc), env_i)
                    )
                except TransportClosedError:  # pragma: no cover - race
                    return
            else:
                transport.send(MSG_OK, encode_reply(cmd, result))
    except TransportClosedError:  # pragma: no cover - master went away
        pass
    finally:
        for i, env in enumerate(envs):
            if open_envs[i]:
                try:
                    env.close()
                except Exception:  # pragma: no cover - teardown
                    pass
        transport.close()
