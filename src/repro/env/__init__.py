"""The storage-tuning environment: cluster + workload + action plumbing.

:class:`~repro.env.tuning_env.StorageTuningEnv` packages a simulated
cluster, a running workload, the monitoring agents, Interface Daemon,
Replay DB and action space behind a gym-style ``reset()`` / ``step()``
interface.  Both the CAPES DQN sessions and the search-based baselines
drive the same environment, so comparisons are apples to apples.
"""

from repro.env.tuning_env import EnvConfig, StorageTuningEnv

__all__ = ["EnvConfig", "StorageTuningEnv"]
