"""The environment layer: a pluggable API over target systems.

The engine side of the paper's one-to-many architecture is an
interface, not a class:

- :class:`~repro.env.protocol.Environment` — the structural protocol
  every target-system backend satisfies (``reset``/``step``/``obs_dim``/
  ``action_space``/``close`` plus the measurement surface);
- :func:`~repro.env.registry.make_env` + the string-keyed registry —
  specs and the CLI name environments by key (``"sim-lustre"`` is the
  simulated Lustre cluster reference backend; ``"sim-lustre-vec"`` the
  struct-of-arrays fleet engine of :mod:`repro.sim.vec`);
- :class:`~repro.env.vector.VectorEnv` — N independently-seeded
  clusters stepped in lockstep, fanning all experience into one shared
  Replay DB (the many-agents-one-engine topology); its ``vec`` backend
  steps all N as rows of one :class:`~repro.sim.vec.fleet_env.FleetEnv`,
  and its ``shards`` backend drives remote
  :class:`~repro.env.shard.ShardHost` fractions of the fleet over TCP
  (:mod:`repro.transport`).

Backwards compatibility: the protocol is structural, so code that
constructs a bare :class:`~repro.env.tuning_env.StorageTuningEnv` from
an :class:`~repro.env.tuning_env.EnvConfig` — every pre-registry call
site — works unchanged, and both names keep their historical import
path here.
"""

from repro.env.protocol import Environment
from repro.env.registry import env_names, make_env, register_env
from repro.env.shard import ShardHost
from repro.env.tuning_env import EnvConfig, StorageTuningEnv
from repro.env.vector import (
    StridedMinibatchSampler,
    VectorEnv,
    WorkerCrashError,
    per_env_rngs,
    vector_seeds,
)

__all__ = [
    "EnvConfig",
    "Environment",
    "ShardHost",
    "StorageTuningEnv",
    "StridedMinibatchSampler",
    "VectorEnv",
    "WorkerCrashError",
    "env_names",
    "make_env",
    "per_env_rngs",
    "register_env",
    "vector_seeds",
]
