"""Shard hosts: remote fractions of a vectorized collection fleet.

A shard host owns ``K`` sub-environments on whatever machine it runs
on and serves the same worker command loop a forked worker serves —
over a TCP socket instead of a pipe.  The collection master
(:class:`~repro.env.vector.VectorEnv` with ``backend="shards"``)
connects to each shard, assigns it a contiguous slice of the globally
derived :func:`~repro.env.vector.vector_seeds` sequence, and fans
every shard's :class:`~repro.replaydb.records.PackedRecords` stream
into one shared replay DB — so a 2×8 sharded fleet produces exactly
the replay stream a 16-env fork fleet produces.

Handshake (framed worker-channel messages, see
:mod:`repro.transport.codec`)::

    master → shard   hello   {"proto": 1}
    shard  → master  ok      {"proto": 1, "n_envs": K}
    master → shard   attach  {"seeds": [s_0, ..., s_{K-1}]}
    shard  → master  ok      {"n_envs": K}
    ...              the plain worker command loop ...

Seeds travel master → shard (not the reverse) because env ``i``'s
stream must depend only on ``(base_seed, global index i)``, never on
which shard happens to host it — the placement-independence contract
the golden-digest tests pin.
"""

from __future__ import annotations

import logging
from typing import Callable, Optional

from repro.env.protocol import Environment
from repro.env.worker import serve_env_session
from repro.transport.base import Transport, TransportClosedError
from repro.transport.codec import (
    MSG_CMD,
    MSG_ERR,
    MSG_OK,
    decode_command,
    encode_error,
    encode_reply,
)
from repro.transport.framing import ProtocolError
from repro.transport.tcp import SocketListener
from repro.util.validation import check_positive

__all__ = ["SHARD_PROTO", "ShardHost"]

#: Version of the shard handshake; a master/shard mismatch is refused
#: at hello time rather than desynchronising mid-session.
SHARD_PROTO = 1

logger = logging.getLogger(__name__)

#: A per-env factory: global seed in, live environment out.
EnvBuilderFn = Callable[[int], Environment]


class ShardHost:
    """One remote fraction of a collection fleet, behind a TCP listener.

    Parameters
    ----------
    env_builder:
        ``seed -> Environment`` factory; called once per hosted env at
        attach time with the master-assigned global seeds.
    n_envs:
        How many sub-environments this shard hosts.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port — read the
        resolved one back from :attr:`address` (the CLI prints it).
    """

    def __init__(
        self,
        env_builder: EnvBuilderFn,
        n_envs: int,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        check_positive("n_envs", n_envs)
        self._env_builder = env_builder
        self.n_envs = int(n_envs)
        self._listener = SocketListener(host=host, port=port)

    @property
    def address(self) -> str:
        """The bound ``host:port`` masters connect to."""
        return self._listener.address

    @property
    def port(self) -> int:
        """The bound port (resolved when constructed with ``port=0``)."""
        return self._listener.port

    def _expect_cmd(self, transport: Transport, expected: str):
        """The next inbound frame, which must be command ``expected``."""
        msg_type, payload = transport.recv()
        if msg_type != MSG_CMD:
            raise ProtocolError(
                f"expected a {expected!r} command frame, got message type "
                f"{msg_type}"
            )
        cmd, _env, data = decode_command(payload)
        if cmd != expected:
            raise ProtocolError(
                f"expected {expected!r} during the shard handshake, got "
                f"{cmd!r}"
            )
        return data

    def serve_connection(self, transport: Transport) -> None:
        """Handshake one master and serve its session to completion."""
        try:
            hello = self._expect_cmd(transport, "hello") or {}
            proto = int(hello.get("proto", -1))
            if proto != SHARD_PROTO:
                raise ProtocolError(
                    f"shard speaks proto {SHARD_PROTO}, master sent "
                    f"{proto}"
                )
            transport.send(
                MSG_OK,
                encode_reply(
                    "hello", {"proto": SHARD_PROTO, "n_envs": self.n_envs}
                ),
            )
            attach = self._expect_cmd(transport, "attach") or {}
            seeds = attach.get("seeds")
            if not isinstance(seeds, list) or len(seeds) != self.n_envs:
                raise ProtocolError(
                    f"attach carries {0 if seeds is None else len(seeds)} "
                    f"seed(s) for a shard of {self.n_envs} env(s)"
                )
        except (TransportClosedError, ProtocolError) as exc:
            logger.warning("shard handshake failed: %s", exc)
            try:
                if not transport.closed:
                    transport.send(
                        MSG_ERR, encode_error(exc, str(exc), env=-1)
                    )
            except (TransportClosedError, ProtocolError, OSError):
                pass
            transport.close()
            return
        envs = [self._env_builder(int(s)) for s in seeds]
        transport.send(
            MSG_OK, encode_reply("attach", {"n_envs": self.n_envs})
        )
        logger.info(
            "shard %s attached: %d env(s), seeds %s",
            self.address,
            self.n_envs,
            seeds,
        )
        serve_env_session(envs, transport)

    def serve_forever(self, once: bool = False) -> None:
        """Accept masters until the listener is closed.

        Sessions are served one at a time — a shard's envs belong to
        exactly one master — but a finished (or crashed) master can be
        replaced by simply reconnecting, unless ``once`` is set.
        Closing the listener from another thread stops the loop.
        """
        while True:
            try:
                transport = self._listener.accept()
            except TransportClosedError:
                return
            self.serve_connection(transport)
            if once:
                self.close()
                return

    def close(self) -> None:
        """Stop accepting masters (idempotent)."""
        self._listener.close()

    def __enter__(self) -> "ShardHost":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
