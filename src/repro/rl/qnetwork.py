"""Q-network: observation → vector of action values.

The paper picks the head style that "maps an observation to an array of
Q-values of each action", so all actions are priced with one forward
pass (§3.4).  :class:`QNetwork` wraps the MLP with action-indexed loss
computation: only the output of the action actually taken receives a
Bellman-error gradient.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.losses import huber_loss, mse_loss
from repro.nn.network import MLP


class QNetwork:
    """MLP wrapper exposing Q-value prediction and TD-error training."""

    def __init__(self, net: MLP, loss: str = "mse"):
        if loss not in ("mse", "huber"):
            raise ValueError(f"loss must be 'mse' or 'huber', got {loss!r}")
        self.net = net
        self.loss_name = loss
        self._loss_fn = mse_loss if loss == "mse" else huber_loss

    @property
    def n_actions(self) -> int:
        return self.net.out_dim

    @property
    def obs_dim(self) -> int:
        return self.net.in_dim

    def q_values(self, obs: np.ndarray) -> np.ndarray:
        """Q(s, ·) for one observation or a batch."""
        return self.net.forward(obs)

    def best_action(self, obs: np.ndarray) -> int:
        """argmax_a Q(s, a) for a single observation."""
        q = self.net.forward(np.asarray(obs).reshape(1, -1))
        return int(np.argmax(q[0]))

    def td_backward(
        self,
        obs: np.ndarray,
        actions: np.ndarray,
        targets: np.ndarray,
    ) -> float:
        """Accumulate gradients of Equation 1's loss; return its value.

        Only the taken action's Q-output is compared with the Bellman
        target; other outputs get zero gradient.  Callers zero grads
        before and step the optimiser after.
        """
        obs = np.asarray(obs, dtype=np.float64)
        actions = np.asarray(actions, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.float64)
        n = obs.shape[0]
        if actions.shape != (n,) or targets.shape != (n,):
            raise ValueError(
                f"batch size mismatch: obs {obs.shape}, actions "
                f"{actions.shape}, targets {targets.shape}"
            )
        if actions.min() < 0 or actions.max() >= self.n_actions:
            raise ValueError("action index out of range")
        q_all = self.net.forward(obs)  # (n, A)
        rows = np.arange(n)
        q_taken = q_all[rows, actions]
        loss, dpred = self._loss_fn(q_taken, targets)
        grad = np.zeros_like(q_all)
        grad[rows, actions] = dpred
        self.net.backward(grad)
        return loss
