"""The DQN agent: ε-greedy acting + experience-replay training.

Brings together the Q-network, its slowly tracking target copy, the
Adam optimiser, the ε schedule and the replay sampler.  ``train_step``
implements Equation 1:

    L(θ) = E_D[(r + γ·max_a' Q(s', a'; θ⁻) − Q(s, a; θ))²]

followed by the per-minibatch soft target update.  The loss history is
the paper's *prediction error* trace (Figure 5): "the difference between
the neural network's predicted performance ... and the actual system
performance one second later".
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

import numpy as np

from repro.nn.network import MLP
from repro.nn.optimizers import Adam, Optimizer
from repro.replaydb.records import Minibatch
from repro.replaydb.sampler import MinibatchSampler, SamplerStarvedError
from repro.rl.epsilon import EpsilonSchedule
from repro.rl.hyperparams import Hyperparameters
from repro.rl.qnetwork import QNetwork
from repro.rl.target import soft_update
from repro.util.rng import ensure_rng


class DQNAgent:
    """Deep Q-learning agent over a discrete action space."""

    def __init__(
        self,
        obs_dim: int,
        n_actions: int,
        hp: Optional[Hyperparameters] = None,
        optimizer: Optional[Optimizer] = None,
        loss: str = "mse",
        double_dqn: bool = False,
        use_batchnorm: bool = False,
        loss_history_limit: int = 100_000,
        rng=None,
    ):
        self.hp = hp or Hyperparameters()
        #: Double-DQN target selection (van Hasselt et al., 2016).  Off
        #: by default — the paper predates it — but exposed because the
        #: vanilla max-operator's optimism bias is the classic cause of
        #: runaway Q-values on short, noisy sessions (see the ablation
        #: bench).
        self.double_dqn = bool(double_dqn)
        self.rng = ensure_rng(rng)
        net = MLP.for_q_network(
            obs_dim,
            n_actions,
            n_hidden_layers=self.hp.n_hidden_layers,
            hidden_size=self.hp.hidden_layer_size,
            use_batchnorm=use_batchnorm,
            rng=self.rng,
        )
        self.online = QNetwork(net, loss=loss)
        self.target = QNetwork(net.clone(), loss=loss)
        self.optimizer = optimizer or Adam(lr=self.hp.adam_learning_rate)
        self.epsilon = EpsilonSchedule(
            initial=self.hp.epsilon_initial,
            final=self.hp.epsilon_final,
            anneal_ticks=self.hp.exploration_ticks,
            bump_value=self.hp.epsilon_workload_bump,
        )
        if loss_history_limit <= 0:
            raise ValueError(
                f"loss_history_limit must be > 0, got {loss_history_limit}"
            )
        #: Rolling prediction-error trace (Figure 5).  Bounded: a long
        #: vectorized sweep performs millions of train steps, and an
        #: unbounded list grew without limit.  The window keeps the most
        #: recent ``loss_history_limit`` losses — far more than any
        #: Figure 5 trace plots — while per-call traces
        #: (:class:`~repro.core.session.TrainResult.losses`) remain
        #: complete and unaffected.
        self.loss_history: Deque[float] = deque(maxlen=int(loss_history_limit))
        self.train_steps = 0
        self.actions_taken = 0
        self.random_actions_taken = 0

    @property
    def n_actions(self) -> int:
        return self.online.n_actions

    @property
    def obs_dim(self) -> int:
        return self.online.obs_dim

    # -- acting --------------------------------------------------------------
    def act(self, obs: np.ndarray, greedy: bool = False) -> int:
        """ε-greedy action for ``obs``; ``greedy=True`` skips exploration."""
        self.actions_taken += 1
        if not greedy:
            eps = self.epsilon.step()
            if self.rng.random() < eps:
                self.random_actions_taken += 1
                return int(self.rng.integers(self.n_actions))
        # Single-observation inference: normalization layers (if any)
        # must use running statistics, not the degenerate batch of one.
        self.online.net.eval_mode()
        try:
            return self.online.best_action(obs)
        finally:
            self.online.net.train_mode()

    def act_batch(
        self,
        obs_batch: np.ndarray,
        greedy: bool = False,
        rngs: Optional[List[np.random.Generator]] = None,
    ) -> np.ndarray:
        """Actions for a stacked ``(n, obs_dim)`` observation batch.

        One forward pass prices every environment's actions at once —
        the vectorized-collection hot path — instead of n single-row
        inferences.  Under ``greedy=True`` this returns exactly
        ``[act(o, greedy=True) for o in obs_batch]``: the network is
        switched to eval mode for the whole batch (running statistics,
        never the batch's own), and per-row Q-values match the
        single-row path to the last ulp that matters for the argmax.

        Exploration uses ``rngs`` — one generator per environment, e.g.
        from :func:`repro.env.vector.per_env_rngs` — so each cluster's
        random-action stream is independent of the vector size; without
        ``rngs`` all rows share the agent's own generator.  ε anneals
        once per call: a batch is one action tick of system time, not n.
        """
        obs_batch = np.asarray(obs_batch, dtype=np.float64)
        if obs_batch.ndim != 2:
            raise ValueError(
                f"obs_batch must be (n, obs_dim), got shape {obs_batch.shape}"
            )
        n = obs_batch.shape[0]
        if rngs is not None and len(rngs) != n:
            raise ValueError(
                f"got {len(rngs)} rng streams for a batch of {n}"
            )
        self.actions_taken += n
        self.online.net.eval_mode()
        try:
            q = self.online.q_values(obs_batch)  # (n, A)
        finally:
            self.online.net.train_mode()
        actions = np.argmax(q, axis=1).astype(np.int64)
        if not greedy:
            eps = self.epsilon.step()
            streams = rngs if rngs is not None else [self.rng] * n
            for i, stream in enumerate(streams):
                if stream.random() < eps:
                    self.random_actions_taken += 1
                    actions[i] = int(stream.integers(self.n_actions))
        return actions

    def notify_workload_change(self) -> None:
        """§3.6: bump ε when the Interface Daemon reports a new workload."""
        self.epsilon.bump()

    # -- weight transport ------------------------------------------------
    def snapshot_weights(self, include_optimizer: bool = False) -> bytes:
        """The online network (optionally + optimiser state) as
        checkpoint bytes — the broadcast payload a decoupled trainer
        ships back to the acting agent (:mod:`repro.train`)."""
        from repro.nn.checkpoint import checkpoint_to_bytes

        return checkpoint_to_bytes(
            self.online.net,
            optimizer=self.optimizer if include_optimizer else None,
        )

    def snapshot_target(self) -> bytes:
        """The target network as checkpoint bytes (no optimiser state)."""
        from repro.nn.checkpoint import checkpoint_to_bytes

        return checkpoint_to_bytes(self.target.net)

    def adopt_network(self, net: "MLP", target_net: Optional["MLP"] = None) -> None:
        """Replace the online (and target) networks with ``net``.

        The single mutation point for externally produced weights —
        checkpoint loads and trainer broadcasts both go through here,
        preserving the configured loss.  Without ``target_net`` the
        target becomes a fresh clone of ``net`` (the checkpoint-load
        semantics: a restored model restarts its slow tracking copy).
        """
        loss = self.online.loss_name
        self.online = QNetwork(net, loss=loss)
        self.target = QNetwork(
            target_net if target_net is not None else net.clone(), loss=loss
        )

    # -- training --------------------------------------------------------------
    def bellman_targets(self, batch: Minibatch) -> np.ndarray:
        """y = r + γ·max_a' Q(s', a'; θ⁻) — Equation 1's target.

        With ``double_dqn`` the action is chosen by the online network
        and only *valued* by the target network, removing the max
        operator's optimism bias.
        """
        q_next = self.target.q_values(batch.s_next)  # (n, A)
        if self.double_dqn:
            chosen = np.argmax(self.online.q_values(batch.s_next), axis=1)
            future = q_next[np.arange(len(batch)), chosen]
        else:
            future = q_next.max(axis=1)
        return batch.rewards + self.hp.discount_rate * future

    def train_step(self, batch: Minibatch) -> float:
        """One SGD update on one minibatch; returns the prediction error."""
        targets = self.bellman_targets(batch)
        self.online.net.zero_grad()
        loss = self.online.td_backward(batch.s_t, batch.actions, targets)
        self.optimizer.step(self.online.net.parameters())
        soft_update(
            self.target.net, self.online.net, self.hp.target_network_update_rate
        )
        self.loss_history.append(loss)
        self.train_steps += 1
        return loss

    def train_from_sampler(self, sampler: MinibatchSampler) -> Optional[float]:
        """Sample one minibatch and train; None if the DB is too sparse."""
        try:
            batch = sampler.sample_minibatch(self.hp.minibatch_size)
        except SamplerStarvedError:
            return None
        return self.train_step(batch)
