"""ε-greedy exploration schedule (§3.6).

Linear anneal from ``initial`` to ``final`` over ``anneal_ticks`` steps.
On a workload change the schedule is bumped up to ``bump_value`` ("so
that the tuning agent can do some exploration while avoiding local
maximums") and resumes annealing downward at the same per-tick rate.
"""

from __future__ import annotations

from repro.util.validation import check_in_range, check_positive


class EpsilonSchedule:
    """Stateful exploration-rate schedule stepped once per action tick."""

    def __init__(
        self,
        initial: float = 1.0,
        final: float = 0.05,
        anneal_ticks: int = 7200,
        bump_value: float = 0.20,
    ):
        check_in_range("initial", initial, 0.0, 1.0)
        check_in_range("final", final, 0.0, 1.0)
        if final > initial:
            raise ValueError(f"final ({final}) must be <= initial ({initial})")
        check_positive("anneal_ticks", anneal_ticks)
        check_in_range("bump_value", bump_value, 0.0, 1.0)
        self.initial = float(initial)
        self.final = float(final)
        self.anneal_ticks = int(anneal_ticks)
        self.bump_value = float(bump_value)
        self._rate = (self.initial - self.final) / self.anneal_ticks
        self._value = self.initial
        self.ticks = 0
        self.bumps = 0

    @property
    def value(self) -> float:
        """Current probability of taking a random action."""
        return self._value

    def step(self) -> float:
        """Advance one action tick; returns the ε to use *this* tick."""
        current = self._value
        self._value = max(self.final, self._value - self._rate)
        self.ticks += 1
        return current

    def bump(self) -> None:
        """Workload change: raise ε to the bump value (never lowers it).

        ``bumps`` counts every notification, whether or not ε moved —
        it is workload-change telemetry, and a change arriving while ε
        is already high is still a change.
        """
        self.bumps += 1
        if self._value < self.bump_value:
            self._value = self.bump_value

    def freeze_final(self) -> None:
        """Jump straight to the final ε (evaluation sessions)."""
        self._value = self.final
