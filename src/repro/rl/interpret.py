"""Policy interpretability probes (§6).

"DNN-based reinforcement learning does have a disadvantage in that it
can be difficult to explain how the trained model works."  These probes
make the learned policy legible after the fact:

- :func:`policy_table` — sweep one tunable parameter across its range
  inside otherwise-frozen observations and report the greedy action at
  each value.  For the congestion window this reads like a control law
  ("below 4: NULL/increase, above 5: decrease"), which is how the
  Figure 2 policies were sanity-checked.
- :func:`q_sensitivity` — mean |∂Q/∂input| per observation feature,
  aggregated over a batch of real observations: which PIs the network
  actually attends to (a gradient-based saliency, the standard
  first-look tool).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.actions import ActionSpace, TunableParameter
from repro.rl.agent import DQNAgent


@dataclass
class PolicyRow:
    """Greedy decision at one probed parameter value."""

    value: float
    action: int
    action_label: str
    q_values: np.ndarray


def policy_table(
    agent: DQNAgent,
    action_space: ActionSpace,
    base_obs: np.ndarray,
    parameter: str,
    feature_indices: Sequence[int],
    feature_scale: float,
    values: Optional[Sequence[float]] = None,
) -> List[PolicyRow]:
    """Greedy action as a function of one parameter's observed value.

    ``base_obs`` is a real observation to perturb; ``feature_indices``
    are the positions (within the flattened observation) holding that
    parameter's PI — e.g. every OSC's ``max_rpcs_in_flight`` slot across
    all stacked ticks — and ``feature_scale`` is the indicator's scale
    divisor, so probe values are written in engineering units.
    """
    params = {p.name: p for p in action_space.parameters}
    if parameter not in params:
        raise KeyError(f"unknown tunable parameter {parameter!r}")
    p: TunableParameter = params[parameter]
    if values is None:
        n_steps = int(round((p.high - p.low) / p.step))
        stride = max(1, n_steps // 16)
        values = [p.low + i * p.step for i in range(0, n_steps + 1, stride)]
    base = np.asarray(base_obs, dtype=np.float64)
    if base.ndim != 1:
        raise ValueError(f"base_obs must be flat, got shape {base.shape}")
    idx = np.asarray(list(feature_indices), dtype=np.int64)
    if idx.size == 0 or idx.max() >= base.size:
        raise ValueError("feature_indices empty or out of range")
    rows: List[PolicyRow] = []
    for v in values:
        obs = base.copy()
        obs[idx] = float(v) / feature_scale
        q = agent.online.q_values(obs)
        a = int(np.argmax(q))
        rows.append(
            PolicyRow(
                value=float(v),
                action=a,
                action_label=action_space.describe(a),
                q_values=np.asarray(q, dtype=np.float64),
            )
        )
    return rows


def format_policy_table(rows: Sequence[PolicyRow], parameter: str) -> str:
    """Human-readable rendering of :func:`policy_table` output."""
    lines = [f"{parameter:>12}  greedy action"]
    for row in rows:
        lines.append(f"{row.value:>12g}  {row.action_label}")
    return "\n".join(lines)


def q_sensitivity(agent: DQNAgent, observations: np.ndarray) -> np.ndarray:
    """Mean absolute gradient of max-Q w.r.t. each input feature.

    Returns a vector of ``obs_dim`` saliencies, averaged over the given
    batch of observations.  Computed by backpropagating a one-hot
    gradient through the greedy action's output.
    """
    obs = np.asarray(observations, dtype=np.float64)
    if obs.ndim == 1:
        obs = obs[None, :]
    if obs.shape[1] != agent.obs_dim:
        raise ValueError(
            f"observations have width {obs.shape[1]}, agent expects "
            f"{agent.obs_dim}"
        )
    net = agent.online.net
    net.zero_grad()
    q = net.forward(obs)  # (n, A)
    grad_out = np.zeros_like(q)
    grad_out[np.arange(len(obs)), np.argmax(q, axis=1)] = 1.0
    grad_in = net.backward(grad_out)  # (n, obs_dim)
    net.zero_grad()  # don't leak probe gradients into training
    return np.abs(grad_in).mean(axis=0)
