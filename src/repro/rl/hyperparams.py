"""Table 1: the hyperparameters and their evaluation values.

Defaults reproduce the table exactly.  The one paper value that is
time-denominated — the 2-hour initial exploration period — is expressed
in ticks (7200 ticks at the paper's 1 s action tick), so compressed
simulation sessions can scale it without changing semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.util.validation import (
    check_in_range,
    check_positive,
)


@dataclass
class Hyperparameters:
    """All tuning-system hyperparameters (paper Table 1)."""

    #: One action is performed every second.
    action_tick_length: float = 1.0
    #: Initial value of ε (100 % random actions at the beginning).
    epsilon_initial: float = 1.0
    #: Final value of ε (5 % random actions after training).
    epsilon_final: float = 0.05
    #: ε bump when a new workload starts (§3.6).
    epsilon_workload_bump: float = 0.20
    #: The discount rate γ as used in Equation 1.
    discount_rate: float = 0.99
    #: Hidden layer width; None = same as the input array (§3.4).  The
    #: paper's Table 1 lists the concrete 600 used on their testbed.
    hidden_layer_size: int | None = None
    #: Duration over which ε is linearly annealed, in action ticks
    #: (paper: 2 h = 7200 one-second ticks).
    exploration_ticks: int = 7200
    #: Observations per stochastic gradient descent update.
    minibatch_size: int = 32
    #: Fraction of missing data tolerated per observation.
    missing_entry_tolerance: float = 0.20
    #: Hidden layers beside the input and output layers.
    n_hidden_layers: int = 2
    #: The learning rate of Adam.
    adam_learning_rate: float = 1e-4
    #: One sample is taken every second.
    sampling_tick_length: float = 1.0
    #: Sampling ticks packed into one observation.
    sampling_ticks_per_observation: int = 10
    #: Target-network update rate α: θ⁻ ← θ⁻(1−α) + θα per minibatch.
    target_network_update_rate: float = 0.01

    def __post_init__(self) -> None:
        check_positive("action_tick_length", self.action_tick_length)
        check_positive("sampling_tick_length", self.sampling_tick_length)
        check_in_range("epsilon_initial", self.epsilon_initial, 0.0, 1.0)
        check_in_range("epsilon_final", self.epsilon_final, 0.0, 1.0)
        if self.epsilon_final > self.epsilon_initial:
            raise ValueError("epsilon_final must be <= epsilon_initial")
        check_in_range(
            "epsilon_workload_bump", self.epsilon_workload_bump, 0.0, 1.0
        )
        check_in_range("discount_rate", self.discount_rate, 0.0, 1.0)
        check_positive("exploration_ticks", self.exploration_ticks)
        check_positive("minibatch_size", self.minibatch_size)
        check_in_range(
            "missing_entry_tolerance", self.missing_entry_tolerance, 0.0, 1.0
        )
        check_positive("n_hidden_layers", self.n_hidden_layers)
        check_positive("adam_learning_rate", self.adam_learning_rate)
        check_positive(
            "sampling_ticks_per_observation",
            self.sampling_ticks_per_observation,
        )
        check_in_range(
            "target_network_update_rate",
            self.target_network_update_rate,
            0.0,
            1.0,
        )

    def table(self) -> list[tuple[str, str]]:
        """(name, value) rows for reporting — the Table 1 regeneration."""
        return [(f.name, repr(getattr(self, f.name))) for f in fields(self)]

    @classmethod
    def paper_values(cls) -> "Hyperparameters":
        """The exact evaluation configuration of Table 1 (hidden size 600)."""
        return cls(hidden_layer_size=600)
