"""Target-network soft updates (§3.4).

"For each minibatch, we update the target network's θ⁻ using θ:
θ⁻ = θ⁻ × (1 − α) + θ × α" — the slowly-tracking copy that stabilises
the bootstrapped Bellman targets.
"""

from __future__ import annotations

from repro.nn.network import MLP
from repro.util.validation import check_in_range


def soft_update(target: MLP, online: MLP, alpha: float) -> None:
    """Blend ``online`` weights into ``target`` in place.

    ``alpha=1`` copies outright (hard update); Table 1 uses 0.01.
    """
    check_in_range("alpha", alpha, 0.0, 1.0)
    t_params = target.parameters()
    o_params = online.parameters()
    if len(t_params) != len(o_params):
        raise ValueError(
            f"network shapes differ: {len(t_params)} vs {len(o_params)} tensors"
        )
    for tp, op in zip(t_params, o_params):
        if tp.value.shape != op.value.shape:
            raise ValueError(
                f"{tp.name}: shape {tp.value.shape} != {op.value.shape}"
            )
        tp.value *= 1.0 - alpha
        tp.value += alpha * op.value
