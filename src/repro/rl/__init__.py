"""Deep Q-learning core (§2, §3.4, §3.6).

- :mod:`hyperparams` — Table 1, verbatim, as a dataclass of defaults;
- :mod:`epsilon` — the linearly annealed ε-greedy schedule with the
  workload-change bump to 0.2;
- :mod:`qnetwork` — the Q-network wrapper (observation → a vector of
  Q-values, one per action — the paper's "second type" head);
- :mod:`target` — soft target-network updates
  (θ⁻ ← θ⁻·(1−α) + θ·α);
- :mod:`agent` — the DQN agent tying it together: ε-greedy action
  selection and Equation 1 minibatch training, with the prediction-error
  history that Figure 5 plots.
"""

from repro.rl.agent import DQNAgent
from repro.rl.epsilon import EpsilonSchedule
from repro.rl.hyperparams import Hyperparameters
from repro.rl.hypersearch import GridSearch, RandomSampler, SearchResult
from repro.rl.interpret import (
    PolicyRow,
    format_policy_table,
    policy_table,
    q_sensitivity,
)
from repro.rl.qnetwork import QNetwork
from repro.rl.target import soft_update

__all__ = [
    "PolicyRow",
    "policy_table",
    "format_policy_table",
    "q_sensitivity",
    "GridSearch",
    "RandomSampler",
    "SearchResult",
    "DQNAgent",
    "EpsilonSchedule",
    "Hyperparameters",
    "QNetwork",
    "soft_update",
]
