"""Systematic hyperparameter search (§6 future work).

"We will also need to use a systematic approach to hyperparameter
optimization, such as using grid search."

:class:`GridSearch` sweeps the cross product of per-field value lists
over :class:`~repro.rl.hyperparams.Hyperparameters`; evaluation is a
user callback (typically: run a compressed CAPES session, return the
tuned throughput).  :class:`RandomSampler` draws configurations
uniformly from the same grid when the cross product is too large —
random search is the other method §2 names for hyperparameter
optimization.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterator, List, Sequence, Tuple

from repro.rl.hyperparams import Hyperparameters
from repro.util.rng import ensure_rng
from repro.util.validation import check_positive

#: Evaluates one configuration; higher return values are better.
EvalFn = Callable[[Hyperparameters], float]


@dataclass
class SearchResult:
    """Best configuration found plus the full evaluation trace."""

    best: Hyperparameters
    best_score: float
    trace: List[Tuple[Dict[str, object], float]] = field(default_factory=list)

    @property
    def n_evaluated(self) -> int:
        return len(self.trace)


def _validate_grid(base: Hyperparameters, grid: Dict[str, Sequence]) -> None:
    if not grid:
        raise ValueError("grid must name at least one hyperparameter")
    for name, values in grid.items():
        if not hasattr(base, name):
            raise KeyError(f"unknown hyperparameter {name!r}")
        if len(values) == 0:
            raise ValueError(f"grid for {name!r} is empty")


class GridSearch:
    """Exhaustive sweep over a per-field value grid."""

    def __init__(self, base: Hyperparameters, grid: Dict[str, Sequence]):
        _validate_grid(base, grid)
        self.base = base
        self.grid = {k: list(v) for k, v in grid.items()}

    def configurations(self) -> Iterator[Hyperparameters]:
        """All points of the grid, in deterministic field order."""
        names = sorted(self.grid)
        for combo in itertools.product(*(self.grid[n] for n in names)):
            yield replace(self.base, **dict(zip(names, combo)))

    @property
    def size(self) -> int:
        n = 1
        for values in self.grid.values():
            n *= len(values)
        return n

    def run(self, evaluate: EvalFn) -> SearchResult:
        """Evaluate every grid point; return the argmax."""
        best = None
        best_score = -float("inf")
        trace: List[Tuple[Dict[str, object], float]] = []
        names = sorted(self.grid)
        for hp in self.configurations():
            score = float(evaluate(hp))
            point = {n: getattr(hp, n) for n in names}
            trace.append((point, score))
            if score > best_score:
                best, best_score = hp, score
        assert best is not None
        return SearchResult(best=best, best_score=best_score, trace=trace)


class RandomSampler:
    """Uniform random draws from the same grid specification."""

    def __init__(
        self,
        base: Hyperparameters,
        grid: Dict[str, Sequence],
        seed=None,
    ):
        _validate_grid(base, grid)
        self.base = base
        self.grid = {k: list(v) for k, v in grid.items()}
        self.rng = ensure_rng(seed)

    def sample(self) -> Hyperparameters:
        values = {
            name: vals[int(self.rng.integers(len(vals)))]
            for name, vals in self.grid.items()
        }
        return replace(self.base, **values)

    def run(self, evaluate: EvalFn, budget: int) -> SearchResult:
        check_positive("budget", budget)
        best = None
        best_score = -float("inf")
        trace: List[Tuple[Dict[str, object], float]] = []
        names = sorted(self.grid)
        for _ in range(budget):
            hp = self.sample()
            score = float(evaluate(hp))
            trace.append(({n: getattr(hp, n) for n in names}, score))
            if score > best_score:
                best, best_score = hp, score
        assert best is not None
        return SearchResult(best=best, best_score=best_score, trace=trace)
