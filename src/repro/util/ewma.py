"""Exponentially weighted moving averages.

CAPES's secondary performance indicators (§4.1 of the paper) are EWMAs of
inter-arrival gaps: *Ack EWMA* over gaps between server replies and *Send
EWMA* over gaps between the original send times of the corresponding
requests.  Two flavours are provided:

- :class:`EWMA` — classic fixed-weight update ``m ← (1-a)·m + a·x``.
- :class:`IrregularEWMA` — time-aware decay for irregularly spaced samples,
  where the effective weight depends on the elapsed interval.  This is the
  correct tool when samples arrive per-RPC rather than per-tick.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.util.validation import check_in_range, check_positive


class EWMA:
    """Fixed-weight exponentially weighted moving average.

    Parameters
    ----------
    alpha:
        Weight of each new sample, in ``(0, 1]``.  ``alpha=1`` degenerates
        to "last value".
    initial:
        Optional initial mean.  When omitted, the first observation seeds
        the mean exactly (no bias toward zero).  A seed is a prior, not an
        observation: ``count`` stays 0 until :meth:`update` folds a real
        sample, so count-gated warm-up logic never mistakes a
        seeded-but-empty average for measured data.
    """

    __slots__ = ("alpha", "_mean", "_count")

    def __init__(self, alpha: float, initial: Optional[float] = None):
        check_in_range("alpha", alpha, 0.0, 1.0, low_inclusive=False)
        self.alpha = float(alpha)
        self._mean: Optional[float] = None if initial is None else float(initial)
        self._count = 0

    def update(self, x: float) -> float:
        """Fold ``x`` into the average and return the new mean."""
        if self._mean is None:
            self._mean = float(x)
        else:
            self._mean += self.alpha * (float(x) - self._mean)
        self._count += 1
        return self._mean

    @property
    def value(self) -> float:
        """Current mean; 0.0 before any observation (a neutral PI value)."""
        return 0.0 if self._mean is None else self._mean

    @property
    def count(self) -> int:
        """Number of samples folded via :meth:`update` (seeds excluded)."""
        return self._count

    def reset(self) -> None:
        self._mean = None
        self._count = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EWMA(alpha={self.alpha}, value={self.value:.6g}, n={self._count})"


class IrregularEWMA:
    """EWMA with decay proportional to elapsed time between samples.

    The mean decays toward each new sample with weight
    ``w = 1 - exp(-dt / tau)`` where ``tau`` is the time constant.  For
    evenly spaced samples of period ``p`` this matches a fixed-weight EWMA
    with ``alpha = 1 - exp(-p/tau)``.
    """

    __slots__ = ("tau", "_mean", "_last_t", "_count")

    def __init__(self, tau: float):
        check_positive("tau", tau)
        self.tau = float(tau)
        self._mean: Optional[float] = None
        self._last_t: Optional[float] = None
        self._count = 0

    def update(self, t: float, x: float) -> float:
        """Fold sample ``x`` observed at time ``t`` into the average."""
        t = float(t)
        if self._mean is None or self._last_t is None:
            self._mean = float(x)
        else:
            dt = t - self._last_t
            if dt < 0:
                raise ValueError(
                    f"samples must be time-ordered: got t={t} after {self._last_t}"
                )
            w = 1.0 - math.exp(-dt / self.tau)
            self._mean += w * (float(x) - self._mean)
        self._last_t = t
        self._count += 1
        return self._mean

    @property
    def value(self) -> float:
        return 0.0 if self._mean is None else self._mean

    @property
    def count(self) -> int:
        return self._count

    def reset(self) -> None:
        self._mean = None
        self._last_t = None
        self._count = 0
