"""Fixed-capacity numeric ring buffer backed by a NumPy array.

Used wherever CAPES keeps "the last N of something": observation stacks
(10 sampling ticks per observation), throughput windows for reward
computation, and the in-memory replay cache.  Appends are O(1) and the
window view is materialised without Python-level loops, per the
vectorisation guidance in the HPC coding guides.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.util.validation import check_positive


class RingBuffer:
    """Circular buffer over rows of fixed ``shape``.

    Parameters
    ----------
    capacity:
        Maximum number of rows retained.
    shape:
        Shape of each row.  ``()`` stores scalars; ``(k,)`` stores
        k-vectors (e.g. one PI frame per row).
    dtype:
        Storage dtype, ``float64`` by default.
    """

    def __init__(
        self,
        capacity: int,
        shape: Union[int, Sequence[int], tuple] = (),
        dtype: np.dtype = np.float64,
    ):
        check_positive("capacity", capacity)
        if isinstance(shape, int):
            shape = (shape,)
        self.capacity = int(capacity)
        self.row_shape = tuple(int(s) for s in shape)
        self._data = np.zeros((self.capacity, *self.row_shape), dtype=dtype)
        self._head = 0  # next write position
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size == self.capacity

    def append(self, row: Union[float, np.ndarray]) -> None:
        """Append one row, evicting the oldest when full."""
        self._data[self._head] = row
        self._head = (self._head + 1) % self.capacity
        if self._size < self.capacity:
            self._size += 1

    def extend(self, rows: np.ndarray) -> None:
        """Append many rows (first axis iterates rows)."""
        for row in np.asarray(rows):
            self.append(row)

    def copy_into(self, out: np.ndarray) -> int:
        """Write retained rows, oldest first, into ``out[:len(self)]``.

        Allocation-free counterpart of :meth:`view` for hot loops that
        reuse one destination buffer; returns the number of rows
        written.  ``out`` must hold at least ``len(self)`` rows.
        """
        n = self._size
        if n < self.capacity:
            out[:n] = self._data[:n]
        else:
            tail = self.capacity - self._head
            out[:tail] = self._data[self._head :]
            out[tail:n] = self._data[: self._head]
        return n

    def view(self) -> np.ndarray:
        """Return retained rows, oldest first.  Always a copy."""
        if self._size < self.capacity:
            return self._data[: self._size].copy()
        return np.concatenate(
            (self._data[self._head :], self._data[: self._head]), axis=0
        )

    def last(self, n: Optional[int] = None) -> np.ndarray:
        """Return the most recent ``n`` rows (default: all), oldest first."""
        out = self.view()
        if n is None:
            return out
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        return out[max(0, len(out) - n) :]

    def newest(self) -> np.ndarray:
        """Most recently appended row."""
        if self._size == 0:
            raise IndexError("newest() on empty RingBuffer")
        return self._data[(self._head - 1) % self.capacity].copy()

    def clear(self) -> None:
        self._head = 0
        self._size = 0

    def mean(self) -> np.ndarray:
        """Mean over retained rows (vectorised; no copy of the window)."""
        if self._size == 0:
            raise ValueError("mean() on empty RingBuffer")
        if self._size < self.capacity:
            return self._data[: self._size].mean(axis=0)
        return self._data.mean(axis=0)
