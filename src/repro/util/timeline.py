"""Tick bookkeeping shared by monitoring, control and training loops.

CAPES is tick-driven: one *sampling tick* per second feeds observations,
and one *action tick* per second emits an action (Table 1 sets both to
1 s).  :class:`TickClock` converts between simulated seconds and integer
tick indices and answers "is this a tick boundary" queries so that the
three loops (monitor, control, train) stay aligned without duplicating
modular arithmetic.
"""

from __future__ import annotations

from repro.util.validation import check_positive


class TickClock:
    """Maps continuous simulation time onto integer tick indices.

    Parameters
    ----------
    tick_length:
        Tick period in simulated seconds (paper: 1.0 for both sampling
        and action ticks).
    offset:
        Time of tick 0 (defaults to 0.0).
    """

    __slots__ = ("tick_length", "offset")

    def __init__(self, tick_length: float = 1.0, offset: float = 0.0):
        check_positive("tick_length", tick_length)
        self.tick_length = float(tick_length)
        self.offset = float(offset)

    def tick_of(self, t: float) -> int:
        """Index of the most recent tick boundary at or before time ``t``."""
        return int((t - self.offset) // self.tick_length)

    def time_of(self, tick: int) -> float:
        """Simulated time of tick boundary ``tick``."""
        return self.offset + tick * self.tick_length

    def next_tick_time(self, t: float) -> float:
        """Time of the first tick boundary strictly after ``t``."""
        return self.time_of(self.tick_of(t) + 1)

    def ticks_between(self, t0: float, t1: float) -> int:
        """Number of tick boundaries in the half-open interval ``(t0, t1]``."""
        if t1 < t0:
            raise ValueError(f"t1 ({t1}) must be >= t0 ({t0})")
        return self.tick_of(t1) - self.tick_of(t0)
