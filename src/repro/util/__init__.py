"""Shared utilities for the CAPES reproduction.

Small, dependency-free building blocks used by every other subpackage:
seeded RNG discipline, exponentially weighted moving averages, byte/time
unit helpers, fixed-capacity ring buffers, tick bookkeeping, and argument
validation helpers.
"""

from repro.util.ewma import EWMA, IrregularEWMA
from repro.util.ringbuffer import RingBuffer
from repro.util.rng import RngMixin, derive_rng, ensure_rng
from repro.util.timeline import TickClock
from repro.util.units import (
    GiB,
    KiB,
    MiB,
    format_bytes,
    format_rate,
    mb_per_s,
)
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive,
)

__all__ = [
    "EWMA",
    "IrregularEWMA",
    "RingBuffer",
    "RngMixin",
    "derive_rng",
    "ensure_rng",
    "TickClock",
    "KiB",
    "MiB",
    "GiB",
    "format_bytes",
    "format_rate",
    "mb_per_s",
    "check_finite",
    "check_in_range",
    "check_nonnegative",
    "check_positive",
]
