"""Random-number discipline.

Every stochastic component in the reproduction accepts either a seed or a
``numpy.random.Generator``.  Components that own sub-components derive
independent child generators with :func:`derive_rng` so that two runs with
the same top-level seed are bit-identical regardless of the order in which
sub-components draw numbers.  This mirrors the determinism requirements of
the paper's Pilot-style statistics: confidence intervals are only
comparable across runs when the runs themselves are reproducible.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``.

    ``None`` yields a nondeterministic generator; an ``int`` or
    ``SeedSequence`` yields a deterministic one; an existing generator is
    returned unchanged (not copied — callers share state intentionally).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(parent: np.random.Generator, *key: object) -> np.random.Generator:
    """Derive an independent child generator from ``parent``.

    ``key`` items (typically strings/ints naming the child component) are
    hashed into the spawn so that children are stable under re-ordering of
    sibling construction.  Uses the generator's bit stream once, which is
    acceptable: the parent is only used for spawning at setup time.
    """
    # Fold the key into 4 deterministic 64-bit words, then mix with fresh
    # entropy drawn from the parent so distinct parents produce distinct
    # children even for equal keys.  The per-item hash must be stable
    # across interpreter invocations — Python's built-in str hash is
    # salted per process, which would make every "seeded" run
    # irreproducible from the command line — so use blake2b instead.
    words = np.zeros(4, dtype=np.uint64)
    for i, item in enumerate(key):
        digest = hashlib.blake2b(str(item).encode(), digest_size=8).digest()
        words[i % 4] ^= np.uint64(int.from_bytes(digest, "little"))
    salt = parent.integers(0, 2**63 - 1, size=2, dtype=np.int64)
    seq = np.random.SeedSequence(
        entropy=[int(w) for w in words] + [int(s) for s in salt]
    )
    return np.random.default_rng(seq)


class RngMixin:
    """Mixin that standardizes RNG ownership for stochastic components."""

    def init_rng(self, seed: SeedLike = None) -> None:
        self._rng: np.random.Generator = ensure_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        rng: Optional[np.random.Generator] = getattr(self, "_rng", None)
        if rng is None:
            # Lazy default keeps simple components usable without setup.
            self._rng = np.random.default_rng()
            rng = self._rng
        return rng
