"""Byte and rate unit helpers.

The cluster model works in bytes and seconds internally; these helpers
exist so that configuration and reporting read like the paper ("1 MB
stripe size", "113 MB/s sequential read") without magic numbers scattered
through the code.  Following storage-industry convention — and the paper's
own usage — "MB" here is the binary mebibyte.
"""

from __future__ import annotations

KiB: int = 1024
MiB: int = 1024 * 1024
GiB: int = 1024 * 1024 * 1024


def mb_per_s(x: float) -> float:
    """Convert MB/s to bytes/s."""
    return float(x) * MiB


def format_bytes(n: float) -> str:
    """Human-readable byte count, e.g. ``format_bytes(1536) == '1.5 KB'``."""
    n = float(n)
    for unit, div in (("GB", GiB), ("MB", MiB), ("KB", KiB)):
        if abs(n) >= div:
            return f"{n / div:.1f} {unit}"
    return f"{n:.0f} B"


def format_rate(bytes_per_s: float) -> str:
    """Human-readable throughput, e.g. ``'106.0 MB/s'``."""
    return f"{format_bytes(bytes_per_s)}/s"
