"""Small argument-validation helpers with uniform error messages.

Centralising these keeps constructor bodies short and error text
consistent across the library, which in turn keeps tests for failure
modes simple.
"""

from __future__ import annotations

import math
from typing import Union

Number = Union[int, float]


def check_positive(name: str, value: Number) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_nonnegative(name: str, value: Number) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_finite(name: str, value: Number) -> None:
    """Raise ``ValueError`` unless ``value`` is a finite number."""
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")


def check_in_range(
    name: str,
    value: Number,
    low: Number,
    high: Number,
    *,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> None:
    """Raise ``ValueError`` unless ``value`` lies in the given interval."""
    lo_ok = value >= low if low_inclusive else value > low
    hi_ok = value <= high if high_inclusive else value < high
    if not (lo_ok and hi_ok):
        lb = "[" if low_inclusive else "("
        rb = "]" if high_inclusive else ")"
        raise ValueError(f"{name} must be in {lb}{low}, {high}{rb}, got {value!r}")
