"""The decoupled async trainer subsystem (the paper's DRL engine, §3).

CAPES runs its DRL engine *continuously, in parallel* with the
monitoring agents streaming observations into the central replay DB.
This package gives the reproduction that decoupling:

- :class:`~repro.train.loop.TrainerLoop` — one DQN consuming one
  replay stream on its own cadence, behind three backends: ``inline``
  (the historical one-SGD-burst-per-tick session path, byte-identical),
  ``serial`` (deterministic round-robin interleaving), and ``process``
  (training in a forked worker with versioned weight broadcasts,
  staleness bounded by ``sync_every``);
- :class:`~repro.train.loop.TrainerConfig` /
  :class:`~repro.train.loop.TrainerStats` — the knobs
  (``trainer_backend``, ``train_ratio``, ``sync_every`` on
  :class:`~repro.exp.spec.ExperimentSpec` and the CLI) and the
  accounting;
- :func:`~repro.train.loop.train_collect` — §3.3 "solely monitoring"
  over a :class:`~repro.env.vector.VectorEnv` *plus* continuous
  training against the shared fan-in replay DB (``repro collect
  --train``);
- :class:`~repro.train.process.ProcessTrainer` — the master-side
  handle on the forked trainer worker.

:class:`~repro.core.session.CapesSession` delegates its training
cadence here; ``inline`` remains the default and is golden-trace
identical to the pre-subsystem sessions.
"""

from repro.train.loop import (
    BACKENDS,
    PackedFeed,
    TrainerConfig,
    TrainerLoop,
    TrainerStats,
    train_collect,
)
from repro.train.process import ProcessTrainer

__all__ = [
    "BACKENDS",
    "PackedFeed",
    "ProcessTrainer",
    "TrainerConfig",
    "TrainerLoop",
    "TrainerStats",
    "train_collect",
]
