"""The decoupled trainer loop: collection and SGD on separate cadences.

The inline session (:meth:`~repro.core.session.CapesSession.train`)
historically ran ``train_steps_per_tick`` SGD steps after every single
environment tick — collection throughput and gradient throughput
serialized on one loop.  :class:`TrainerLoop` breaks that coupling
behind one notification-style interface with three backends:

``inline``
    SGD runs synchronously inside every tick notification, exactly
    where the historical session ran it.  Byte-identical to the
    pre-trainer code path (the golden default).
``serial``
    Round-robin interleaving: tick notifications accumulate and every
    ``interleave_ticks`` of them buys one training burst.  Still one
    process and fully deterministic; with ``interleave_ticks=1`` it is
    byte-identical to ``inline`` at equal step budgets.
``process``
    The paper's continuous DRL engine (§3): training runs in a forked
    worker (:mod:`repro.train.process`) that mirrors the replay stream
    into its own cache, while the master keeps collecting.  Weights
    come back as versioned broadcasts every ``sync_every`` SGD steps,
    so the acting policy is never more than ``sync_every`` steps stale.

Step accounting is identical across backends: every collected action
tick grants ``train_ratio`` SGD steps (fractional ratios accumulate),
so a run's total gradient-step budget depends only on its tick count —
backends change *when* the steps run, never *how many*.

:func:`train_collect` drives the vectorized form — §3.3 monitoring
plus continuous training over a :class:`~repro.env.vector.VectorEnv` —
by round-robining ``VectorEnv.collect`` chunks with trainer
notifications (``serial``) or overlapping them outright (``process``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.replaydb.records import PackedRecords
from repro.replaydb.sampler import MinibatchSampler
from repro.util.validation import check_positive

BACKENDS = ("inline", "serial", "process")


@dataclass(frozen=True)
class TrainerConfig:
    """How the trainer runs relative to collection.

    ``train_ratio`` is SGD steps granted per collected action tick
    (fractions accumulate: ``0.25`` trains once every 4 ticks);
    ``interleave_ticks`` is the serial backend's burst cadence;
    ``sync_every`` is the process backend's weight-broadcast period in
    SGD steps — the staleness bound on the acting policy.
    """

    backend: str = "inline"
    train_ratio: float = 1.0
    interleave_ticks: int = 1
    sync_every: int = 64

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"trainer backend must be one of {BACKENDS}, "
                f"got {self.backend!r}"
            )
        if self.train_ratio < 0:
            raise ValueError(
                f"train_ratio must be >= 0, got {self.train_ratio}"
            )
        check_positive("interleave_ticks", self.interleave_ticks)
        check_positive("sync_every", self.sync_every)


@dataclass
class TrainerStats:
    """What one trainer loop did, summarised for results/benchmarks."""

    backend: str
    #: Every prediction error produced, in training order (Figure 5).
    losses: List[float] = field(default_factory=list)
    #: SGD steps attempted (granted budget actually consumed).
    steps_attempted: int = 0
    #: Weight broadcasts applied to the acting agent (process backend).
    broadcasts_applied: int = 0
    #: Broadcasts discarded as stale after a checkpoint load.
    stale_discarded: int = 0
    #: Record batches that passed the torn-read validation (process).
    batches_validated: int = 0
    #: Applied weight version within the current epoch (process).
    weights_version: int = 0
    #: Weight lineage epoch (bumped by checkpoint loads).
    epoch: int = 0


class PackedFeed:
    """Incremental packed-record feed over one environment.

    Re-fetches the last fed tick on every call (its action is recorded
    one step later than its frame), mirroring the fan-in bookkeeping of
    :class:`~repro.env.vector.VectorEnv`.  Uses the backend's native
    packed feed when it has one, else packs the object-form
    ``records_since`` — the same duck-typed fallback the fan-in fleet
    applies; an environment with neither feed is rejected up front.
    """

    def __init__(self, env):
        if (
            getattr(env, "records_since_packed", None) is None
            and getattr(env, "records_since", None) is None
        ):
            raise ValueError(
                f"{type(env).__name__} exposes no replay-record feed "
                f"(records_since / records_since_packed); the process "
                f"trainer backend cannot mirror its experience — use "
                f"the inline or serial backend instead"
            )
        self.env = env
        self._top = -1

    def __call__(self) -> PackedRecords:
        """New records since the previous call, packed."""
        since = self._top - 1 if self._top >= 0 else -1
        fn = getattr(self.env, "records_since_packed", None)
        if fn is not None:
            packed = fn(since)
        else:
            packed = PackedRecords.from_records(
                self.env.records_since(since), self.env.frame_dim
            )
        if len(packed):
            self._top = max(self._top, int(packed.ticks[-1]))
        return packed


class TrainerLoop:
    """One DRL engine consuming one replay stream, backend-agnostic.

    Drivers push collection progress through :meth:`notify_ticks` (and,
    for the process backend without a pull feed, :meth:`ingest`); the
    loop decides when gradients actually happen.  ``sampler`` may be a
    live :class:`~repro.replaydb.sampler.MinibatchSampler` or a
    zero-argument callable returning one (sessions rebuild samplers on
    environment restarts).

    Process-backend construction needs the replay geometry —
    ``frame_width``, ``stride`` (``None`` for an unstrided feed),
    ``n_blocks``, ``cache_capacity`` — plus ``sampler_seed``, and
    optionally ``feed`` (a zero-arg callable returning new
    :class:`~repro.replaydb.records.PackedRecords`, e.g.
    :class:`PackedFeed`) when no external tap pushes records in.
    """

    def __init__(
        self,
        agent,
        config: TrainerConfig,
        sampler=None,
        feed: Optional[Callable[[], PackedRecords]] = None,
        frame_width: Optional[int] = None,
        stride: Optional[int] = None,
        n_blocks: int = 1,
        sampler_seed: Optional[int] = None,
        cache_capacity: int = 250_000,
    ):
        self.agent = agent
        self.config = config
        self.stats = TrainerStats(backend=config.backend)
        self._feed = feed
        self._pending_ticks = 0.0
        self._debt = 0.0
        self._proc = None
        if config.backend == "process":
            if frame_width is None:
                raise ValueError(
                    "process backend needs frame_width (replay geometry)"
                )
            self._init = dict(
                obs_dim=agent.obs_dim,
                n_actions=agent.n_actions,
                hp=agent.hp,
                loss=agent.online.loss_name,
                double_dqn=agent.double_dqn,
                online_blob=None,  # filled by begin()
                target_blob=None,
                train_steps=0,
                frame_width=int(frame_width),
                stride=None if stride is None else int(stride),
                n_blocks=int(n_blocks),
                sampler_seed=sampler_seed,
                cache_capacity=int(cache_capacity),
                train_ratio=config.train_ratio,
                sync_every=config.sync_every,
                epoch=0,
            )
        else:
            if sampler is None:
                raise ValueError(
                    f"{config.backend!r} backend needs a sampler"
                )
            self._sampler_fn = (
                sampler
                if callable(sampler) and not isinstance(sampler, MinibatchSampler)
                else (lambda: sampler)
            )

    # -- lifecycle -------------------------------------------------------
    def begin(self) -> None:
        """Start the backend (forks the worker for ``process``)."""
        if self.config.backend == "process" and self._proc is None:
            from repro.train.process import ProcessTrainer

            self._init["online_blob"] = self.agent.snapshot_weights(
                include_optimizer=True
            )
            self._init["target_blob"] = self.agent.snapshot_target()
            self._init["train_steps"] = int(self.agent.train_steps)
            self._init["epoch"] = self.stats.epoch
            self._proc = ProcessTrainer(self.agent, self._init)

    @property
    def started(self) -> bool:
        """Whether the backend is live (always true for in-process)."""
        return self.config.backend != "process" or self._proc is not None

    # -- notifications ---------------------------------------------------
    def ingest(self, packed: PackedRecords) -> None:
        """Mirror a fan-in batch to the trainer (no budget granted).

        The :meth:`~repro.env.vector.VectorEnv.add_ingest_listener`
        tap; in-process backends sample the shared cache directly, so
        only the process backend ships anything.
        """
        if self.config.backend != "process":
            return
        self.begin()
        if len(packed):
            self._proc.send_records(packed, 0.0)

    def notify_ticks(self, k: float) -> List[float]:
        """Grant ``k`` collected ticks of training budget.

        Returns the prediction errors of whatever SGD steps
        materialized *now*: the whole burst for in-process backends,
        whatever broadcasts have arrived for ``process``.
        """
        if k <= 0:
            raise ValueError(f"k must be > 0, got {k}")
        self.begin()
        if self._proc is not None:
            packed = self._feed() if self._feed is not None else None
            new = self._proc.poll()  # drain first: never grow the pipe
            self._proc.send_records(packed, k)
            self._sync_proc_stats()
            self.stats.losses.extend(new)
            return new
        self._pending_ticks += k
        if (
            self.config.backend == "inline"
            or self._pending_ticks >= self.config.interleave_ticks
        ):
            return self._burst()
        return []

    def _burst(self) -> List[float]:
        """Convert pending ticks to debt and run the due SGD steps."""
        self._debt += self._pending_ticks * self.config.train_ratio
        self._pending_ticks = 0.0
        n = int(self._debt)
        self._debt -= n
        sampler = self._sampler_fn()
        new: List[float] = []
        for _ in range(n):
            loss = self.agent.train_from_sampler(sampler)
            if loss is not None:
                new.append(float(loss))
        self.stats.steps_attempted += n
        self.stats.losses.extend(new)
        return new

    def _sync_proc_stats(self) -> None:
        self.stats.broadcasts_applied = self._proc.broadcasts_applied
        self.stats.stale_discarded = self._proc.stale_discarded
        self.stats.batches_validated = self._proc.batches_validated
        self.stats.weights_version = self._proc.weights_version
        # Same accounting as the in-process backends: granted steps
        # consumed, whether or not the sampler could fill them.
        self.stats.steps_attempted = max(
            self.stats.steps_attempted, self._proc.worker_attempted
        )

    # -- barriers --------------------------------------------------------
    def drain(self) -> List[float]:
        """Spend every granted step now; block until done.

        For the process backend this adopts the worker's full state
        (online weights, optimiser, target) into the acting agent, so a
        segment boundary leaves the master exactly as far trained as an
        in-process backend would be.
        """
        if self._proc is not None:
            new = self._proc.drain()
            self._sync_proc_stats()
            self.stats.losses.extend(new)
            return new
        if self.config.backend == "process":
            return []  # never begun: nothing granted, nothing to spend
        return self._burst()

    def invalidate_weights(self) -> None:
        """Externally loaded weights replaced the agent's: start a new
        weight epoch so in-flight trainer broadcasts cannot overwrite
        them (the checkpoint-load fence)."""
        self.stats.epoch += 1
        self.stats.weights_version = 0
        if self._proc is not None:
            self._proc.invalidate(
                self.agent.snapshot_weights(include_optimizer=True),
                self.agent.snapshot_target(),
            )

    def stop(self) -> TrainerStats:
        """Flush remaining budget, shut the backend down, return stats."""
        if self._proc is not None:
            new = self._proc.stop()
            self._sync_proc_stats()
            self.stats.losses.extend(new)
            self._proc = None
        elif self.config.backend != "process":
            self._burst()
        return self.stats

    def __enter__(self) -> "TrainerLoop":
        self.begin()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def train_collect(
    venv,
    agent,
    config: TrainerConfig,
    n_ticks: int,
    chunk: Optional[int] = None,
    sampler_seed: Optional[int] = None,
) -> tuple:
    """§3.3 monitoring + continuous training over a vectorized fleet.

    Resets ``venv``, collects ``n_ticks`` monitoring-only ticks in
    chunks, and trains ``agent`` against the shared fan-in replay DB
    with the configured backend: ``serial`` round-robins collection
    chunks with training bursts; ``process`` overlaps them (the fleet
    simulates while the trainer worker runs SGD).  Collection rewards
    are byte-identical across backends — NULL-action monitoring never
    consults the policy — so the backend choice is pure wall-clock.

    Returns ``(rewards, stats)``: per-env per-tick rewards of shape
    ``(n_envs, n_ticks)`` and the loop's :class:`TrainerStats`.
    """
    check_positive("n_ticks", n_ticks)
    if venv.shared_db is None:
        raise ValueError(
            "train_collect needs a VectorEnv with a shared fan-in DB "
            "(shared_db_path must not be None)"
        )
    if chunk is None:
        chunk = n_ticks
    check_positive("chunk", chunk)
    if config.backend == "process":
        loop = TrainerLoop(
            agent,
            config,
            frame_width=venv.frame_dim,
            stride=venv.tick_stride,
            n_blocks=venv.n_envs,
            sampler_seed=sampler_seed,
            cache_capacity=venv.n_envs * venv.tick_stride,
        )
    else:
        # Serial cadence: one burst per collection chunk.
        serial_cfg = TrainerConfig(
            backend=config.backend,
            train_ratio=config.train_ratio,
            interleave_ticks=(
                chunk if config.backend == "serial" else config.interleave_ticks
            ),
            sync_every=config.sync_every,
        )
        loop = TrainerLoop(
            agent, serial_cfg, sampler=venv.make_sampler(seed=sampler_seed)
        )
        config = serial_cfg
    rewards = np.empty((venv.n_envs, n_ticks))
    listener = loop.ingest
    venv.add_ingest_listener(listener)
    try:
        with loop:
            # Reset *after* the tap attaches so warm-up records reach
            # the trainer's mirror cache too.
            venv.reset()
            done = 0
            while done < n_ticks:
                k = min(chunk, n_ticks - done)
                rewards[:, done : done + k] = venv.collect(k)
                loop.notify_ticks(k)
                done += k
            loop.drain()
    finally:
        venv.remove_ingest_listener(listener)
    return rewards, loop.stats
