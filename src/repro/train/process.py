"""The process trainer backend: a DRL engine in its own fork worker.

The paper runs the DRL engine *continuously, in parallel* with the
monitoring agents that stream observations into the central replay DB
(§3).  This module reproduces that split inside one reproduction run:
the master process keeps collecting experience (stepping environments,
fanning records in) while a forked worker owns a clone of the DQN
agent, mirrors the replay stream into its own
:class:`~repro.replaydb.cache.ReplayCache`, and runs SGD at its own
cadence.

Protocol (all messages are ``(kind, payload)`` tuples over one pipe):

master → worker
    ``("records", (PackedRecords | None, tick_budget))`` — mirror a
    fan-in batch and/or grant ``tick_budget × train_ratio`` SGD steps;
    ``("reload", (epoch, online_blob, target_blob))`` — replace the
    worker's weights (checkpoint load landed on the master: any
    broadcast from an earlier epoch is now stale);
    ``("drain", None)`` — train until the step budget is spent, then
    report; ``("stop", None)`` — drain, report, exit.

worker → master
    ``("weights", (epoch, version, online_blob, losses, steps,
    batches))`` — a versioned weight broadcast, sent every
    ``sync_every`` completed steps; ``("drained", ...)`` /
    ``("done", ...)`` — budget exhausted, full state (online weights +
    optimiser, target weights) attached; ``("err", exc)`` — the worker
    raised.

Weight snapshots travel as :mod:`repro.nn.checkpoint` npz bytes.  The
master applies a broadcast only when its ``(epoch, version)`` is newer
than what it already holds, which is what bounds policy staleness to
``sync_every`` SGD steps and lets :meth:`~repro.core.session.CapesSession.load`
invalidate in-flight broadcasts wholesale by bumping the epoch.

Deadlock discipline: the master never receives on the pipe from its
main thread — a daemon reader thread drains every worker message into
a queue, so the worker's (potentially megabyte-sized) weight sends can
never block against a master blocked in ``send``.  The worker is
single-threaded and drains its inbox before every training slice, so
master record sends block at most one bounded slice.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
from typing import Any, List, Optional, Tuple

from repro.replaydb.records import PackedRecords


def _build_worker_agent(init: dict):
    """Reconstruct the training agent clone inside the worker."""
    from repro.nn.checkpoint import checkpoint_from_bytes
    from repro.rl.agent import DQNAgent

    agent = DQNAgent(
        obs_dim=init["obs_dim"],
        n_actions=init["n_actions"],
        hp=init["hp"],
        loss=init["loss"],
        double_dqn=init["double_dqn"],
        rng=0,
    )
    net, _ = checkpoint_from_bytes(
        init["online_blob"], optimizer=agent.optimizer
    )
    target_net, _ = checkpoint_from_bytes(init["target_blob"])
    agent.adopt_network(net, target_net)
    agent.train_steps = int(init["train_steps"])
    return agent


def _build_worker_sampler(init: dict, cache):
    """The worker-side Algorithm 1 sampler (strided when the feed is)."""
    from repro.replaydb.sampler import MinibatchSampler
    from repro.replaydb.spans import StridedMinibatchSampler, TickSpans

    hp = init["hp"]
    if init["stride"] is None:
        return MinibatchSampler(
            cache,
            obs_ticks=hp.sampling_ticks_per_observation,
            missing_tolerance=hp.missing_entry_tolerance,
            seed=init["sampler_seed"],
        ), None
    spans = TickSpans(init["n_blocks"], init["stride"])
    return StridedMinibatchSampler(
        cache,
        spans,
        obs_ticks=hp.sampling_ticks_per_observation,
        missing_tolerance=hp.missing_entry_tolerance,
        seed=init["sampler_seed"],
    ), spans


def _trainer_worker(conn, init: dict) -> None:
    """Worker main loop: mirror records, train, broadcast weights."""
    from repro.env.vector import _transportable
    from repro.replaydb.cache import ReplayCache

    try:
        agent = _build_worker_agent(init)
        cache = ReplayCache(
            init["frame_width"], capacity=init["cache_capacity"]
        )
        sampler, spans = _build_worker_sampler(init, cache)
        ratio = float(init["train_ratio"])
        sync_every = int(init["sync_every"])
        epoch = int(init["epoch"])
        version = 0
        budget = 0.0
        since_sync = 0
        attempted = 0
        pending: List[float] = []
        batches = 0
        draining = stopping = False

        def full_state() -> Tuple:
            return (
                epoch,
                version,
                agent.snapshot_weights(include_optimizer=True),
                agent.snapshot_target(),
                pending,
                agent.train_steps,
                attempted,
                batches,
            )

        while True:
            # Drain the inbox; block here when there is nothing to train.
            while conn.poll() or (
                budget < 1.0 and not (draining or stopping)
            ):
                try:
                    kind, payload = conn.recv()
                except EOFError:  # master went away
                    return
                if kind == "records":
                    packed, tick_budget = payload
                    if packed is not None and len(packed):
                        packed.validate()  # torn-read guard
                        cache.put_many(
                            packed.ticks,
                            packed.frames,
                            packed.rewards,
                            packed.actions,
                        )
                        if spans is not None:
                            spans.observe(packed.ticks)
                        batches += 1
                    budget += float(tick_budget) * ratio
                elif kind == "reload":
                    epoch, online_blob, target_blob = payload
                    from repro.nn.checkpoint import checkpoint_from_bytes

                    net, _ = checkpoint_from_bytes(
                        online_blob, optimizer=agent.optimizer
                    )
                    target_net, _ = checkpoint_from_bytes(target_blob)
                    agent.adopt_network(net, target_net)
                    version = 0
                    since_sync = 0
                    # Losses of the discarded pre-load steps belong to
                    # the old lineage; they must not leak into the new
                    # epoch's first broadcast.
                    pending = []
                elif kind == "drain":
                    draining = True
                elif kind == "stop":
                    stopping = True
                else:  # pragma: no cover - protocol error
                    raise ValueError(f"unknown trainer command {kind!r}")
            if budget >= 1.0:
                n = int(min(budget, sync_every - since_sync))
                for _ in range(n):
                    loss = agent.train_from_sampler(sampler)
                    if loss is not None:
                        pending.append(float(loss))
                budget -= n
                since_sync += n
                attempted += n
                if since_sync >= sync_every:
                    version += 1
                    conn.send(
                        (
                            "weights",
                            (
                                epoch,
                                version,
                                agent.snapshot_weights(),
                                pending,
                                agent.train_steps,
                                attempted,
                                batches,
                            ),
                        )
                    )
                    pending = []
                    since_sync = 0
            if budget < 1.0 and draining:
                conn.send(("drained", full_state()))
                pending = []
                draining = False
            if budget < 1.0 and stopping:
                conn.send(("done", full_state()))
                conn.close()
                return
    except Exception as exc:  # surface worker failures to the master
        try:
            conn.send(("err", _transportable(exc)))
        except (BrokenPipeError, OSError):  # pragma: no cover - teardown
            pass


class ProcessTrainer:
    """Master-side handle on the forked trainer worker.

    Ships record batches and step budget in, applies versioned weight
    broadcasts out.  All pipe receives happen on a daemon reader
    thread; the public methods below are meant for one driving thread
    (the session/collection loop).
    """

    def __init__(self, agent, init: dict):
        self.agent = agent
        self.epoch = int(init["epoch"])
        self.weights_version = 0
        self.broadcasts_applied = 0
        self.stale_discarded = 0
        self.batches_validated = 0
        self.worker_train_steps = int(init["train_steps"])
        #: Granted SGD steps the worker has consumed (including
        #: sampler-starved attempts) — the number comparable to the
        #: in-process backends' step accounting.
        self.worker_attempted = 0
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context()
        self._conn, child = context.Pipe()
        self._proc = context.Process(
            target=_trainer_worker, args=(child, init), daemon=True
        )
        self._proc.start()
        child.close()
        self._inbox: "queue.Queue[Tuple[str, Any]]" = queue.Queue()
        self._reader = threading.Thread(target=self._read_loop, daemon=True)
        self._reader.start()
        self._closed = False

    def _read_loop(self) -> None:
        """Reader thread: drain every worker message into the inbox."""
        try:
            while True:
                self._inbox.put(self._conn.recv())
        except (EOFError, OSError):
            self._inbox.put(("eof", None))

    # -- master-side message handling ------------------------------------
    def _apply(self, kind: str, payload: Any) -> List[float]:
        """Fold one worker message into the acting agent; new losses."""
        if kind == "err":
            raise payload
        if kind == "eof":
            raise RuntimeError(
                "trainer worker exited unexpectedly (see stderr)"
            )
        from repro.nn.checkpoint import checkpoint_from_bytes
        from repro.rl.qnetwork import QNetwork

        if kind == "weights":
            epoch, version, blob, losses, steps, attempted, batches = payload
            if epoch != self.epoch:
                # Stale lineage: a checkpoint load invalidated every
                # broadcast the worker produced before its reload.
                self.stale_discarded += 1
                return []
            if version > self.weights_version:
                net, _ = checkpoint_from_bytes(blob)
                self.agent.online = QNetwork(
                    net, loss=self.agent.online.loss_name
                )
                self.weights_version = version
                self.broadcasts_applied += 1
            self.batches_validated = max(self.batches_validated, batches)
            self.worker_train_steps = max(self.worker_train_steps, steps)
            self.worker_attempted = max(self.worker_attempted, attempted)
            self._record_losses(losses)
            return list(losses)
        if kind in ("drained", "done"):
            (
                epoch,
                version,
                online_blob,
                target_blob,
                losses,
                steps,
                attempted,
                batches,
            ) = payload
            if epoch == self.epoch:
                net, _ = checkpoint_from_bytes(
                    online_blob, optimizer=self.agent.optimizer
                )
                target_net, _ = checkpoint_from_bytes(target_blob)
                self.agent.adopt_network(net, target_net)
                self.agent.train_steps = int(steps)
                self.weights_version = max(self.weights_version, version)
            self.batches_validated = max(self.batches_validated, batches)
            self.worker_train_steps = max(self.worker_train_steps, steps)
            self.worker_attempted = max(self.worker_attempted, attempted)
            self._record_losses(losses)
            return list(losses)
        raise ValueError(f"unknown trainer reply {kind!r}")  # pragma: no cover

    def _record_losses(self, losses: List[float]) -> None:
        """Mirror worker losses into the acting agent's Figure 5 trace."""
        self.agent.loss_history.extend(losses)

    def _send(self, msg: Tuple[str, Any]) -> None:
        """Send to the worker; a dead pipe surfaces the worker's own
        error (already queued in the inbox) instead of a bare
        ``BrokenPipeError``."""
        try:
            self._conn.send(msg)
        except (BrokenPipeError, OSError):
            self._raise_worker_failure()

    def _raise_worker_failure(self) -> None:
        """The worker is gone: raise what it reported, or a summary."""
        while True:
            try:
                kind, payload = self._inbox.get_nowait()
            except queue.Empty:
                break
            if kind == "err":
                raise payload
        raise RuntimeError(
            "trainer worker exited unexpectedly (see stderr)"
        )

    # -- public API ------------------------------------------------------
    def send_records(
        self, packed: Optional[PackedRecords], tick_budget: float
    ) -> None:
        """Mirror a fan-in batch and/or grant training budget."""
        self._send(("records", (packed, float(tick_budget))))

    def poll(self) -> List[float]:
        """Apply every already-received worker message; new losses."""
        new: List[float] = []
        while True:
            try:
                kind, payload = self._inbox.get_nowait()
            except queue.Empty:
                return new
            new.extend(self._apply(kind, payload))

    def _wait_for(self, terminal: str) -> List[float]:
        """Block until ``terminal`` arrives, applying everything on the way."""
        new: List[float] = []
        while True:
            try:
                kind, payload = self._inbox.get(timeout=60.0)
            except queue.Empty:  # pragma: no cover - hung worker
                if not self._proc.is_alive():
                    raise RuntimeError("trainer worker died mid-drain")
                continue
            new.extend(self._apply(kind, payload))
            if kind == terminal:
                return new

    def drain(self) -> List[float]:
        """Block until the worker's step budget is spent; apply its
        state (weights + optimiser + target) to the acting agent."""
        self._send(("drain", None))
        return self._wait_for("drained")

    def invalidate(self, online_blob: bytes, target_blob: bytes) -> int:
        """Start a new weight epoch from externally loaded weights.

        Every broadcast the worker produced under the previous epoch is
        discarded on arrival; the worker continues training from the
        reloaded weights.  Returns the new epoch.
        """
        self.epoch += 1
        self.weights_version = 0
        self._send(("reload", (self.epoch, online_blob, target_blob)))
        return self.epoch

    def stop(self) -> List[float]:
        """Drain, adopt final state, and shut the worker down.

        Tolerates a worker that already crashed: cleanup proceeds and
        the crash (which surfaced, or will, via the poll/drain path) is
        not replaced by a secondary ``BrokenPipeError``.
        """
        if self._closed:
            return []
        new: List[float] = []
        try:
            try:
                self._conn.send(("stop", None))
            except (BrokenPipeError, OSError):
                return new  # worker gone; its error already surfaced
            while True:
                try:
                    kind, payload = self._inbox.get(timeout=10.0)
                except queue.Empty:
                    if not self._proc.is_alive():
                        return new  # died without a farewell message
                    continue
                if kind == "eof":
                    return new
                new.extend(self._apply(kind, payload))
                if kind == "done":
                    return new
        finally:
            self._proc.join(timeout=10)
            if self._proc.is_alive():  # pragma: no cover - hung worker
                self._proc.terminate()
            try:
                self._conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            self._closed = True

    @property
    def alive(self) -> bool:
        """Whether the worker process is still running."""
        return not self._closed and self._proc.is_alive()
