"""CAPES reproduction: DRL-based unsupervised storage performance tuning.

A from-scratch Python reimplementation of *CAPES: Unsupervised Storage
Performance Tuning Using Neural Network-Based Deep Reinforcement
Learning* (Li, Chang, Bel, Miller, Long — SC '17), including every
substrate the paper's evaluation depends on:

- a discrete-event **Lustre-like cluster simulator** standing in for the
  4-server/5-client hardware testbed (:mod:`repro.sim`,
  :mod:`repro.cluster`);
- **Filebench-style workloads** — random R/W mixes, fileserver,
  sequential write (:mod:`repro.workloads`);
- the **monitoring plane** — per-client agents, the differential
  compressed wire protocol, the Interface Daemon
  (:mod:`repro.telemetry`, :mod:`repro.core`);
- the **replay database** — SQLite + NumPy cache + Algorithm 1 sampler
  (:mod:`repro.replaydb`);
- a pure-NumPy **deep-Q-network stack** — MLP, Adam, target network,
  ε-greedy schedule (:mod:`repro.nn`, :mod:`repro.rl`);
- search-based **tuning baselines** (:mod:`repro.baselines`) and
  Pilot-style **measurement statistics** (:mod:`repro.stats`);
- the **pluggable environment layer** (:mod:`repro.env`) — a structural
  ``Environment`` protocol with a string-keyed registry (``make_env``;
  ``"sim-lustre"`` is the reference backend) and ``VectorEnv`` for
  many-clusters-one-engine vectorized experience collection;
- the **decoupled async trainer** (:mod:`repro.train`) — the paper's
  continuously running DRL engine: ``TrainerLoop`` with
  inline/serial/process backends, versioned weight broadcasts, and
  ``train_collect`` for monitoring-plus-training over a fleet;
- the **experiment orchestration layer** (:mod:`repro.exp`) — one
  ``Tuner`` protocol over CAPES and every baseline, declarative
  ``ExperimentSpec`` grids, and a parallel ``ExperimentRunner`` with
  JSONL artifacts.

Quick start::

    from repro import CAPES, CapesConfig, EnvConfig, ClusterConfig
    from repro.workloads import RandomReadWrite

    cfg = CapesConfig(
        env=EnvConfig(
            cluster=ClusterConfig(n_servers=2, n_clients=2),
            workload_factory=lambda cluster, seed: RandomReadWrite(
                cluster, read_fraction=0.1, seed=seed
            ),
        )
    )
    capes = CAPES(cfg)
    capes.train(2000)                      # online training ticks
    baseline = capes.measure_baseline(300) # CAPES off
    tuned = capes.evaluate(300)            # CAPES on, greedy policy
"""

from repro.cluster import Cluster, ClusterConfig
from repro.core import (
    CAPES,
    ActionChecker,
    ActionSpace,
    CapesConfig,
    CapesSession,
    TunableParameter,
)
from repro.core.capes import hours
from repro.env import (
    EnvConfig,
    Environment,
    StorageTuningEnv,
    VectorEnv,
    env_names,
    make_env,
    register_env,
)
from repro.exp import (
    ExperimentRunner,
    ExperimentSpec,
    RunBudget,
    WorkloadSpec,
    grid,
)
from repro.rl import DQNAgent, Hyperparameters
from repro.train import TrainerConfig, TrainerLoop, train_collect

__version__ = "1.2.0"

__all__ = [
    "CAPES",
    "CapesConfig",
    "CapesSession",
    "EnvConfig",
    "Environment",
    "StorageTuningEnv",
    "VectorEnv",
    "env_names",
    "make_env",
    "register_env",
    "Cluster",
    "ClusterConfig",
    "ActionSpace",
    "ActionChecker",
    "TunableParameter",
    "DQNAgent",
    "Hyperparameters",
    "ExperimentRunner",
    "ExperimentSpec",
    "RunBudget",
    "TrainerConfig",
    "TrainerLoop",
    "WorkloadSpec",
    "grid",
    "hours",
    "train_collect",
    "__version__",
]
