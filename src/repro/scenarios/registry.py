"""Named scenarios: the reproducible hard-mode workload catalogue.

Mirrors the tuner and environment registries: a string key resolves to
a factory that builds a :class:`~repro.scenarios.scenario.Scenario`
from plain keyword knobs, so specs, the CLI (``repro sweep --scenario
sim-lustre-bursty``) and the adaptation benchmark all name scenarios
instead of constructing event timelines by hand.

The built-ins stress the paper's three adaptation claims:

``sim-lustre-degraded``
    One server's disk permanently loses most of its bandwidth partway
    through the session (failing drive / RAID rebuild).  The service
    balance the tuner learned during warm-up stops being true.
``sim-lustre-bursty``
    Periodic fabric congestion windows plus a mid-session load spike —
    the §4.2 shared-network interference, concentrated into bursts.
``sim-lustre-churn``
    Clients leave and rejoin in rotation, shifting aggregate load and
    striping pressure (Figure 4's "system state has drifted", online).

Default tick timings suit the compressed ~600-tick sessions of
EXPERIMENTS.md; every factory takes knobs so tests compress further.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.scenarios.events import (
    ClientChurn,
    LoadSpike,
    NetworkCongestionWindow,
)
from repro.scenarios.events import DiskDegradation
from repro.scenarios.scenario import Scenario

ScenarioFactory = Callable[..., Scenario]

#: Maps a name the exact-name table does not carry to a factory, or
#: ``None`` when the name is not this resolver's to claim.
ScenarioResolver = Callable[[str], Optional[ScenarioFactory]]

_SCENARIOS: Dict[str, ScenarioFactory] = {}
_RESOLVERS: List[ScenarioResolver] = []


def register_scenario(name: str, factory: ScenarioFactory) -> None:
    """Register ``factory(**kwargs) -> Scenario`` under ``name``."""
    _SCENARIOS[name] = factory


def register_scenario_resolver(resolver: ScenarioResolver) -> None:
    """Register a fallback resolver for *families* of scenario names.

    Exact-name registration covers a finite catalogue; a resolver
    covers an open-ended family — the fuzzer's ``fuzz-<seed>-<index>``
    names resolve this way, so any fuzzed timeline is a one-line repro
    in every process without enumerating the family in
    :func:`scenario_names` (which benchmarks iterate exhaustively).
    """
    _RESOLVERS.append(resolver)


def scenario_names() -> List[str]:
    """Every exactly-registered scenario name, sorted.

    Resolver-backed families (e.g. fuzzed ``fuzz-<seed>-<index>``
    names) are unbounded and deliberately not enumerated here; use
    :func:`has_scenario` for membership tests.
    """
    return sorted(_SCENARIOS)


def resolve_scenario_factory(name: str) -> Optional[ScenarioFactory]:
    """The factory for ``name`` — exact registration first, then the
    registered resolvers in order — or ``None`` when nothing claims it.
    """
    factory = _SCENARIOS.get(name)
    if factory is not None:
        return factory
    for resolver in _RESOLVERS:
        factory = resolver(name)
        if factory is not None:
            return factory
    return None


def has_scenario(name: str) -> bool:
    """Whether ``name`` resolves to a scenario (exact or via resolver)."""
    return resolve_scenario_factory(name) is not None


def make_scenario(name: str, /, **kwargs: Any) -> Scenario:
    """Build a registered scenario by name (resolvers included).

    ``name`` is positional-only so factories may themselves take a
    ``name=`` knob (the fuzzer's ``"fuzzed"`` factory does).
    """
    factory = resolve_scenario_factory(name)
    if factory is None:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {scenario_names()}"
        )
    return factory(**kwargs)


def _degraded(
    start_tick: int = 60,
    server_index: int = 0,
    throughput_factor: float = 0.35,
    seek_factor: float = 3.0,
) -> Scenario:
    return Scenario(
        name="sim-lustre-degraded",
        events=(
            DiskDegradation(
                at_tick=start_tick,
                server_index=server_index,
                throughput_factor=throughput_factor,
                seek_factor=seek_factor,
            ),
        ),
    )


def _bursty(
    first_tick: int = 40,
    period: int = 60,
    n_bursts: int = 4,
    duration: int = 20,
    # Random small-I/O on HDD runs seek-bound at ~10 MB/s aggregate, so
    # a burst must cut the ~117 MB/s NICs well below that to bind.
    bandwidth_factor: float = 0.03,
    latency_factor: float = 6.0,
    spike_instances: int = 1,
) -> Scenario:
    events = [
        NetworkCongestionWindow(
            at_tick=first_tick + k * period,
            duration_ticks=duration,
            bandwidth_factor=bandwidth_factor,
            latency_factor=latency_factor,
        )
        for k in range(n_bursts)
    ]
    if spike_instances > 0:
        # One load surge between the first two congestion windows: the
        # tuner sees demand rise while the fabric is briefly clean.
        events.append(
            LoadSpike(
                at_tick=first_tick + period // 2,
                duration_ticks=duration,
                extra_instances_per_client=spike_instances,
            )
        )
    return Scenario(name="sim-lustre-bursty", events=tuple(events))


def _churn(
    first_tick: int = 50,
    period: int = 60,
    absence_ticks: int = 25,
    n_cycles: int = 3,
) -> Scenario:
    return Scenario(
        name="sim-lustre-churn",
        events=tuple(
            ClientChurn(
                at_tick=first_tick + k * period,
                duration_ticks=absence_ticks,
                client_index=k,
            )
            for k in range(n_cycles)
        ),
    )


register_scenario("sim-lustre-degraded", _degraded)
register_scenario("sim-lustre-bursty", _bursty)
register_scenario("sim-lustre-churn", _churn)
