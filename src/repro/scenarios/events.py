"""Fault and perturbation events for the simulated target system.

The paper's central claim is *adaptation*: a DQN tuner keeps tuning as
the storage system changes underneath it, where a one-shot search
baseline goes stale.  Each :class:`ScenarioEvent` is one such change —
a disk losing half its bandwidth, a congestion window on the fabric, a
client leaving the cluster — applied to a live
:class:`~repro.env.tuning_env.StorageTuningEnv` at a scheduled action
tick.

Events are frozen, picklable data: they carry *what* happens and
*when*, never any per-run state.  Applying an event returns an undo
callable (or ``None`` for permanent changes); the per-environment
:class:`~repro.scenarios.scenario.ScenarioRuntime` owns that state, so
one :class:`~repro.scenarios.scenario.Scenario` object can safely be
shared by every replica of a vectorized fleet.

Ticks are environment ticks counted from ``reset()`` — the warm-up
window is included, so an event at tick 1 perturbs the very first
monitored interval.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, fields
from typing import Callable, Dict, Mapping, Optional

import numpy as np

from repro.util.rng import derive_rng

#: Undo callable returned by ``apply``; ``None`` means permanent.
Revert = Optional[Callable[[], None]]


class ScenarioError(RuntimeError):
    """An event could not be applied to this target system."""


@dataclass(frozen=True, kw_only=True)
class ScenarioEvent(abc.ABC):
    """One scheduled perturbation of the target system.

    ``at_tick`` is when the event fires (environment ticks since
    reset, >= 1); ``duration_ticks``, when set, reverts the change
    ``duration_ticks`` ticks later — the tick range
    ``[at_tick, at_tick + duration_ticks)`` runs perturbed.
    """

    at_tick: int
    duration_ticks: Optional[int] = None

    def __post_init__(self) -> None:
        if self.at_tick < 1:
            raise ValueError(f"at_tick must be >= 1, got {self.at_tick}")
        if self.duration_ticks is not None and self.duration_ticks < 0:
            # duration_ticks == 0 is a legal *empty* window: the fuzzer's
            # rescale mutation can shrink a window to nothing, and the
            # runtime treats the event as pure no-op (never applied).
            raise ValueError(
                f"duration_ticks must be >= 0 or None, got "
                f"{self.duration_ticks}"
            )

    @abc.abstractmethod
    def apply(self, env, rng: np.random.Generator) -> Revert:
        """Perturb the live environment; return the undo, or ``None``.

        ``env`` is duck-typed (anything with ``cluster``/``workload``/
        ``sim``); ``rng`` is this event's private derived stream —
        every draw must come from it so trajectories stay a pure
        function of the environment seed.
        """

    def apply_vec(self, slot, rng: np.random.Generator) -> Revert:
        """Perturb one row of a vectorized fleet; return the undo.

        ``slot`` is a :class:`~repro.sim.vec.fleet_env.FleetSlot`; the
        built-in events scale that row's factor/knob arrays with the
        same stacking semantics as their object-graph ``apply``.  Custom
        events without a vectorized form fail loudly here rather than
        silently not perturbing the fleet.
        """
        raise ScenarioError(
            f"{type(self).__name__} has no vectorized application; run "
            f"this scenario on the reference backend"
        )

    def rebuild_revert_vec(
        self, slot, payload: dict
    ) -> Callable[[], None]:
        """Reconstruct a pending vectorized revert from its payload.

        Vectorized reverts are closures and cannot cross a snapshot
        boundary; instead each carries a JSON-able ``snapshot_payload``
        attribute, and a restored :class:`~repro.scenarios.scenario.
        ScenarioRuntime` rebuilds the callable against the *restored*
        fleet state via this hook.  Events override it to be their own
        revert factory (``apply_vec`` funnels through it too, so the
        two paths cannot drift); custom events without one fail loudly
        at snapshot-restore time.
        """
        raise ScenarioError(
            f"{type(self).__name__} cannot rebuild a vectorized revert "
            f"from a snapshot; implement rebuild_revert_vec"
        )

    @staticmethod
    def _tag(revert: Callable[[], None], payload: dict) -> Callable[[], None]:
        """Attach the snapshot payload a pending revert travels as."""
        revert.snapshot_payload = payload
        return revert


@dataclass(frozen=True, kw_only=True)
class DiskDegradation(ScenarioEvent):
    """A server's disk slows down (failing drive, RAID rebuild).

    Media bandwidth is multiplied by ``throughput_factor`` and — on
    positional (HDD) models — seek times by ``seek_factor``.  The
    optimal congestion window shifts with the service-time balance,
    which is exactly what a static tuner cannot follow.
    """

    server_index: int = 0
    throughput_factor: float = 0.35
    seek_factor: float = 3.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.throughput_factor <= 0:
            raise ValueError("throughput_factor must be > 0")
        if self.seek_factor <= 0:
            raise ValueError("seek_factor must be > 0")

    def apply(self, env, rng: np.random.Generator) -> Revert:
        servers = env.cluster.servers
        disk = servers[self.server_index % len(servers)].disk
        disk.read_bw *= self.throughput_factor
        disk.write_bw *= self.throughput_factor
        positional = hasattr(disk, "min_seek")
        if positional:
            disk.min_seek *= self.seek_factor
            disk.max_seek *= self.seek_factor

        def revert() -> None:
            # Undo by inverse scaling, not by restoring saved absolutes:
            # overlapping windows on the same disk then compose
            # multiplicatively and un-compose correctly in any order.
            disk.read_bw /= self.throughput_factor
            disk.write_bw /= self.throughput_factor
            if positional:
                disk.min_seek /= self.seek_factor
                disk.max_seek /= self.seek_factor

        return revert

    def apply_vec(self, slot, rng: np.random.Generator) -> Revert:
        st, e = slot.fleet.state, slot.index
        s = self.server_index % st.cfg.n_servers
        st.disk_bw_f[e, s] *= self.throughput_factor
        st.disk_seek_f[e, s] *= self.seek_factor
        return self.rebuild_revert_vec(slot, {})

    def rebuild_revert_vec(self, slot, payload: dict) -> Callable[[], None]:
        st, e = slot.fleet.state, slot.index
        s = self.server_index % st.cfg.n_servers

        def revert() -> None:
            # Inverse scaling, like apply(): overlapping windows on the
            # same disk compose and un-compose in any order.
            st.disk_bw_f[e, s] /= self.throughput_factor
            st.disk_seek_f[e, s] /= self.seek_factor

        return self._tag(revert, payload)


@dataclass(frozen=True, kw_only=True)
class NetworkCongestionWindow(ScenarioEvent):
    """External fabric congestion for a bounded window of ticks.

    Every NIC link's bandwidth is multiplied by ``bandwidth_factor``
    and the propagation latency by ``latency_factor`` — the §4.2 "not
    located on an isolated network" interference, concentrated into a
    burst instead of diffuse Poisson noise.
    """

    duration_ticks: Optional[int] = 20
    bandwidth_factor: float = 0.1
    latency_factor: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.bandwidth_factor <= 0:
            raise ValueError("bandwidth_factor must be > 0")
        if self.latency_factor <= 0:
            raise ValueError("latency_factor must be > 0")

    def apply(self, env, rng: np.random.Generator) -> Revert:
        fabric = env.cluster.fabric
        links = fabric.links()
        for link in links:
            link.bandwidth *= self.bandwidth_factor
        fabric.nic_bw *= self.bandwidth_factor
        fabric.latency *= self.latency_factor

        def revert() -> None:
            # Inverse scaling (see DiskDegradation.apply): overlapping
            # congestion windows stack and unstack in any order without
            # ever restoring a mid-overlap absolute.
            for link in links:
                link.bandwidth /= self.bandwidth_factor
            fabric.nic_bw /= self.bandwidth_factor
            fabric.latency /= self.latency_factor

        return revert

    def apply_vec(self, slot, rng: np.random.Generator) -> Revert:
        st, e = slot.fleet.state, slot.index
        st.net_bw_f[e] *= self.bandwidth_factor
        st.net_lat_f[e] *= self.latency_factor
        return self.rebuild_revert_vec(slot, {})

    def rebuild_revert_vec(self, slot, payload: dict) -> Callable[[], None]:
        st, e = slot.fleet.state, slot.index

        def revert() -> None:
            st.net_bw_f[e] /= self.bandwidth_factor
            st.net_lat_f[e] /= self.latency_factor

        return self._tag(revert, payload)


@dataclass(frozen=True, kw_only=True)
class ClientChurn(ScenarioEvent):
    """A client's applications stop issuing I/O; optionally rejoin.

    With ``duration_ticks`` set, the client rejoins afterwards with
    freshly derived instance streams (the returning application is a
    new process, not a resumed one).  The client node itself stays up —
    its write cache drains and its monitoring agent keeps reporting,
    so the tuner sees the load shift, not a telemetry hole.

    Everything running on the client leaves with it, surge instances
    from an overlapping :class:`LoadSpike` included; the rejoin brings
    back the base instances only.  Churning a client that is already
    absent is a no-op (and so is that event's rejoin).
    """

    client_index: int = 0

    def apply(self, env, rng: np.random.Generator) -> Revert:
        clients = env.cluster.clients
        client_id = clients[self.client_index % len(clients)].client_id
        already_absent = env.workload.client_paused(client_id)
        env.workload.pause_client(client_id)
        if self.duration_ticks is None:
            return None
        if already_absent:
            # Overlapping churn on one client: the earlier event owns
            # the rejoin; rejoining twice would double the instances.
            # (Checked via the synchronous paused-client flag — process
            # liveness lags interrupts, so same-tick overlaps would
            # otherwise both claim ownership.)
            return lambda: None

        def revert() -> None:
            env.workload.resume_client(
                client_id, derive_rng(rng, "rejoin", client_id)
            )

        return revert

    def apply_vec(self, slot, rng: np.random.Generator) -> Revert:
        st, e = slot.fleet.state, slot.index
        c = self.client_index % st.cfg.n_clients
        already_absent = bool(st.paused[e, c])
        st.paused[e, c] = True
        # Everything running on the client leaves with it, surge
        # instances included; the rejoin brings back the base only.
        st.surge[e, c] = 0.0
        if self.duration_ticks is None:
            return None
        return self.rebuild_revert_vec(slot, {"noop": already_absent})

    def rebuild_revert_vec(self, slot, payload: dict) -> Callable[[], None]:
        if payload.get("noop"):
            # The earlier overlapping churn owns the rejoin.
            return self._tag(lambda: None, payload)
        st, e = slot.fleet.state, slot.index
        c = self.client_index % st.cfg.n_clients

        def revert() -> None:
            st.paused[e, c] = False

        return self._tag(revert, payload)


@dataclass(frozen=True, kw_only=True)
class WorkloadPhaseShift(ScenarioEvent):
    """The running workload changes character in place (§3.6 phases).

    Mutates the live workload's mix knobs — ``read_fraction`` and/or
    ``think_time`` — without restarting instances, the "workload
    changes underneath the tuner" condition of Figures 2-3 read:write
    sweeps.  Raises :class:`ScenarioError` when the workload does not
    expose a requested knob.

    Shifts set absolute values, so *overlapping* windowed shifts of
    the same knob do not compose — schedule them disjointly (the
    multiplicative disk/network events are the ones that stack).
    """

    read_fraction: Optional[float] = None
    think_time: Optional[float] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.read_fraction is None and self.think_time is None:
            raise ValueError(
                "WorkloadPhaseShift needs read_fraction and/or think_time"
            )
        if self.read_fraction is not None and not (
            0.0 <= self.read_fraction <= 1.0
        ):
            raise ValueError("read_fraction must be in [0, 1]")
        if self.think_time is not None and self.think_time < 0:
            raise ValueError("think_time must be >= 0")

    def apply(self, env, rng: np.random.Generator) -> Revert:
        workload = env.workload
        saved = {}
        for knob in ("read_fraction", "think_time"):
            value = getattr(self, knob)
            if value is None:
                continue
            if not hasattr(workload, knob):
                raise ScenarioError(
                    f"workload {workload.name!r} has no {knob!r} knob to "
                    f"shift (WorkloadPhaseShift suits random_rw-style "
                    f"workloads)"
                )
            saved[knob] = getattr(workload, knob)
            setattr(workload, knob, float(value))
        if self.duration_ticks is None:
            return None

        def revert() -> None:
            for knob, value in saved.items():
                setattr(workload, knob, value)

        return revert

    def apply_vec(self, slot, rng: np.random.Generator) -> Revert:
        st, e = slot.fleet.state, slot.index
        saved = {}
        if self.read_fraction is not None:
            saved["rf"] = float(st.rf[e])
            st.rf[e] = float(self.read_fraction)
        if self.think_time is not None:
            saved["think"] = float(st.think[e])
            st.think[e] = float(self.think_time)
        if self.duration_ticks is None:
            return None
        return self.rebuild_revert_vec(slot, {"saved": saved})

    def rebuild_revert_vec(self, slot, payload: dict) -> Callable[[], None]:
        st, e = slot.fleet.state, slot.index
        saved = payload["saved"]

        def revert() -> None:
            if "rf" in saved:
                st.rf[e] = float(saved["rf"])
            if "think" in saved:
                st.think[e] = float(saved["think"])

        return self._tag(revert, payload)


@dataclass(frozen=True, kw_only=True)
class LoadSpike(ScenarioEvent):
    """Extra application instances pile onto every client.

    The surge instances draw from streams derived off this event's
    private rng, so the spike itself is reproducible; with
    ``duration_ticks`` set they are interrupted when the spike ends.
    """

    duration_ticks: Optional[int] = 15
    extra_instances_per_client: int = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.extra_instances_per_client < 1:
            raise ValueError("extra_instances_per_client must be >= 1")

    def apply(self, env, rng: np.random.Generator) -> Revert:
        procs = env.workload.surge(
            self.extra_instances_per_client, derive_rng(rng, "surge")
        )
        if self.duration_ticks is None:
            return None

        def revert() -> None:
            for proc in procs:
                if proc.is_alive:
                    proc.interrupt(cause="load-spike-end")

        return revert

    def apply_vec(self, slot, rng: np.random.Generator) -> Revert:
        st, e = slot.fleet.state, slot.index
        extra = float(self.extra_instances_per_client)
        # Paused clients spawn nothing (their runtime is gone); clients
        # churned mid-spike have their surge zeroed by the churn, and
        # the clamp below keeps this spike's end from going negative.
        affected = np.flatnonzero(~st.paused[e])
        st.surge[e, affected] += extra
        if self.duration_ticks is None:
            return None
        return self.rebuild_revert_vec(
            slot, {"affected": [int(c) for c in affected]}
        )

    def rebuild_revert_vec(self, slot, payload: dict) -> Callable[[], None]:
        st, e = slot.fleet.state, slot.index
        extra = float(self.extra_instances_per_client)
        affected = np.asarray(payload["affected"], dtype=np.int64)

        def revert() -> None:
            st.surge[e, affected] = np.maximum(
                st.surge[e, affected] - extra, 0.0
            )

        return self._tag(revert, payload)


#: JSON-serializable event classes, keyed by class name — the wire
#: vocabulary of :func:`event_to_dict`/:func:`event_from_dict`.
EVENT_TYPES: Dict[str, type] = {
    cls.__name__: cls
    for cls in (
        ClientChurn,
        DiskDegradation,
        LoadSpike,
        NetworkCongestionWindow,
        WorkloadPhaseShift,
    )
}


def event_to_dict(event: ScenarioEvent) -> dict:
    """Serialize an event to a JSON-able dict (``type`` + field values).

    The built-in events carry only ints/floats/``None``, so the dict
    round-trips through ``json`` exactly; :func:`event_from_dict`
    inverts it.  This is how fuzzed timelines travel in
    ``BENCH_scenarios.json`` frontier entries and ``--score-events``
    repro commands.
    """
    if type(event).__name__ not in EVENT_TYPES:
        raise ScenarioError(
            f"{type(event).__name__} is not a serializable built-in "
            f"event; register it in EVENT_TYPES to fuzz it"
        )
    data: dict = {"type": type(event).__name__}
    for field in fields(event):
        data[field.name] = getattr(event, field.name)
    return data


def event_from_dict(data: Mapping) -> ScenarioEvent:
    """Rebuild an event from its :func:`event_to_dict` serialization.

    Field values pass through each event's ``__post_init__``
    validation, so a hand-edited or corrupted dict fails loudly.
    """
    payload = dict(data)
    type_name = payload.pop("type", None)
    cls = EVENT_TYPES.get(type_name)
    if cls is None:
        raise ScenarioError(
            f"unknown event type {type_name!r}; known: "
            f"{sorted(EVENT_TYPES)}"
        )
    return cls(**payload)
