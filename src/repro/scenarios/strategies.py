"""Hypothesis strategies over the fuzzed-scenario space.

Exported for test reuse (the fuzz property suites draw from these),
and kept in lockstep with the plain :mod:`repro.scenarios.fuzz`
sampler: both generate the same five event kinds over the same
magnitude ranges, and both funnel raw timelines through
:func:`repro.scenarios.fuzz.repair_timeline` so the
WorkloadPhaseShift disjointness contract holds for every generated
timeline.

This module imports :mod:`hypothesis` at import time — it is a *test*
dependency, so production code must not import it (nothing in
``repro.scenarios.__init__`` does).
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.scenarios.events import (
    ClientChurn,
    DiskDegradation,
    LoadSpike,
    NetworkCongestionWindow,
    WorkloadPhaseShift,
)
from repro.scenarios.fuzz import (
    DEFAULT_HORIZON,
    DEFAULT_MAX_EVENTS,
    repair_timeline,
)
from repro.scenarios.scenario import Scenario


def _factors(low: float, high: float) -> st.SearchStrategy:
    return st.floats(
        min_value=low, max_value=high, allow_nan=False, allow_infinity=False
    )


def at_ticks(horizon: int = DEFAULT_HORIZON) -> st.SearchStrategy:
    """Event fire ticks: ``[1, horizon]``."""
    return st.integers(min_value=1, max_value=horizon)


def durations(
    horizon: int = DEFAULT_HORIZON, allow_permanent: bool = True
) -> st.SearchStrategy:
    """Window lengths: zero-length no-ops through ``horizon // 2``
    ticks, plus ``None`` (permanent) when allowed."""
    windows = st.integers(min_value=0, max_value=max(1, horizon // 2))
    return st.none() | windows if allow_permanent else windows


def disk_degradations(horizon: int = DEFAULT_HORIZON) -> st.SearchStrategy:
    """Randomized :class:`~repro.scenarios.events.DiskDegradation`."""
    return st.builds(
        DiskDegradation,
        at_tick=at_ticks(horizon),
        duration_ticks=durations(horizon),
        server_index=st.integers(min_value=0, max_value=3),
        throughput_factor=_factors(0.05, 0.99),
        seek_factor=_factors(1.0, 8.0),
    )


def congestion_windows(horizon: int = DEFAULT_HORIZON) -> st.SearchStrategy:
    """Randomized :class:`~repro.scenarios.events.NetworkCongestionWindow`."""
    return st.builds(
        NetworkCongestionWindow,
        at_tick=at_ticks(horizon),
        duration_ticks=durations(horizon, allow_permanent=False),
        bandwidth_factor=_factors(0.01, 0.95),
        latency_factor=_factors(1.0, 10.0),
    )


def client_churns(horizon: int = DEFAULT_HORIZON) -> st.SearchStrategy:
    """Randomized :class:`~repro.scenarios.events.ClientChurn`."""
    return st.builds(
        ClientChurn,
        at_tick=at_ticks(horizon),
        duration_ticks=durations(horizon),
        client_index=st.integers(min_value=0, max_value=5),
    )


def phase_shifts(horizon: int = DEFAULT_HORIZON) -> st.SearchStrategy:
    """Randomized :class:`~repro.scenarios.events.WorkloadPhaseShift`
    (at least one knob always set, as validation requires)."""
    rf = _factors(0.0, 1.0)
    think = _factors(0.0, 0.5)
    knobs = st.one_of(
        st.tuples(rf, st.none()),
        st.tuples(st.none(), think),
        st.tuples(rf, think),
    )
    return st.builds(
        lambda at_tick, duration_ticks, pair: WorkloadPhaseShift(
            at_tick=at_tick,
            duration_ticks=duration_ticks,
            read_fraction=pair[0],
            think_time=pair[1],
        ),
        at_tick=at_ticks(horizon),
        duration_ticks=durations(horizon),
        pair=knobs,
    )


def load_spikes(horizon: int = DEFAULT_HORIZON) -> st.SearchStrategy:
    """Randomized :class:`~repro.scenarios.events.LoadSpike`."""
    return st.builds(
        LoadSpike,
        at_tick=at_ticks(horizon),
        duration_ticks=durations(horizon, allow_permanent=False),
        extra_instances_per_client=st.integers(min_value=1, max_value=4),
    )


def events(horizon: int = DEFAULT_HORIZON) -> st.SearchStrategy:
    """Any one of the five randomized event kinds."""
    return st.one_of(
        disk_degradations(horizon),
        congestion_windows(horizon),
        client_churns(horizon),
        phase_shifts(horizon),
        load_spikes(horizon),
    )


def timelines(
    horizon: int = DEFAULT_HORIZON, max_events: int = DEFAULT_MAX_EVENTS
) -> st.SearchStrategy:
    """Repaired event tuples of 1..``max_events`` events (overlap
    allowed except where :func:`repair_timeline` forbids it)."""
    return st.lists(
        events(horizon), min_size=1, max_size=max_events
    ).map(lambda evs: repair_timeline(tuple(evs)))


def scenarios(
    horizon: int = DEFAULT_HORIZON, max_events: int = DEFAULT_MAX_EVENTS
) -> st.SearchStrategy:
    """Whole :class:`~repro.scenarios.scenario.Scenario` objects over
    :func:`timelines` (named ``fuzz-strategy`` — these are drawn by
    hypothesis, not derivable from a registry name)."""
    return timelines(horizon, max_events).map(
        lambda evs: Scenario(name="fuzz-strategy", events=evs)
    )
