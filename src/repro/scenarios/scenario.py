"""Scenario: a named, seeded, composable timeline of perturbations.

A :class:`Scenario` is plain picklable data — a name plus an event
tuple — so it rides inside an
:class:`~repro.env.tuning_env.EnvConfig` across process boundaries
(fork workers, experiment pools) unchanged.  All run state lives in a
:class:`ScenarioRuntime`, built per environment at ``reset()``:

- the runtime's root rng is derived from the *environment's* seed via
  :func:`~repro.util.rng.derive_rng` (name-free key, so renaming a
  composition cannot perturb it), and a fleet of N replicas built
  over :func:`~repro.env.vector.vector_seeds` gives replica *i* a
  perturbation stream that depends only on ``(base_seed, i)`` — never
  on the fleet size, the same contract the vector environment makes
  for every other stream;
- each event gets its own child stream keyed by its position in the
  tuple, so ``a + b`` preserves the streams of ``a``'s events exactly
  (``b``'s events take the following positions).

Scenarios compose with ``+`` (timelines merge; firing order is by
tick, ties broken by position), which is how compound conditions like
"degraded disk *and* bursty network" are assembled from the named
building blocks in :mod:`repro.scenarios.registry`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from repro.scenarios.events import ScenarioError, ScenarioEvent
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class Scenario:
    """A named timeline of :class:`ScenarioEvent`\\ s (picklable)."""

    name: str
    events: Tuple[ScenarioEvent, ...] = ()

    def __post_init__(self) -> None:
        events = tuple(self.events)
        for ev in events:
            if not isinstance(ev, ScenarioEvent):
                raise TypeError(f"not a ScenarioEvent: {ev!r}")
        object.__setattr__(self, "events", events)

    def __add__(self, other: "Scenario") -> "Scenario":
        """Merge timelines: ``a + b`` fires both scenarios' events."""
        if not isinstance(other, Scenario):
            return NotImplemented
        return Scenario(
            name=f"{self.name}+{other.name}",
            events=self.events + other.events,
        )

    @classmethod
    def compose(cls, name: str, *scenarios: "Scenario") -> "Scenario":
        """Merge several scenarios under one explicit name."""
        events: Tuple[ScenarioEvent, ...] = ()
        for s in scenarios:
            events = events + s.events
        return cls(name=name, events=events)

    @property
    def last_tick(self) -> int:
        """Last tick at which anything fires (applies *or* reverts)."""
        last = 0
        for ev in self.events:
            end = ev.at_tick + (ev.duration_ticks or 0)
            last = max(last, end)
        return last


class ScenarioRuntime:
    """Per-environment execution state for one scenario.

    ``on_tick(t)`` is called by the environment once per tick, *before*
    the simulation advances over that tick's interval: reverts due at
    ``t`` run first, then events whose ``at_tick == t`` are applied (in
    timeline position order), so a window ending exactly where the next
    begins hands over cleanly.
    """

    def __init__(self, scenario: Scenario, env, rng: np.random.Generator):
        self.scenario = scenario
        self.env = env
        # Position-keyed child streams: composing more events later
        # never perturbs the streams of earlier positions.
        self._rngs = [
            derive_rng(rng, "event", i) for i in range(len(scenario.events))
        ]
        #: Audit log of ``(tick, "apply"|"revert", event)`` in firing order.
        self.log: List[tuple] = []
        # (revert_tick, position, callable), kept sorted by firing order.
        self._pending_reverts: List[Tuple[int, int, Callable[[], None]]] = []

    @property
    def active_count(self) -> int:
        """Windowed perturbations currently in force."""
        return len(self._pending_reverts)

    def on_tick(self, tick: int) -> None:
        """Apply events scheduled at ``tick`` and any due reverts
        (called by the environment before the tick's interval runs)."""
        due = [pr for pr in self._pending_reverts if pr[0] <= tick]
        if due:
            self._pending_reverts = [
                pr for pr in self._pending_reverts if pr[0] > tick
            ]
            for revert_tick, pos, revert in sorted(due):
                revert()
                self.log.append((tick, "revert", self.scenario.events[pos]))
        for pos, event in enumerate(self.scenario.events):
            if event.at_tick != tick:
                continue
            if event.duration_ticks == 0:
                # An empty window [t, t): applying and immediately
                # reverting would still burn rng draws and log entries,
                # so a zero-length event is a pure no-op instead.
                continue
            if getattr(self.env, "fleet_slot", False):
                # A vectorized fleet row: events scale its factor
                # arrays instead of mutating an object graph.
                revert = event.apply_vec(self.env, self._rngs[pos])
            else:
                revert = event.apply(self.env, self._rngs[pos])
            self.log.append((tick, "apply", event))
            if event.duration_ticks is not None:
                if revert is None:  # pragma: no cover - event-author error
                    raise RuntimeError(
                        f"{type(event).__name__} declared duration_ticks "
                        f"but apply() returned no revert"
                    )
                self._pending_reverts.append(
                    (tick + event.duration_ticks, pos, revert)
                )
                self._pending_reverts.sort()

    # -- snapshot support ------------------------------------------------------
    def _position_of(self, event: ScenarioEvent) -> int:
        """An event's timeline position, by identity (events can be equal)."""
        for pos, candidate in enumerate(self.scenario.events):
            if candidate is event:
                return pos
        raise ScenarioError(  # pragma: no cover - log is runtime-owned
            f"event {event!r} is not on this runtime's timeline"
        )

    def snapshot_state(self) -> dict:
        """JSON-able capture of this runtime's mutable state.

        Events and the timeline itself are frozen data, so only three
        things move: the per-event RNG streams, the audit log, and the
        pending revert windows.  Reverts are closures and travel as
        their ``snapshot_payload`` (see
        :meth:`~repro.scenarios.events.ScenarioEvent.rebuild_revert_vec`);
        a pending revert without one — a custom event predating the
        snapshot contract — fails loudly here rather than silently
        dropping a perturbation window.
        """
        pending = []
        for revert_tick, pos, revert in self._pending_reverts:
            payload = getattr(revert, "snapshot_payload", None)
            if payload is None:
                raise ScenarioError(
                    f"{type(self.scenario.events[pos]).__name__} revert "
                    f"carries no snapshot_payload; this runtime cannot be "
                    f"snapshotted"
                )
            pending.append([int(revert_tick), int(pos), payload])
        return {
            "rngs": [g.bit_generator.state for g in self._rngs],
            "log": [
                [int(tick), kind, self._position_of(event)]
                for tick, kind, event in self.log
            ],
            "pending": pending,
        }

    def restore_state(self, state: dict) -> None:
        """Overwrite this runtime's mutable state with a capture.

        The runtime must have been built over the same scenario (same
        event tuple) and the same environment row; pending reverts are
        rebuilt against the *current* ``self.env`` state via each
        event's ``rebuild_revert_vec``.
        """
        if len(state["rngs"]) != len(self._rngs):
            raise ScenarioError(
                f"scenario shape mismatch: snapshot has "
                f"{len(state['rngs'])} event streams, timeline has "
                f"{len(self._rngs)}"
            )
        for gen, captured in zip(self._rngs, state["rngs"]):
            gen.bit_generator.state = captured
        events = self.scenario.events
        self.log = [
            (int(tick), str(kind), events[int(pos)])
            for tick, kind, pos in state["log"]
        ]
        self._pending_reverts = [
            (
                int(revert_tick),
                int(pos),
                events[int(pos)].rebuild_revert_vec(self.env, payload),
            )
            for revert_tick, pos, payload in state["pending"]
        ]
        self._pending_reverts.sort(key=lambda pr: pr[:2])
