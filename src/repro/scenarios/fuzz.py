"""Adversarial scenario fuzzing: search for where CAPES stops winning.

BENCH_scenarios.json's three hand-written timelines are the entire
evidence base for the paper's adaptivity claim — CAPES crushes
``degraded`` and ``churn`` but is flat on ``bursty``.  This module
turns that anecdote into a mapped surface:

1. a seeded **generator** (:func:`sample_scenario`) composes randomized
   :class:`~repro.scenarios.events.ScenarioEvent` timelines, derived
   purely from ``(root_seed, index)`` via
   :func:`~repro.util.rng.derive_rng`, and a scenario-registry
   *resolver* makes every ``fuzz-<root_seed>-<index>`` name buildable
   in any process — each found timeline is a one-line repro;
2. a **search driver** (:class:`ScenarioFuzzer`) scores each candidate
   as ``tuner_vs_static_pct`` (capes-tuned vs static-tuned, the
   BENCH_scenarios metric) by fanning paired runs through the ordinary
   :class:`~repro.exp.runner.ExperimentRunner`, and searches for
   maximizers — a ``random`` sweep baseline plus generation-based
   ``hill_climb``/``evolution`` strategies that mutate timelines
   (:func:`mutate_timeline`: add/drop/shift/rescale events);
3. a **frontier reporter** (:func:`merge_frontier` behind
   ``repro fuzz-scenarios``) merges the top-k flat/losing timelines —
   serialized event lists, scores, exact repro commands — into
   ``BENCH_scenarios.json`` read-update-write.

Everything here is deterministic across interpreter invocations: the
generator re-derives byte-identical timelines from ``(root_seed,
index)``, search decisions depend only on scores (which are a pure
function of the spec), and ``jobs=1`` vs ``jobs=N`` evaluation yields
identical frontiers.

The heavyweight :mod:`repro.exp` imports happen lazily inside the
scoring paths so ``import repro.scenarios`` (which installs the
resolver) stays cheap and cycle-free.
"""

from __future__ import annotations

import functools
import json
import math
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.scenarios.events import (
    ClientChurn,
    DiskDegradation,
    LoadSpike,
    NetworkCongestionWindow,
    ScenarioEvent,
    WorkloadPhaseShift,
    event_from_dict,
    event_to_dict,
)
from repro.scenarios.registry import (
    make_scenario,
    register_scenario_resolver,
)
from repro.scenarios.scenario import Scenario
from repro.util.rng import derive_rng, ensure_rng

__all__ = [
    "DEFAULT_HORIZON",
    "DEFAULT_MAX_EVENTS",
    "FUZZ_NAME_RE",
    "MUTATION_OPS",
    "SEEDED_BURSTY_NAME",
    "Candidate",
    "FuzzResult",
    "FuzzScore",
    "FuzzScoreConfig",
    "ScenarioFuzzer",
    "merge_frontier",
    "mutate_timeline",
    "repair_timeline",
    "sample_scenario",
    "sample_timeline",
    "seeded_bursty_events",
]

#: Latest tick the generator schedules events at.  A default score run
#: spans ~3 (warm) + 60 (train) + 2x30 (eval) ticks, so 110 keeps most
#: events inside the session while mutation shifts can still push one
#: past the horizon (exercising the past-the-end no-op contract).
DEFAULT_HORIZON = 110

#: Most events a freshly sampled timeline carries (mutations may add
#: more).
DEFAULT_MAX_EVENTS = 5

#: The resolver-backed scenario-name family: ``fuzz-<root_seed>-<index>``.
FUZZ_NAME_RE = re.compile(r"^fuzz-(\d+)-(\d+)$")

#: Resolver-backed name of the seeded known-flat candidate: the
#: compressed ``sim-lustre-bursty`` timeline BENCH_scenarios measures
#: at ~+0.3% (flat), planted in every search's initial population so
#: even a tiny budget lands at least one frontier point with
#: ``tuner_vs_static_pct >= 0``.
SEEDED_BURSTY_NAME = "fuzz-seeded-bursty"

#: Timeline mutation operators (see :func:`mutate_timeline`).
MUTATION_OPS = ("add", "drop", "shift", "rescale")

_KINDS = ("disk", "net", "churn", "phase", "spike")


def _round(x: float) -> float:
    # 4 decimals: compact in JSON, and float->repr->float is exact, so
    # serialized timelines re-derive byte-identically.
    return round(float(x), 4)


def _sample_event(
    rng: np.random.Generator, horizon: int
) -> ScenarioEvent:
    """Draw one randomized event (kind, tick, window, magnitudes)."""
    kind = _KINDS[int(rng.integers(0, len(_KINDS)))]
    at_tick = int(rng.integers(1, horizon + 1))
    duration = int(rng.integers(1, max(2, horizon // 3)))
    permanent = bool(rng.random() < 0.2)
    if kind == "disk":
        return DiskDegradation(
            at_tick=at_tick,
            duration_ticks=None if permanent else duration,
            server_index=int(rng.integers(0, 4)),
            throughput_factor=_round(rng.uniform(0.1, 0.9)),
            seek_factor=_round(rng.uniform(1.0, 4.0)),
        )
    if kind == "net":
        return NetworkCongestionWindow(
            at_tick=at_tick,
            duration_ticks=duration,
            bandwidth_factor=_round(rng.uniform(0.02, 0.8)),
            latency_factor=_round(rng.uniform(1.0, 8.0)),
        )
    if kind == "churn":
        return ClientChurn(
            at_tick=at_tick,
            duration_ticks=None if permanent else duration,
            client_index=int(rng.integers(0, 6)),
        )
    if kind == "phase":
        which = int(rng.integers(0, 3))  # 0: rf, 1: think, 2: both
        return WorkloadPhaseShift(
            at_tick=at_tick,
            duration_ticks=None if permanent else duration,
            read_fraction=(
                _round(rng.uniform(0.0, 1.0)) if which != 1 else None
            ),
            think_time=(
                _round(rng.uniform(0.0, 0.3)) if which != 0 else None
            ),
        )
    return LoadSpike(
        at_tick=at_tick,
        duration_ticks=duration,
        extra_instances_per_client=int(rng.integers(1, 4)),
    )


def repair_timeline(
    events: Sequence[ScenarioEvent],
) -> Tuple[ScenarioEvent, ...]:
    """Enforce the documented composition contract on a raw timeline.

    :class:`~repro.scenarios.events.WorkloadPhaseShift` sets absolute
    knob values, so *overlapping* windowed shifts of the same knob do
    not compose (a revert would restore a mid-overlap value) — its
    docstring says "schedule them disjointly", and this is where the
    fuzzer does: a phase shift whose window overlaps an earlier shift
    of the same knob is dropped.  Zero-length windows never apply and
    are kept as-is; all other event kinds stack multiplicatively and
    overlap freely.
    """
    out: List[ScenarioEvent] = []
    occupied: Dict[str, List[Tuple[float, float]]] = {
        "read_fraction": [],
        "think_time": [],
    }
    for ev in events:
        if isinstance(ev, WorkloadPhaseShift) and ev.duration_ticks != 0:
            start = float(ev.at_tick)
            end = (
                math.inf
                if ev.duration_ticks is None
                else float(ev.at_tick + ev.duration_ticks)
            )
            knobs = [
                knob
                for knob in ("read_fraction", "think_time")
                if getattr(ev, knob) is not None
            ]
            if any(
                start < e and s < end
                for knob in knobs
                for (s, e) in occupied[knob]
            ):
                continue
            for knob in knobs:
                occupied[knob].append((start, end))
        out.append(ev)
    return tuple(out)


def sample_timeline(
    rng: np.random.Generator,
    horizon: int = DEFAULT_HORIZON,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> Tuple[ScenarioEvent, ...]:
    """Draw a repaired timeline of 1..``max_events`` randomized events.

    Consumes only ``rng``, so a caller holding a derived stream gets a
    pure function of that stream's state; overlap between events is
    allowed (and common) except where :func:`repair_timeline` forbids
    it.  The repair can only *drop* events, and never drops the first
    phase shift, so the result is always non-empty.
    """
    n_events = int(rng.integers(1, max_events + 1))
    return repair_timeline(
        tuple(_sample_event(rng, horizon) for _ in range(n_events))
    )


def sample_scenario(
    root_seed: int,
    index: int,
    horizon: int = DEFAULT_HORIZON,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> Scenario:
    """Derive fuzzed scenario ``fuzz-<root_seed>-<index>``.

    A pure function of its arguments: a *fresh* root generator is built
    from ``root_seed`` every call (``derive_rng`` consumes parent
    state, so sharing one root across indices would make index ``i``
    depend on which indices were drawn before it), then the timeline is
    drawn from the ``("fuzz", index)``-keyed child stream.  Two
    interpreter invocations — or two processes of one experiment pool —
    therefore rebuild byte-identical timelines from the name alone.
    """
    rng = derive_rng(ensure_rng(int(root_seed)), "fuzz", int(index))
    return Scenario(
        name=f"fuzz-{int(root_seed)}-{int(index)}",
        events=sample_timeline(rng, horizon=horizon, max_events=max_events),
    )


def seeded_bursty_events() -> Tuple[ScenarioEvent, ...]:
    """The compressed ``sim-lustre-bursty`` timeline (the known-flat
    region BENCH_scenarios measures at ~+0.3%), as plain events."""
    return make_scenario(
        "sim-lustre-bursty", first_tick=20, period=30, n_bursts=4, duration=10
    ).events


def _make_fuzzed(
    name: str = "fuzzed",
    events: Sequence[Union[Mapping, ScenarioEvent]] = (),
) -> Scenario:
    """``make_scenario("fuzzed", name=..., events=[...])``: build a
    scenario from serialized events (dicts or ready event objects).

    This is how non-derivable timelines — search mutants, hand-edited
    frontier entries — travel inside a picklable
    :class:`~repro.exp.spec.ExperimentSpec`: ``scenario="fuzzed"`` plus
    JSON-able ``scenario_kwargs``, rebuilt by name in every worker.
    """
    built = tuple(
        ev if isinstance(ev, ScenarioEvent) else event_from_dict(ev)
        for ev in events
    )
    return Scenario(name=str(name), events=built)


def _fuzz_resolver(name: str):
    """Scenario-registry resolver for the fuzzed-name families."""
    if name == "fuzzed":
        return _make_fuzzed
    if name == SEEDED_BURSTY_NAME:
        return lambda: Scenario(
            name=SEEDED_BURSTY_NAME, events=seeded_bursty_events()
        )
    match = FUZZ_NAME_RE.match(name)
    if match:
        return functools.partial(
            sample_scenario, int(match.group(1)), int(match.group(2))
        )
    return None


register_scenario_resolver(_fuzz_resolver)


# -- timeline mutation ----------------------------------------------------


def _rescale_event(
    ev: ScenarioEvent, rng: np.random.Generator, horizon: int
) -> ScenarioEvent:
    """Scale one event's magnitudes/window, clamped to valid ranges."""
    f = float(rng.uniform(0.5, 1.6))
    changes: Dict[str, object] = {}
    if ev.duration_ticks is not None:
        # May shrink to 0: a legal empty window the runtime never
        # applies (the zero-length no-op contract).
        changes["duration_ticks"] = min(
            int(round(ev.duration_ticks * f)), horizon
        )
    if isinstance(ev, DiskDegradation):
        changes["throughput_factor"] = _round(
            min(max(ev.throughput_factor * f, 0.05), 0.99)
        )
        changes["seek_factor"] = _round(
            min(max(ev.seek_factor / f, 1.0), 8.0)
        )
    elif isinstance(ev, NetworkCongestionWindow):
        changes["bandwidth_factor"] = _round(
            min(max(ev.bandwidth_factor * f, 0.01), 0.95)
        )
        changes["latency_factor"] = _round(
            min(max(ev.latency_factor / f, 1.0), 10.0)
        )
    elif isinstance(ev, WorkloadPhaseShift):
        if ev.read_fraction is not None:
            changes["read_fraction"] = _round(
                min(max(ev.read_fraction * f, 0.0), 1.0)
            )
        if ev.think_time is not None:
            changes["think_time"] = _round(
                min(max(ev.think_time * f, 0.0), 2.0)
            )
    elif isinstance(ev, LoadSpike):
        changes["extra_instances_per_client"] = min(
            max(int(round(ev.extra_instances_per_client * f)), 1), 6
        )
    return replace(ev, **changes)


def mutate_timeline(
    events: Sequence[ScenarioEvent],
    rng: np.random.Generator,
    horizon: int = DEFAULT_HORIZON,
    max_events: int = 2 * DEFAULT_MAX_EVENTS,
) -> Tuple[ScenarioEvent, ...]:
    """One search move: add, drop, shift, or rescale an event.

    Every operator returns freshly validated frozen events (``replace``
    re-runs ``__post_init__``), clamps ticks to ``[1, horizon]`` and
    magnitudes to their legal ranges, keeps the timeline within
    ``[1, max_events]`` events (drop is skipped on singletons, add once
    the cap is reached — unbounded growth would let a long search walk
    into ever-costlier timelines), and re-runs :func:`repair_timeline`
    so mutants honour the same composition contract as fresh samples.
    """
    events = tuple(events)
    ops = [
        op
        for op in MUTATION_OPS
        if (op != "drop" or len(events) > 1)
        and (op != "add" or len(events) < max_events)
    ]
    op = ops[int(rng.integers(0, len(ops)))]
    if op == "add":
        out = events + (_sample_event(rng, horizon),)
    elif op == "drop":
        i = int(rng.integers(0, len(events)))
        out = events[:i] + events[i + 1 :]
    elif op == "shift":
        i = int(rng.integers(0, len(events)))
        delta = int(rng.integers(-(horizon // 4), horizon // 4 + 1))
        ev = events[i]
        shifted = replace(
            ev, at_tick=min(max(ev.at_tick + delta, 1), horizon)
        )
        out = events[:i] + (shifted,) + events[i + 1 :]
    else:
        i = int(rng.integers(0, len(events)))
        out = (
            events[:i]
            + (_rescale_event(events[i], rng, horizon),)
            + events[i + 1 :]
        )
    return repair_timeline(out)


# -- scoring --------------------------------------------------------------


@dataclass(frozen=True)
class FuzzScoreConfig:
    """The experiment recipe every candidate timeline is scored under.

    Defaults mirror ``benchmarks/test_scenario_adapt.py`` exactly (one
    compressed CAPES session vs one static session, seed 42), so a
    frontier score is directly comparable to the ``scenarios`` rows of
    BENCH_scenarios.json; tests shrink the fields for speed.
    """

    seed: int = 42
    n_servers: int = 2
    n_clients: int = 3
    read_fraction: float = 0.1
    instances_per_client: int = 5
    hidden_layer_size: int = 32
    exploration_ticks: int = 60
    train_ticks: int = 60
    eval_ticks: int = 30
    epoch_ticks: int = 15

    def spec(self, tuner: str, scenario: str, scenario_kwargs: dict):
        """The :class:`~repro.exp.spec.ExperimentSpec` for one run."""
        from repro.cluster import ClusterConfig
        from repro.exp import ExperimentSpec, RunBudget, WorkloadSpec
        from repro.rl import Hyperparameters

        return ExperimentSpec(
            tuner=tuner,
            seed=self.seed,
            scenario=scenario,
            scenario_kwargs=scenario_kwargs,
            cluster=ClusterConfig(
                n_servers=self.n_servers, n_clients=self.n_clients
            ),
            workload=WorkloadSpec(
                "random_rw",
                {
                    "read_fraction": self.read_fraction,
                    "instances_per_client": self.instances_per_client,
                },
            ),
            hp=Hyperparameters(
                hidden_layer_size=self.hidden_layer_size,
                exploration_ticks=self.exploration_ticks,
                sampling_ticks_per_observation=3,
                adam_learning_rate=1e-3,
            ),
            budget=RunBudget(
                train_ticks=self.train_ticks,
                eval_ticks=self.eval_ticks,
                epoch_ticks=self.epoch_ticks,
            ),
        )

    def to_dict(self) -> dict:
        """JSON-able summary recorded next to the frontier."""
        return {
            "seed": self.seed,
            "train_ticks": self.train_ticks,
            "eval_ticks": self.eval_ticks,
            "epoch_ticks": self.epoch_ticks,
        }


@dataclass(frozen=True)
class FuzzScore:
    """One candidate's capes-vs-static outcome (the BENCH metric)."""

    #: ``100 * (capes_tuned - static_tuned) / static_tuned``; ``nan``
    #: when the static run measured no throughput to compare against.
    tuner_vs_static_pct: float
    capes_tuned: float
    static_tuned: float


@dataclass
class Candidate:
    """One fuzzed timeline moving through the search."""

    #: Deterministic scenario name (``fuzz-<root_seed>-<index>`` when
    #: derivable from the name alone).
    name: str
    events: Tuple[ScenarioEvent, ...]
    #: Provenance: ``sampled``, ``seeded``, or ``mutant:<parent-name>``.
    origin: str
    #: Whether the scenario-registry resolver rebuilds this timeline
    #: from ``name`` alone (sampled under default generator knobs).
    derivable: bool
    #: Evaluation order within one search (also the sort tiebreak).
    index: int = -1
    score: Optional[FuzzScore] = None

    def spec_fields(self) -> Tuple[str, dict]:
        """``(scenario, scenario_kwargs)`` for an ExperimentSpec."""
        if self.derivable:
            return self.name, {}
        return "fuzzed", {
            "name": self.name,
            "events": [event_to_dict(ev) for ev in self.events],
        }

    def repro_command(self) -> str:
        """Exact CLI line that re-runs this candidate's score."""
        if self.derivable:
            return f"repro fuzz-scenarios --score {self.name}"
        payload = json.dumps(
            {
                "name": self.name,
                "events": [event_to_dict(ev) for ev in self.events],
            },
            sort_keys=True,
        )
        return f"repro fuzz-scenarios --score-events '{payload}'"

    def to_dict(self) -> dict:
        """JSON-able frontier entry (events serialized, repro included)."""
        row = {
            "name": self.name,
            "origin": self.origin,
            "events": [event_to_dict(ev) for ev in self.events],
            "repro": self.repro_command(),
        }
        if self.score is not None:
            row["tuner_vs_static_pct"] = self.score.tuner_vs_static_pct
            row["capes_tuned"] = self.score.capes_tuned
            row["static_tuned"] = self.score.static_tuned
        return row


def _finite_pct(cand: Candidate) -> float:
    if cand.score is None or not math.isfinite(
        cand.score.tuner_vs_static_pct
    ):
        return -math.inf
    return cand.score.tuner_vs_static_pct


def _rank_key(cand: Candidate) -> tuple:
    # Highest pct first; evaluation order breaks ties so jobs=1 and
    # jobs=N (and repeated invocations) rank identically.
    return (-_finite_pct(cand), cand.index)


@dataclass
class FuzzResult:
    """Everything one search evaluated, plus frontier accessors."""

    root_seed: int
    strategy: str
    budget: int
    horizon: int
    max_events: int
    score_config: FuzzScoreConfig
    #: Every scored candidate, in evaluation order.
    candidates: List[Candidate] = field(default_factory=list)

    def frontier(self, top_k: int = 5) -> List[Candidate]:
        """The ``top_k`` highest-scoring (most flat/losing-for-capes)
        candidates, deterministically ranked."""
        scored = [c for c in self.candidates if _finite_pct(c) > -math.inf]
        return sorted(scored, key=_rank_key)[: max(int(top_k), 0)]

    def frontier_section(self, top_k: int = 5) -> dict:
        """The ``fuzzed_frontier`` JSON section for BENCH_scenarios."""
        return {
            "root_seed": self.root_seed,
            "strategy": self.strategy,
            "budget": self.budget,
            "horizon": self.horizon,
            "max_events": self.max_events,
            "n_scored": len(self.candidates),
            "score_config": self.score_config.to_dict(),
            "top": [c.to_dict() for c in self.frontier(top_k)],
        }


class ScenarioFuzzer:
    """The adversarial search driver over the fuzzed-scenario space.

    ``budget`` counts candidate timelines; each costs two full
    experiment runs (capes + static) fanned through one
    :class:`~repro.exp.runner.ExperimentRunner`, so results are
    byte-identical for any ``jobs`` and across interpreter invocations.

    Parameters
    ----------
    root_seed:
        Seeds both the sampled timelines (via :func:`sample_scenario`)
        and the search's own mutation stream.
    score_config:
        Experiment recipe per candidate; defaults to the
        BENCH_scenarios-compatible :class:`FuzzScoreConfig`.
    jobs:
        Worker processes for the paired scoring runs.
    horizon / max_events:
        Generator knobs.  Candidates sampled under non-default knobs
        are not name-derivable and travel as serialized events instead.
    include_seeded:
        Plant the known-flat compressed ``bursty`` timeline
        (:data:`SEEDED_BURSTY_NAME`) in the initial population.
    """

    def __init__(
        self,
        root_seed: int,
        *,
        score_config: Optional[FuzzScoreConfig] = None,
        jobs: int = 1,
        horizon: int = DEFAULT_HORIZON,
        max_events: int = DEFAULT_MAX_EVENTS,
        include_seeded: bool = True,
    ):
        self.root_seed = int(root_seed)
        self.score_config = score_config or FuzzScoreConfig()
        self.jobs = int(jobs)
        self.horizon = int(horizon)
        self.max_events = int(max_events)
        self.include_seeded = bool(include_seeded)
        # Search-owned stream for mutation moves, independent of the
        # per-index sampling streams (which rebuild a fresh root).
        self._search_rng = derive_rng(
            ensure_rng(self.root_seed), "fuzz-search"
        )
        self._sample_count = 0
        self._mutant_count = 0
        #: Every candidate scored so far, in evaluation order.
        self.evaluated: List[Candidate] = []

    # -- candidate construction -----------------------------------------
    @property
    def _derivable(self) -> bool:
        return (
            self.horizon == DEFAULT_HORIZON
            and self.max_events == DEFAULT_MAX_EVENTS
        )

    def _sampled_candidate(self) -> Candidate:
        index = self._sample_count
        self._sample_count += 1
        scenario = sample_scenario(
            self.root_seed, index, self.horizon, self.max_events
        )
        return Candidate(
            name=scenario.name,
            events=scenario.events,
            origin="sampled",
            derivable=self._derivable,
        )

    def _seeded_candidate(self) -> Candidate:
        return Candidate(
            name=SEEDED_BURSTY_NAME,
            events=seeded_bursty_events(),
            origin="seeded",
            derivable=True,
        )

    def _mutant_candidate(self, parent: Candidate) -> Candidate:
        index = self._mutant_count
        self._mutant_count += 1
        return Candidate(
            name=f"fuzz-{self.root_seed}-m{index}",
            events=mutate_timeline(
                parent.events, self._search_rng, self.horizon
            ),
            origin=f"mutant:{parent.name}",
            derivable=False,
        )

    # -- evaluation ------------------------------------------------------
    def evaluate(self, candidates: Sequence[Candidate]) -> List[Candidate]:
        """Score a batch: two runs per candidate through one runner.

        Scores land on the candidates (``score``/``index`` filled in)
        and the batch joins :attr:`evaluated`; rounding matches the
        BENCH_scenarios rows so a frontier entry's reported number is
        exactly what its repro command reprints.
        """
        from repro.exp.runner import ExperimentRunner

        candidates = list(candidates)
        if not candidates:
            return []
        specs = []
        for cand in candidates:
            scenario, kwargs = cand.spec_fields()
            specs.append(self.score_config.spec("capes", scenario, kwargs))
            specs.append(self.score_config.spec("static", scenario, kwargs))
        records = ExperimentRunner(jobs=self.jobs).run(specs).records
        for i, cand in enumerate(candidates):
            capes = records[2 * i].result.final
            static = records[2 * i + 1].result.final
            capes_tuned = float(np.mean(capes.tuned_rewards))
            static_tuned = float(np.mean(static.tuned_rewards))
            pct = (
                100.0 * (capes_tuned - static_tuned) / static_tuned
                if static_tuned > 0
                else float("nan")
            )
            cand.score = FuzzScore(
                tuner_vs_static_pct=round(pct, 2),
                capes_tuned=round(capes_tuned, 5),
                static_tuned=round(static_tuned, 5),
            )
            cand.index = len(self.evaluated)
            self.evaluated.append(cand)
        return candidates

    def score_one(self, candidate: Candidate) -> Candidate:
        """Score a single externally built candidate (CLI ``--score``)."""
        return self.evaluate([candidate])[0]

    # -- search strategies -----------------------------------------------
    def _initial(self, budget: int, n_sampled: int) -> List[Candidate]:
        batch: List[Candidate] = []
        if self.include_seeded:
            batch.append(self._seeded_candidate())
        target = min(budget, n_sampled + len(batch))
        while len(batch) < target:
            batch.append(self._sampled_candidate())
        return batch

    def search(self, strategy: str = "random", budget: int = 8) -> FuzzResult:
        """Run one search and return everything it evaluated.

        ``random`` scores ``budget`` fresh samples (plus the seeded
        candidate); ``hill_climb`` greedily follows the best improving
        mutant of the current leader (3 proposals per round, mirroring
        the coordinate-search acceptance rule of
        :mod:`repro.baselines.hill_climb`); ``evolution`` is a small
        (mu+lambda) scheme — mu=2 survivors, 3 children per round —
        mirroring :mod:`repro.baselines.evolution`.  All three are
        generation-batched, so any ``jobs`` yields the same frontier.
        """
        budget = int(budget)
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        if strategy not in ("random", "hill_climb", "evolution"):
            raise ValueError(
                f"unknown strategy {strategy!r}; "
                f"choose random, hill_climb or evolution"
            )
        start = len(self.evaluated)
        if strategy == "random":
            batch: List[Candidate] = []
            if self.include_seeded:
                batch.append(self._seeded_candidate())
            while len(batch) < budget:
                batch.append(self._sampled_candidate())
            self.evaluate(batch)
        elif strategy == "hill_climb":
            init = self.evaluate(self._initial(budget, n_sampled=2))
            current = min(init, key=_rank_key)
            while len(self.evaluated) - start < budget:
                k = min(3, budget - (len(self.evaluated) - start))
                mutants = self.evaluate(
                    [self._mutant_candidate(current) for _ in range(k)]
                )
                best = min(mutants, key=_rank_key)
                if _finite_pct(best) > _finite_pct(current):
                    current = best
        else:
            mu = 2
            init = self.evaluate(self._initial(budget, n_sampled=2))
            parents = sorted(init, key=_rank_key)[:mu]
            while len(self.evaluated) - start < budget:
                k = min(3, budget - (len(self.evaluated) - start))
                children = self.evaluate(
                    [
                        self._mutant_candidate(parents[i % len(parents)])
                        for i in range(k)
                    ]
                )
                parents = sorted(parents + children, key=_rank_key)[:mu]
        return FuzzResult(
            root_seed=self.root_seed,
            strategy=strategy,
            budget=budget,
            horizon=self.horizon,
            max_events=self.max_events,
            score_config=self.score_config,
            candidates=self.evaluated[start:],
        )


def merge_frontier(
    path: Union[str, Path], section: dict
) -> dict:
    """Read-update-write the ``fuzzed_frontier`` section into a BENCH
    JSON file (existing sections — e.g. ``scenarios`` — survive)."""
    path = Path(path)
    data = json.loads(path.read_text()) if path.exists() else {}
    data["fuzzed_frontier"] = section
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data
