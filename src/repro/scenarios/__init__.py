"""Scenario subsystem: reproducible fault/perturbation timelines.

The ROADMAP's "as many scenarios as you can imagine" leg: a
:class:`~repro.scenarios.scenario.Scenario` turns the simulated
cluster into a generator of hard, *reproducible* workloads — degraded
disks, congestion bursts, client churn — scheduled on the environment
tick timeline and seeded through :func:`~repro.util.rng.derive_rng` so
a scenario run is as bit-replayable as a steady-state one.

Attach a scenario three ways:

- ``EnvConfig(scenario=make_scenario("sim-lustre-bursty"))``;
- ``make_env("sim-lustre", scenario="sim-lustre-bursty", ...)`` or the
  pre-registered ``make_env("sim-lustre-bursty", seed=S)``;
- ``ExperimentSpec(scenario="sim-lustre-bursty")`` /
  ``repro sweep --scenario sim-lustre-bursty``.
"""

from repro.scenarios.events import (
    ClientChurn,
    DiskDegradation,
    LoadSpike,
    NetworkCongestionWindow,
    ScenarioError,
    ScenarioEvent,
    WorkloadPhaseShift,
    event_from_dict,
    event_to_dict,
)
from repro.scenarios.registry import (
    has_scenario,
    make_scenario,
    register_scenario,
    register_scenario_resolver,
    scenario_names,
)
from repro.scenarios.scenario import Scenario, ScenarioRuntime

# Importing the fuzzer installs its name resolver, so the
# fuzz-<root_seed>-<index> / "fuzzed" scenario families resolve in
# every process that can name a scenario at all (CLI, spec workers,
# shard hosts).  The heavyweight scoring imports inside it are lazy.
from repro.scenarios.fuzz import (  # noqa: E402  (resolver side effect)
    ScenarioFuzzer,
    mutate_timeline,
    sample_scenario,
    sample_timeline,
)

__all__ = [
    "ClientChurn",
    "DiskDegradation",
    "LoadSpike",
    "NetworkCongestionWindow",
    "Scenario",
    "ScenarioError",
    "ScenarioEvent",
    "ScenarioFuzzer",
    "ScenarioRuntime",
    "WorkloadPhaseShift",
    "event_from_dict",
    "event_to_dict",
    "has_scenario",
    "make_scenario",
    "mutate_timeline",
    "register_scenario",
    "register_scenario_resolver",
    "sample_scenario",
    "sample_timeline",
    "scenario_names",
]
