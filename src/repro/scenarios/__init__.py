"""Scenario subsystem: reproducible fault/perturbation timelines.

The ROADMAP's "as many scenarios as you can imagine" leg: a
:class:`~repro.scenarios.scenario.Scenario` turns the simulated
cluster into a generator of hard, *reproducible* workloads — degraded
disks, congestion bursts, client churn — scheduled on the environment
tick timeline and seeded through :func:`~repro.util.rng.derive_rng` so
a scenario run is as bit-replayable as a steady-state one.

Attach a scenario three ways:

- ``EnvConfig(scenario=make_scenario("sim-lustre-bursty"))``;
- ``make_env("sim-lustre", scenario="sim-lustre-bursty", ...)`` or the
  pre-registered ``make_env("sim-lustre-bursty", seed=S)``;
- ``ExperimentSpec(scenario="sim-lustre-bursty")`` /
  ``repro sweep --scenario sim-lustre-bursty``.
"""

from repro.scenarios.events import (
    ClientChurn,
    DiskDegradation,
    LoadSpike,
    NetworkCongestionWindow,
    ScenarioError,
    ScenarioEvent,
    WorkloadPhaseShift,
)
from repro.scenarios.registry import (
    make_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenarios.scenario import Scenario, ScenarioRuntime

__all__ = [
    "ClientChurn",
    "DiskDegradation",
    "LoadSpike",
    "NetworkCongestionWindow",
    "Scenario",
    "ScenarioError",
    "ScenarioEvent",
    "ScenarioRuntime",
    "WorkloadPhaseShift",
    "make_scenario",
    "register_scenario",
    "scenario_names",
]
