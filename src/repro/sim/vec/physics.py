"""The fleet tick kernel: advance N clusters with array ops.

A tick-level fluid model of the reference cluster, carrying the same
qualitative response surfaces the tuner exploits:

- **Elevator gain** — deeper server queues shorten average seeks
  (``min_seek + (max_seek - min_seek) / sqrt(k+1)``), so a bigger
  congestion window raises HDD efficiency …
- **Queue collapse** — … until per-op overhead grows linearly beyond
  ``collapse_threshold`` queued ops, which is what puts the optimum
  window in the *interior* of its range (the surface Figure 2 sweeps).
- **Token bucket** — the ``io_rate_limit`` knob caps per-client issue
  rate with burst credit, binding exactly when lowered.
- **Window-limited concurrency** — per-OSC outstanding I/O is capped at
  ``max_rpcs_in_flight``; a server is either capacity-bound
  (``1/t_op``) or concurrency-bound (``k / (t_op + rtt)``).
- **Write-back cache** — writes land in per-OSC dirty bytes
  (admission-limited by free space) and drain through the same queues;
  reads are synchronous and close the demand loop through measured
  latency.

Every operation is elementwise or reduces along a trailing axis, so
each environment row is computed independently of the fleet size —
that, plus per-env RNG streams, is what makes ``FleetEnv(n_envs=N)``
env ``i`` byte-identical to a lone ``FleetEnv(n_envs=1)`` run.  The
only transcendental (the demand jitter's ``exp``) is evaluated on
per-env ``(n_clients,)`` arrays inside the RNG loop, where the shape —
and therefore any SIMD code path — cannot depend on the fleet size.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.sim.vec.config import DEMAND_SIGMA, T_ADMIN
from repro.sim.vec.state import FleetState
from repro.telemetry.indicators import pack_osc_frames
from repro.util.units import MiB

#: Reward scale of the throughput objective (100 MB/s ≡ reward 1.0),
#: matching :class:`repro.telemetry.reward.ThroughputObjective`.
_REWARD_SCALE = 100.0 * MiB

_TINY = 1e-12


def tick_all(state: FleetState, idx: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Advance envs ``idx`` one tick; return their frames and rewards.

    ``idx`` must be sorted env indices.  Returns ``(frames, rewards)``
    with ``frames`` shaped ``(len(idx), frame_dim)`` — raw PI frames
    scaled and clipped per :mod:`repro.telemetry.indicators` — and
    per-env throughput rewards.  The caller owns tick counters,
    scenario dispatch, drops and record bookkeeping.
    """
    cfg = state.cfg
    E = len(idx)
    C, S = cfg.n_clients, cfg.n_servers
    dt, B = cfg.tick_length, cfg.io_size

    W = state.window[idx]  # (e,)
    R = state.rate[idx]
    rf = state.rf[idx]
    think = state.think[idx]
    rtt = 2.0 * cfg.net_lat * state.net_lat_f[idx]  # (e,)

    # -- client demand (closed loop through last tick's read latency) --
    mult = np.empty((E, C))
    for j, e in enumerate(idx):
        # (C,)-shaped per-env draw: stream and shape depend only on the
        # env, never on the fleet, so batched rows replay exactly.
        mult[j] = np.exp(
            DEMAND_SIGMA * state.wl_rngs[e].standard_normal(C)
        )
    inst = state.inst_base[idx] * ~state.paused[idx] + state.surge[idx]
    cycle = rf[:, None] * state.lat[idx] + think[:, None] + T_ADMIN
    demand = inst * mult * (dt / cycle)  # ops this tick (e, C)

    # -- token bucket (one per client, shared by reads and writes) -----
    avail = state.tokens[idx] + R[:, None] * dt
    issued = np.minimum(demand, avail)
    state.tokens[idx] = np.minimum(avail - issued, cfg.rate_burst)
    r_ops = issued * rf[:, None]
    w_ops = issued - r_ops

    # -- write-back cache admission (per OSC, striped uniformly) -------
    dirty = state.dirty[idx]
    admitted = np.minimum(
        (w_ops / S)[:, :, None] * B, np.maximum(cfg.max_dirty - dirty, 0.0)
    )
    dirty = dirty + admitted

    # -- offered load per OSC ------------------------------------------
    rd_pend = state.qr[idx] + (r_ops / S)[:, :, None]  # sync reads carry
    wr_pend = dirty / B  # write backlog is the cache itself
    offer = rd_pend + wr_pend
    osc_out = np.minimum(offer, W[:, None, None])  # window cap
    k = osc_out.sum(axis=1)  # (e, S) server queue depth

    # -- server service time at this depth -----------------------------
    seek = (
        cfg.min_seek + (cfg.max_seek - cfg.min_seek) / np.sqrt(k + 1.0)
    ) * state.disk_seek_f[idx]
    wr_frac = wr_pend.sum(axis=1) / np.maximum(offer.sum(axis=1), _TINY)
    bw = (
        cfg.read_bw * (1.0 - wr_frac) + cfg.write_bw * wr_frac
    ) * state.disk_bw_f[idx]
    collapse = cfg.collapse_coeff * np.maximum(
        k - cfg.collapse_threshold, 0.0
    )
    t_op = seek + cfg.rot_half + B / bw + collapse  # (e, S)

    # -- completions: capacity-, concurrency- or NIC-bound --------------
    x_rate = np.minimum(1.0 / t_op, k / (t_op + rtt[:, None]))
    net_ops = cfg.nic_bw * state.net_bw_f[idx][:, None] * dt / B
    offer_tot = offer.sum(axis=1)
    served = np.minimum(offer_tot, np.minimum(x_rate * dt, net_ops))
    ratio = (served / np.maximum(offer_tot, _TINY))[:, None, :]
    done_r = rd_pend * ratio
    done_w = wr_pend * ratio
    state.qr[idx] = rd_pend - done_r
    dirty = np.maximum(dirty - done_w * B, 0.0)
    state.dirty[idx] = dirty
    state.last_pt[idx] = t_op
    state.min_pt[idx] = np.minimum(state.min_pt[idx], t_op)

    # -- demand-loop latency (smoothed; uniform across clients) --------
    lat_new = rtt + (t_op * (1.0 + 0.5 * k)).mean(axis=1)
    state.lat[idx] = 0.5 * state.lat[idx] + 0.5 * lat_new[:, None]

    # -- the 11 PIs, in OSC_INDICATORS order ---------------------------
    read_bytes = done_r * B
    write_bytes = done_w * B
    raw = np.empty((E, C, S, 11))
    raw[..., 0] = W[:, None, None]
    raw[..., 1] = read_bytes / dt
    raw[..., 2] = write_bytes / dt
    raw[..., 3] = dirty
    raw[..., 4] = cfg.max_dirty
    ping = rtt[:, None] + (k * B) / (
        cfg.nic_bw * state.net_bw_f[idx][:, None]
    )
    raw[..., 5] = ping[:, None, :]
    raw[..., 6] = _ewma_update(state.ack, idx, done_r + done_w, dt)
    raw[..., 7] = _ewma_update(
        state.send, idx, done_r + done_w + admitted / B, dt
    )
    raw[..., 8] = np.where(
        np.isfinite(state.min_pt[idx]), t_op / state.min_pt[idx], 0.0
    )[:, None, :]
    raw[..., 9] = R[:, None, None]
    raw[..., 10] = osc_out

    frames = pack_osc_frames(raw).reshape(E, C * S * 11)
    rewards = (read_bytes + write_bytes).reshape(E, -1).sum(axis=1) / (
        dt * _REWARD_SCALE
    )
    return frames, rewards


def _ewma_update(
    store: np.ndarray, idx: np.ndarray, events: np.ndarray, dt: float
) -> np.ndarray:
    """Fold per-tick event gaps into an (E, C, S) EWMA state array.

    ``events`` is ops-per-tick per OSC; the observed inter-event gap is
    ``dt / events``.  Ticks with (fluidly) zero events leave the mean
    untouched; the first observed gap seeds the mean exactly, matching
    :class:`repro.util.ewma.EWMA` semantics (alpha = 0.125, the classic
    TCP RTT weight the reference OSCs use).  Returns the PI view (NaN —
    never sampled — reads as 0.0).
    """
    current = store[idx]
    active = events > 1e-6
    gap = dt / np.maximum(events, 1e-6)
    seeded = ~np.isnan(current)
    folded = np.where(seeded, current + 0.125 * (gap - current), gap)
    updated = np.where(active, folded, current)
    store[idx] = updated
    return np.where(np.isnan(updated), 0.0, updated)
