"""Struct-of-arrays fleet simulation backend (``"sim-lustre-vec"``).

The reference backend simulates one cluster as a discrete-event object
graph — a heap of ~6,000 events per tick.  That is the right tool for
*fidelity*, and the wrong one for *fleets*: BENCH_collect.json caps at
~45-70 ticks/s regardless of how the fleet is driven, because every
backend ultimately runs N independent event loops.

This package trades event-level fidelity for fleet-level throughput:
the state of N clusters lives in shared numpy arrays — one
``(n_envs, n_clients, n_servers)`` block per per-OSC quantity, ``(n_envs,)``
vectors for tick clocks, rewards and tunables — and one
:func:`~repro.sim.vec.physics.tick_all` call advances the entire fleet
with array ops.  The cluster model is a *tick-level fluid
approximation* of the same machinery (elevator-scheduled HDD service
with queue-collapse overhead, token-bucket rate limiting,
window-limited concurrency, write-back caching, NIC caps), emitting
the same 11-PI frame layout, scaling and clipping as
:mod:`repro.telemetry.indicators` and the same throughput reward.

Equivalence contract (what the golden tests pin):

- a fleet of N is byte-identical, env by env, to N independent
  ``FleetEnv(n_envs=1)`` runs built with the same derived seeds —
  observations, rewards and packed replay records, scenarios included;
- rollouts are byte-identical across interpreter invocations (pinned
  blake2b digests, like the reference scenario golden traces);
- chunked and per-tick stepping are byte-identical.

The vec backend is *not* event-for-event equal to the reference
simulator (a data-dependent event interleaving cannot be replayed as
array math); the two backends are separate models of the same cluster
that agree on interfaces, observation layout and qualitative response
surfaces.  docs/ARCHITECTURE.md § "Simulation backends" records where
each is authoritative.
"""

from repro.sim.vec.config import FleetConfig
from repro.sim.vec.fleet_env import FleetEnv, FleetSlot, make_fleet_env
from repro.sim.vec.state import FleetState

__all__ = [
    "FleetConfig",
    "FleetEnv",
    "FleetSlot",
    "FleetState",
    "make_fleet_env",
]
