"""FleetEnv: N simulated clusters behind one batched Environment.

One :class:`FleetEnv` owns the struct-of-arrays state of a whole fleet
(:class:`~repro.sim.vec.state.FleetState`) and advances it with
:func:`~repro.sim.vec.physics.tick_all`.  The batch surface mirrors
:class:`~repro.env.vector.VectorEnv` (``step`` takes one action per
env, ``run_chunk`` returns ``(n_envs, k)`` rewards); per-env access
goes through :class:`FleetSlot` — a scalar view implementing the
:class:`~repro.env.protocol.Environment` surface over one row of the
arrays, which is what lets ``VectorEnv(backend="vec")`` reuse all of
its generic worker plumbing (``env_method``, record fan-in, resets)
unchanged.

Action, record and observation semantics are the reference
environment's, row-vectorized: actions are checked/clamped then
attached to the record of the tick they were decided *after*; records
start at tick 1 and skip ticks dropped on the monitoring network;
observations are ``obs_ticks`` stacked frames padded backwards during
warm-up.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.actions import ActionEffect, ActionSpace, lustre_parameters
from repro.core.checker import ActionChecker
from repro.env.tuning_env import EnvConfig
from repro.replaydb.records import PackedRecords, TickRecord
from repro.replaydb.sampler import MinibatchSampler
from repro.scenarios.scenario import ScenarioRuntime
from repro.sim.vec.config import FleetConfig
from repro.sim.vec.physics import tick_all
from repro.sim.vec.state import FleetState, RecordView
from repro.telemetry.indicators import frame_width


class FleetEnv:
    """A fleet of N vectorized clusters stepped by one tick kernel."""

    def __init__(
        self,
        config: EnvConfig,
        n_envs: int = 1,
        seeds: Optional[Sequence[int]] = None,
    ):
        if n_envs < 1:
            raise ValueError(f"n_envs must be >= 1, got {n_envs}")
        self.config = config
        self.hp = config.hp
        self.fcfg = FleetConfig.from_env_config(config)
        params = config.parameters or lustre_parameters(
            window_default=config.cluster.max_rpcs_in_flight,
            rate_default=config.cluster.io_rate_limit,
        )
        self.action_space = ActionSpace(params)
        self.checker = ActionChecker()
        self.n_envs = int(n_envs)
        if seeds is None:
            # The VectorEnv contract: env i's seed depends only on
            # (base_seed, i), never on the fleet size.
            from repro.env.vector import vector_seeds

            seeds = vector_seeds(config.seed, self.n_envs)
        elif len(seeds) != self.n_envs:
            raise ValueError(
                f"got {len(seeds)} seeds for {self.n_envs} envs"
            )
        self.seeds = [int(s) for s in seeds]
        self._frame_dim = frame_width(config.cluster.n_servers) * int(
            config.cluster.n_clients
        )
        self.state: Optional[FleetState] = None
        self._runtimes: List[Optional[ScenarioRuntime]] = []
        self._slots = [FleetSlot(self, i) for i in range(self.n_envs)]
        self._slot_resets: set = set()
        self._all_idx = np.arange(self.n_envs)

    # -- dimensions ------------------------------------------------------
    @property
    def n_actions(self) -> int:
        """Size of the discrete action vocabulary."""
        return self.action_space.n_actions

    @property
    def frame_dim(self) -> int:
        """Width of one cluster-wide PI frame."""
        return self._frame_dim

    @property
    def obs_dim(self) -> int:
        """Flattened observation: S ticks × cluster frame width."""
        return self.fcfg.obs_ticks * self._frame_dim

    @property
    def is_started(self) -> bool:
        """Whether live fleet state exists (reset() has run)."""
        return self.state is not None

    def slot(self, i: int) -> "FleetSlot":
        """The scalar Environment view over fleet row ``i``."""
        return self._slots[i]

    # -- lifecycle -------------------------------------------------------
    def reset(self) -> np.ndarray:
        """Rebuild the whole fleet and warm one observation window.

        Returns the stacked ``(n_envs, obs_dim)`` observation.  Warm-up
        mirrors the reference: ``obs_ticks`` NULL ticks for every env,
        then a bounded grace loop advancing only envs whose every
        warm-up frame was dropped on the monitoring network.
        """
        self.state = FleetState(self.fcfg, self.seeds, self._frame_dim)
        self._slot_resets = set()
        self._runtimes = [None] * self.n_envs
        if self.config.scenario is not None:
            self._runtimes = [
                ScenarioRuntime(
                    self.config.scenario,
                    self._slots[e],
                    self.state.scenario_rngs[e],
                )
                for e in range(self.n_envs)
            ]
        warm = self.fcfg.obs_ticks
        for _ in range(warm):
            self._advance(self._all_idx)
        budget = max(50, 10 * warm)
        pending = self.state.rec_len == 0
        while budget > 0 and pending.any():
            self._advance(np.flatnonzero(pending))
            budget -= 1
            pending = self.state.rec_len == 0
        if pending.any():
            raise RuntimeError(
                "warm-up failed: no complete monitoring frame reached the "
                "Interface Daemon (drop_probability too high?)"
            )
        return self.current_observation()

    # -- snapshot support ------------------------------------------------
    def snapshot_state(self):
        """Capture the whole fleet's mutable state as ``(meta, arrays)``.

        Arrays are the :attr:`FleetState.MUTABLE_ARRAYS` manifest,
        copied; meta carries the RNG stream states (workload, drops,
        scenario roots, and every runtime's per-event streams), the
        scenario runtimes' logs/pending windows, and the slot-reset
        bookkeeping.  Everything else about a fleet is frozen config.
        """
        self._require_reset()
        st = self.state
        arrays = {
            name: getattr(st, name).copy() for name in st.MUTABLE_ARRAYS
        }
        meta = {
            "seeds": list(self.seeds),
            "n_envs": int(self.n_envs),
            "frame_dim": int(self._frame_dim),
            "has_scenario": self.config.scenario is not None,
            "wl_rngs": [g.bit_generator.state for g in st.wl_rngs],
            "drop_rngs": [g.bit_generator.state for g in st.drop_rngs],
            "scenario_rngs": [
                g.bit_generator.state for g in st.scenario_rngs
            ],
            "slot_resets": sorted(int(e) for e in self._slot_resets),
            "runtimes": [
                None if rt is None else rt.snapshot_state()
                for rt in self._runtimes
            ],
        }
        return meta, arrays

    def restore_state(self, meta, arrays) -> None:
        """Rebuild the fleet from a :meth:`snapshot_state` capture.

        Construction first, RNG overwrite last: building
        :class:`FleetState` and the scenario runtimes *draws* from the
        seed-derived streams (``derive_rng`` consumes parent state), so
        every stream — fleet-level and per-event — is overwritten with
        its captured state only after the object graph stands.
        """
        if list(meta["seeds"]) != list(self.seeds):
            raise RuntimeError(
                f"seed mismatch: snapshot has {meta['seeds']}, "
                f"fleet has {self.seeds}"
            )
        if int(meta["n_envs"]) != self.n_envs or (
            int(meta["frame_dim"]) != self._frame_dim
        ):
            raise RuntimeError(
                "fleet geometry mismatch between snapshot and live env"
            )
        if bool(meta["has_scenario"]) != (self.config.scenario is not None):
            raise RuntimeError(
                "scenario mismatch: snapshot and live env disagree on "
                "whether a scenario timeline is attached"
            )
        st = FleetState(self.fcfg, self.seeds, self._frame_dim)
        for name in st.MUTABLE_ARRAYS:
            setattr(st, name, np.array(arrays[name]))
        self.state = st
        self._slot_resets = set(int(e) for e in meta["slot_resets"])
        self._runtimes = [None] * self.n_envs
        if self.config.scenario is not None:
            self._runtimes = [
                ScenarioRuntime(
                    self.config.scenario,
                    self._slots[e],
                    st.scenario_rngs[e],
                )
                for e in range(self.n_envs)
            ]
        for gen, captured in zip(st.wl_rngs, meta["wl_rngs"]):
            gen.bit_generator.state = captured
        for gen, captured in zip(st.drop_rngs, meta["drop_rngs"]):
            gen.bit_generator.state = captured
        for gen, captured in zip(st.scenario_rngs, meta["scenario_rngs"]):
            gen.bit_generator.state = captured
        for rt, captured in zip(self._runtimes, meta["runtimes"]):
            if rt is not None and captured is not None:
                rt.restore_state(captured)

    def _require_reset(self) -> None:
        if self.state is None:
            raise RuntimeError("call reset() before stepping the environment")

    def _slot_reset(self, e: int) -> np.ndarray:
        """Slot ``e``'s reset: one fleet rebuild serves all N slots.

        The first slot reset (or a repeated reset of the same slot —
        a genuinely new episode) rebuilds and re-warms the whole fleet;
        the other slots' resets just hand back their rows, so N slot
        resets cost one fleet build, not N.
        """
        if self.state is None or e in self._slot_resets:
            self.reset()
        self._slot_resets.add(e)
        return self.state.observation(e)

    def _advance(self, idx: np.ndarray) -> np.ndarray:
        """One tick for envs ``idx`` (sorted); returns their rewards."""
        st = self.state
        st.tick[idx] += 1
        for e in idx:
            rt = self._runtimes[e]
            if rt is not None:
                rt.on_tick(int(st.tick[e]))
        frames, rewards = tick_all(st, idx)
        p = self.fcfg.drop_probability
        if p > 0.0:
            keep = np.ones(len(idx), dtype=bool)
            for j, e in enumerate(idx):
                # Per client, like the reference: a tick with any
                # client's message lost is dropped entirely.
                draws = st.drop_rngs[e].random(self.fcfg.n_clients)
                if (draws < p).any():
                    keep[j] = False
            kept = idx[keep]
            st.append_records(kept, frames[keep], rewards[keep])
            st.push_frames(kept, frames[keep])
        else:
            st.append_records(idx, frames, rewards)
            st.push_frames(idx, frames)
        return rewards

    # -- actions ---------------------------------------------------------
    def _get_param(self, e: int, name: str) -> float:
        st = self.state
        if name == "max_rpcs_in_flight":
            return float(st.window[e])
        if name == "io_rate_limit":
            return float(st.rate[e])
        raise KeyError(f"unknown parameter {name!r}")

    def _set_param(self, e: int, name: str, value: float) -> None:
        st = self.state
        # Mirrors ControlAgent's setters: the window is an integer knob.
        if name == "max_rpcs_in_flight":
            st.window[e] = int(round(value))
        elif name == "io_rate_limit":
            st.rate[e] = float(value)
        else:
            raise KeyError(f"unknown parameter {name!r}")

    def _perform_action(self, e: int, action: int) -> ActionEffect:
        """The Interface Daemon's check/broadcast/record path, row-wise."""
        st = self.state

        def get(name: str) -> float:
            return self._get_param(e, name)

        action = self.checker.filter(self.action_space, action, get)
        effect = self.action_space.propose(action, get)
        if not effect.is_null and effect.new_value != effect.old_value:
            self._set_param(e, effect.parameter, effect.new_value)
        st.set_action(e, int(st.tick[e]), action)
        return effect

    def _param_values(self, e: int) -> Dict[str, float]:
        return {
            p.name: self._get_param(e, p.name)
            for p in self.action_space.parameters
        }

    # -- batch stepping --------------------------------------------------
    def step(
        self, actions: Sequence[int], out: Optional[np.ndarray] = None
    ) -> tuple[np.ndarray, np.ndarray, List[dict]]:
        """One action per env; the whole fleet advances one tick.

        Returns ``(obs, rewards, infos)`` shaped ``(n_envs, obs_dim)`` /
        ``(n_envs,)`` / list of per-env info dicts.  ``out``, when
        given, receives the stacked observation in place.
        """
        self._require_reset()
        actions = np.asarray(actions)
        if actions.shape != (self.n_envs,):
            raise ValueError(
                f"expected {self.n_envs} actions, got shape {actions.shape}"
            )
        effects = [
            self._perform_action(e, int(actions[e]))
            for e in range(self.n_envs)
        ]
        rewards = self._advance(self._all_idx)
        obs = self.current_observation(out=out)
        infos = [
            {
                "tick": int(self.state.tick[e]),
                "effect": effects[e],
                "params": self._param_values(e),
                "reward": float(rewards[e]),
            }
            for e in range(self.n_envs)
        ]
        return obs, rewards, infos

    def run_chunk(
        self, k: int, action: Optional[int] = None
    ) -> np.ndarray:
        """Advance ``k`` ticks in one call; per-tick rewards ``(n_envs, k)``.

        ``action`` (when given) is performed on every env before every
        tick — the chunked form of k identical ``step`` calls, minus the
        observation builds.  ``k=0`` performs nothing and returns an
        empty block.
        """
        self._require_reset()
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        rewards = np.empty((self.n_envs, k))
        for j in range(k):
            if action is not None:
                for e in range(self.n_envs):
                    self._perform_action(e, int(action))
            rewards[:, j] = self._advance(self._all_idx)
        return rewards

    def run_ticks(self, n: int) -> np.ndarray:
        """Advance ``n`` ticks with no actions; rewards ``(n_envs, n)``."""
        return self.run_chunk(n)

    # -- observations and records ----------------------------------------
    def current_observation(
        self, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Stacked ``(n_envs, obs_dim)`` observation as of the last tick."""
        self._require_reset()
        if out is None:
            out = np.empty((self.n_envs, self.obs_dim))
        elif out.size != self.n_envs * self.obs_dim:
            raise ValueError(
                f"out buffer has {out.size} elements, expected "
                f"{self.n_envs} x {self.obs_dim}"
            )
        rows = out.reshape(self.n_envs, self.obs_dim)
        for e in range(self.n_envs):
            self.state.observation(e, out=rows[e])
        return out

    def records_since_packed(
        self, after_tick: int, env_index: int = 0
    ) -> PackedRecords:
        """Env ``env_index``'s records with ``tick > after_tick``, packed
        straight from the fleet arrays (no per-tick objects)."""
        self._require_reset()
        return self.state.packed_since(env_index, after_tick)

    def records_since(
        self, after_tick: int, env_index: int = 0
    ) -> List[TickRecord]:
        """Object form of :meth:`records_since_packed` (protocol parity)."""
        return self.records_since_packed(after_tick, env_index).to_records()

    # -- parameters and sampling -----------------------------------------
    def set_params(
        self, values: Dict[str, float], env_index: Optional[int] = None
    ) -> None:
        """Directly apply a parameter assignment (baselines, experiments).

        Applies to every env, or just ``env_index`` when given.
        """
        self._require_reset()
        known = {p.name for p in self.action_space.parameters}
        targets = (
            range(self.n_envs) if env_index is None else [env_index]
        )
        for name, value in values.items():
            if name not in known:
                raise KeyError(f"unknown tunable parameter {name!r}")
            for e in targets:
                self._set_param(e, name, value)

    def current_params(self, env_index: int = 0) -> Dict[str, float]:
        """The tunable parameters currently applied on one env."""
        self._require_reset()
        return self._param_values(env_index)

    def make_sampler(
        self, seed=None, env_index: int = 0
    ) -> MinibatchSampler:
        """Algorithm 1 sampler over one env's record columns (live view)."""
        self._require_reset()
        return MinibatchSampler(
            RecordView(self.state, env_index),
            obs_ticks=self.fcfg.obs_ticks,
            missing_tolerance=self.hp.missing_entry_tolerance,
            seed=seed,
        )

    def commit_replay(self) -> None:
        """No durable layer: fleet records live in the arrays only."""

    def close(self) -> None:
        """Drop the fleet state (arrays need no teardown)."""
        self.state = None


class FleetSlot:
    """One fleet row as a scalar :class:`Environment`.

    Everything a :class:`~repro.env.vector.VectorEnv` serial worker (or
    a scenario event) does to a single environment lands on row
    ``index`` of the shared arrays.  ``fleet_slot`` is the marker
    :class:`~repro.scenarios.scenario.ScenarioRuntime` dispatches on to
    use the events' vectorized application path.
    """

    fleet_slot = True

    def __init__(self, fleet: FleetEnv, index: int):
        self.fleet = fleet
        self.index = int(index)

    # -- metadata mirrors -------------------------------------------------
    @property
    def config(self) -> EnvConfig:
        """The fleet's shared environment configuration."""
        return self.fleet.config

    @property
    def hp(self):
        """The fleet's shared Table 1 hyperparameters."""
        return self.fleet.hp

    @property
    def action_space(self) -> ActionSpace:
        """The fleet's shared discrete action vocabulary."""
        return self.fleet.action_space

    @property
    def n_actions(self) -> int:
        """Size of the discrete action vocabulary."""
        return self.fleet.n_actions

    @property
    def frame_dim(self) -> int:
        """Width of one cluster-wide PI frame."""
        return self.fleet.frame_dim

    @property
    def obs_dim(self) -> int:
        """Flattened observation: S ticks x cluster frame width."""
        return self.fleet.obs_dim

    @property
    def is_started(self) -> bool:
        """Whether live fleet state exists (reset() has run)."""
        return self.fleet.is_started

    # -- lifecycle --------------------------------------------------------
    def reset(self) -> np.ndarray:
        """(Re)build the fleet if needed; return this row's observation."""
        return self.fleet._slot_reset(self.index)

    def step(
        self, action: int, out: Optional[np.ndarray] = None
    ) -> tuple[np.ndarray, float, dict]:
        """Perform ``action`` and advance *this env only* one tick.

        Out-of-lockstep by design: checkpoint measurements drive one
        cluster ahead of the fleet, exactly like a reference env behind
        ``VectorEnv.env_method``.
        """
        fleet = self.fleet
        fleet._require_reset()
        e = self.index
        effect = fleet._perform_action(e, action)
        reward = float(fleet._advance(np.array([e]))[0])
        obs = fleet.state.observation(e, out=out)
        info = {
            "tick": int(fleet.state.tick[e]),
            "effect": effect,
            "params": fleet._param_values(e),
            "reward": reward,
        }
        return obs, reward, info

    def run_chunk(self, k: int, action: Optional[int] = None) -> np.ndarray:
        """Advance this env ``k`` ticks; per-tick rewards, shape ``(k,)``."""
        fleet = self.fleet
        fleet._require_reset()
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        e = self.index
        idx = np.array([e])
        rewards = np.empty(k)
        for j in range(k):
            if action is not None:
                fleet._perform_action(e, int(action))
            rewards[j] = fleet._advance(idx)[0]
        return rewards

    def run_ticks(self, n: int) -> np.ndarray:
        """Advance ``n`` ticks with no actions; per-tick rewards."""
        return self.run_chunk(n)

    def current_observation(
        self, out: Optional[np.ndarray] = None
    ) -> Optional[np.ndarray]:
        """This env's stacked observation (None before any frame)."""
        self.fleet._require_reset()
        return self.fleet.state.observation(self.index, out=out)

    def records_since_packed(self, after_tick: int) -> PackedRecords:
        """This env's new records, packed straight from the arrays."""
        return self.fleet.records_since_packed(after_tick, self.index)

    def records_since(self, after_tick: int) -> List[TickRecord]:
        """Object form of :meth:`records_since_packed` (protocol parity)."""
        return self.fleet.records_since(after_tick, self.index)

    def set_params(self, values: Dict[str, float]) -> None:
        """Directly apply a parameter assignment on this env only."""
        self.fleet.set_params(values, env_index=self.index)

    def current_params(self) -> Dict[str, float]:
        """The tunable parameters currently applied on this env."""
        return self.fleet.current_params(self.index)

    def make_sampler(self, seed=None) -> MinibatchSampler:
        """Algorithm 1 sampler over this env's record columns."""
        return self.fleet.make_sampler(seed=seed, env_index=self.index)

    def commit_replay(self) -> None:
        """No durable layer on the vec backend."""

    def close(self) -> None:
        """Slots own no resources; the fleet's arrays outlive them."""


def make_fleet_env(
    config: Optional[EnvConfig] = None,
    scenario: Any = None,
    scenario_kwargs: Optional[Dict[str, Any]] = None,
    n_envs: int = 1,
    seeds: Optional[Sequence[int]] = None,
    **kwargs: Any,
) -> FleetEnv:
    """``"sim-lustre-vec"``: the vectorized fleet backend.

    Accepts the same configuration styles as ``"sim-lustre"`` —
    ``config=EnvConfig(...)`` or plain EnvConfig field kwargs, plus
    ``scenario=``/``scenario_kwargs=`` — and additionally ``n_envs``
    (fleet size) and ``seeds`` (explicit per-env seeds, defaulting to
    ``vector_seeds(seed, n_envs)``).
    """
    from dataclasses import replace

    from repro.env.registry import _default_workload, _resolve_scenario

    scen = _resolve_scenario(scenario, scenario_kwargs)
    if config is not None:
        if kwargs:
            raise ValueError(
                "pass either config=EnvConfig(...) or EnvConfig field "
                f"kwargs, not both (got extra {sorted(kwargs)})"
            )
        if scen is not None:
            if config.scenario is not None:
                raise ValueError(
                    f"config already carries scenario "
                    f"{config.scenario.name!r}; refusing to overwrite it "
                    f"with {scen.name!r} (compose them explicitly instead)"
                )
            config = replace(config, scenario=scen)
    else:
        if scen is not None:
            kwargs["scenario"] = scen
            kwargs.setdefault("workload_factory", _default_workload)
        config = EnvConfig(**kwargs)
    return FleetEnv(config, n_envs=n_envs, seeds=seeds)
