"""Struct-of-arrays state for a fleet of N simulated clusters.

Layout convention: leading axis is always the environment, so every
per-row computation is independent of the fleet size — the property the
golden tests pin (env ``i`` of a fleet of N is byte-identical to the
same env run alone).  Shapes: ``(E,)`` fleet scalars, ``(E, C)``
per-client, ``(E, S)`` per-server, ``(E, C, S)`` per-OSC (client ×
server connection — the unit the 11 telemetry PIs describe).

The replay record columns (ticks / frames / actions / rewards) live
here too, as growable per-env arrays: ``records_since_packed`` slices
them into a :class:`~repro.replaydb.records.PackedRecords` without ever
materialising per-tick objects, and :class:`RecordView` adapts them to
the :class:`~repro.replaydb.cache.ReplayCache` duck interface so
Algorithm 1's :class:`~repro.replaydb.sampler.MinibatchSampler` can
draw minibatches straight off the fleet arrays.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.replaydb.records import PackedRecords, TickRecord
from repro.sim.vec.config import FleetConfig
from repro.util.rng import derive_rng, ensure_rng

#: Initial per-env record capacity; doubles on demand.
_REC_CAP0 = 512


class FleetState:
    """All mutable per-env state, as shared numpy arrays."""

    def __init__(self, cfg: FleetConfig, seeds: List[int], frame_dim: int):
        E, C, S = len(seeds), cfg.n_clients, cfg.n_servers
        self.cfg = cfg
        self.seeds = list(int(s) for s in seeds)
        self.n_envs = E
        self.frame_dim = int(frame_dim)

        self.tick = np.zeros(E, dtype=np.int64)
        # Live tunables (the two CAPES knobs, uniform across clients).
        self.window = np.full(E, cfg.window0)
        self.rate = np.full(E, cfg.rate0)
        # Client-side: token buckets and write-back caches.
        self.tokens = np.full((E, C), cfg.rate_burst)
        self.dirty = np.zeros((E, C, S))
        # Outstanding synchronous reads per OSC (the write backlog is
        # the dirty cache itself — no separate write queue).
        self.qr = np.zeros((E, C, S))
        # Telemetry state.  EWMAs seed on first sample (NaN = unseeded,
        # read as 0.0 — the reference EWMA's neutral pre-sample value).
        self.ack = np.full((E, C, S), np.nan)
        self.send = np.full((E, C, S), np.nan)
        t0 = _nominal_service_time(cfg)
        self.last_pt = np.full((E, S), t0)
        self.min_pt = np.full((E, S), np.inf)
        # Per-client closed-loop latency estimate driving next-tick
        # demand (sync reads wait for it; T_ADMIN bounds writers).
        self.lat = np.full((E, C), 2.0 * cfg.net_lat + t0)
        # Workload population.
        self.inst_base = np.full((E, C), cfg.inst_per_client)
        self.surge = np.zeros((E, C))
        self.paused = np.zeros((E, C), dtype=bool)
        self.rf = np.full(E, cfg.read_fraction)
        self.think = np.full(E, cfg.think_time)
        # Scenario factor arrays (multiplicative; events stack/unstack
        # by inverse scaling, mirroring the reference event semantics).
        self.disk_bw_f = np.ones((E, S))
        self.disk_seek_f = np.ones((E, S))
        self.net_bw_f = np.ones(E)
        self.net_lat_f = np.ones(E)

        # Observation ring, kept pre-stacked: (E, obs_ticks, F) with the
        # newest frame last.  Warm-up padding (repeat the earliest
        # stored frame backwards) falls out of initialising every slot
        # with the first frame — see ``push_frames``.
        self.obs3 = np.zeros((E, cfg.obs_ticks, frame_dim))
        self.obs_count = np.zeros(E, dtype=np.int64)

        # Replay record columns (growable along axis 1).
        self.rec_len = np.zeros(E, dtype=np.int64)
        self.rec_ticks = np.zeros((E, _REC_CAP0), dtype=np.int64)
        self.rec_frames = np.zeros((E, _REC_CAP0, frame_dim))
        self.rec_actions = np.full((E, _REC_CAP0), -1, dtype=np.int64)
        self.rec_rewards = np.zeros((E, _REC_CAP0))

        # Per-env private streams, derived from the env seed alone so
        # stream i never depends on the fleet size.
        self.wl_rngs: List[np.random.Generator] = []
        self.drop_rngs: List[np.random.Generator] = []
        self.scenario_rngs: List[np.random.Generator] = []
        for s in self.seeds:
            root = ensure_rng(int(s))
            self.wl_rngs.append(derive_rng(root, "vec-workload"))
            self.drop_rngs.append(derive_rng(root, "vec-drops"))
            self.scenario_rngs.append(derive_rng(root, "scenario"))

    #: Every mutable array attribute, the snapshot capture manifest.
    #: Restoring assigns captured arrays wholesale (rather than copying
    #: into a fresh state's buffers) so grown record columns keep their
    #: grown capacity.  Keep in sync with ``__init__``.
    MUTABLE_ARRAYS = (
        "tick", "window", "rate", "tokens", "dirty", "qr", "ack", "send",
        "last_pt", "min_pt", "lat", "inst_base", "surge", "paused",
        "rf", "think", "disk_bw_f", "disk_seek_f", "net_bw_f", "net_lat_f",
        "obs3", "obs_count",
        "rec_len", "rec_ticks", "rec_frames", "rec_actions", "rec_rewards",
    )

    # -- record columns ---------------------------------------------------
    def _grow_records(self) -> None:
        cap = self.rec_ticks.shape[1]
        self.rec_ticks = np.concatenate(
            [self.rec_ticks, np.zeros_like(self.rec_ticks)], axis=1
        )
        self.rec_frames = np.concatenate(
            [self.rec_frames, np.zeros_like(self.rec_frames)], axis=1
        )
        self.rec_actions = np.concatenate(
            [self.rec_actions, np.full_like(self.rec_actions, -1)], axis=1
        )
        self.rec_rewards = np.concatenate(
            [self.rec_rewards, np.zeros_like(self.rec_rewards)], axis=1
        )
        assert self.rec_ticks.shape[1] == 2 * cap

    def append_records(
        self, idx: np.ndarray, frames: np.ndarray, rewards: np.ndarray
    ) -> None:
        """Store tick records for envs ``idx`` (action -1 until set).

        ``frames`` is ``(len(idx), F)`` — the rows for those envs'
        current ticks — and ``rewards`` the matching objective values.
        """
        if len(idx) == 0:
            return
        while int(self.rec_len[idx].max()) >= self.rec_ticks.shape[1]:
            self._grow_records()
        rows = self.rec_len[idx]
        self.rec_ticks[idx, rows] = self.tick[idx]
        self.rec_frames[idx, rows] = frames
        self.rec_actions[idx, rows] = -1
        self.rec_rewards[idx, rows] = rewards
        self.rec_len[idx] = rows + 1

    def set_action(self, e: int, tick: int, action: int) -> bool:
        """Record ``action`` on env ``e``'s record for ``tick`` if stored.

        Actions attach to the record of the tick they were decided
        *after* (the reference daemon's ``put_action`` semantics); a
        tick dropped on the monitoring network has no record to carry
        one, exactly as in the reference path.
        """
        n = int(self.rec_len[e])
        if n == 0 or int(self.rec_ticks[e, n - 1]) != int(tick):
            return False
        self.rec_actions[e, n - 1] = int(action)
        return True

    def packed_since(self, e: int, after_tick: int) -> PackedRecords:
        """Env ``e``'s records with ``tick > after_tick`` as one block."""
        n = int(self.rec_len[e])
        ticks = self.rec_ticks[e, :n]
        lo = int(np.searchsorted(ticks, after_tick, side="right"))
        return PackedRecords(
            ticks=ticks[lo:].copy(),
            frames=self.rec_frames[e, lo:n].copy(),
            actions=self.rec_actions[e, lo:n].copy(),
            rewards=self.rec_rewards[e, lo:n].copy(),
        )

    # -- observation ring --------------------------------------------------
    def push_frames(self, idx: np.ndarray, frames: np.ndarray) -> None:
        """Shift envs ``idx``'s observation stacks and append ``frames``.

        A first-ever frame fills the whole stack, which makes the
        stacked observation equal to "repeat the earliest frame
        backwards" at every later fill level — the daemon's warm-up
        padding, without a pad branch on the hot path.
        """
        if len(idx) == 0:
            return
        fresh = idx[self.obs_count[idx] == 0]
        seen = idx[self.obs_count[idx] > 0]
        if len(seen):
            self.obs3[seen, :-1] = self.obs3[seen, 1:]
            pos = np.searchsorted(idx, seen)
            self.obs3[seen, -1] = frames[pos]
        if len(fresh):
            pos = np.searchsorted(idx, fresh)
            self.obs3[fresh] = frames[pos][:, None, :]
        self.obs_count[idx] += 1

    def observation(self, e: int, out: Optional[np.ndarray] = None):
        """Env ``e``'s stacked observation, or None before any frame."""
        if self.obs_count[e] == 0:
            return None
        size = self.cfg.obs_ticks * self.frame_dim
        if out is None:
            out = np.empty(size)
        elif out.size != size:
            raise ValueError(
                f"out buffer has {out.size} elements, expected {size}"
            )
        elif not out.flags["C_CONTIGUOUS"] or out.dtype != np.float64:
            raise ValueError("out buffer must be a C-contiguous float64 array")
        out.reshape(self.cfg.obs_ticks, self.frame_dim)[:] = self.obs3[e]
        return out


def _nominal_service_time(cfg: FleetConfig) -> float:
    """Cold-start per-op service estimate (seeds the latency closure)."""
    mid_seek = 0.5 * (cfg.min_seek + cfg.max_seek)
    xfer = cfg.io_size / min(cfg.read_bw, cfg.write_bw)
    return mid_seek + cfg.rot_half + xfer


class RecordView:
    """One env's record columns behind the ReplayCache duck interface.

    A *live* view — :class:`~repro.replaydb.sampler.MinibatchSampler`
    built over it sees records appended after construction, matching
    the semantics of sampling a reference env's replay cache.
    """

    def __init__(self, state: FleetState, e: int):
        self._state = state
        self._e = int(e)

    @property
    def frame_width(self) -> int:
        return self._state.frame_dim

    def _n(self) -> int:
        return int(self._state.rec_len[self._e])

    @property
    def min_tick(self) -> Optional[int]:
        n = self._n()
        return int(self._state.rec_ticks[self._e, 0]) if n else None

    @property
    def max_tick(self) -> Optional[int]:
        n = self._n()
        return int(self._state.rec_ticks[self._e, n - 1]) if n else None

    def __len__(self) -> int:
        return self._n()

    def _row(self, tick: int) -> Optional[int]:
        n = self._n()
        ticks = self._state.rec_ticks[self._e, :n]
        i = int(np.searchsorted(ticks, tick))
        if i < n and int(ticks[i]) == int(tick):
            return i
        return None

    def has(self, tick: int) -> bool:
        return self._row(tick) is not None

    def get(self, tick: int) -> TickRecord:
        i = self._row(tick)
        if i is None:
            raise KeyError(f"tick {tick} not in records")
        st, e = self._state, self._e
        return TickRecord(
            tick=int(tick),
            frame=st.rec_frames[e, i].copy(),
            action=int(st.rec_actions[e, i]),
            reward=float(st.rec_rewards[e, i]),
        )

    def window(self, first_tick: int, n_ticks: int):
        if n_ticks <= 0:
            raise ValueError(f"n_ticks must be > 0, got {n_ticks}")
        frames = np.zeros((n_ticks, self.frame_width))
        valid = np.zeros(n_ticks, dtype=bool)
        for j, tick in enumerate(range(first_tick, first_tick + n_ticks)):
            i = self._row(tick)
            if i is not None:
                frames[j] = self._state.rec_frames[self._e, i]
                valid[j] = True
        return frames, valid
