"""Scalar model constants for the vectorized fleet engine.

:class:`FleetConfig` is the flattened, array-friendly form of an
:class:`~repro.env.tuning_env.EnvConfig`: every quantity the
:func:`~repro.sim.vec.physics.tick_all` kernel needs, as plain floats,
extracted once at construction.  The workload contribution is a
*profile* — the vec engine models a fixed-ratio random-I/O mix, so it
reads the mix knobs (``read_fraction``, ``io_size``, ``think_time``,
``instances_per_client``) off one throwaway workload instance built by
the config's factory and discards the object graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.env.tuning_env import EnvConfig
from repro.sim.engine import Simulator
from repro.telemetry.reward import ThroughputObjective
from repro.util.units import KiB

#: Client-side fixed overhead per operation (request build, cache
#: admission), seconds.  Bounds the issue rate of think_time=0 writers
#: the way the reference simulator's per-op bookkeeping events do.
T_ADMIN = 3e-4

#: Log-normal demand jitter: per-client per-tick issue-rate multiplier
#: is ``exp(sigma * z)``, ``z`` standard normal from the env's private
#: workload stream.  Stands in for the op-level randomness (offsets,
#: read/write draws) the fluid model integrates out.
DEMAND_SIGMA = 0.15


@dataclass(frozen=True)
class FleetConfig:
    """Everything :func:`tick_all` needs, as scalars (one fleet-wide set)."""

    n_servers: int
    n_clients: int
    tick_length: float
    obs_ticks: int
    # Tunable defaults (per-env live values are state, not config).
    window0: float
    rate0: float
    rate_burst: float
    max_dirty: float
    # Server service model.
    batch_max: float
    collapse_threshold: float
    collapse_coeff: float  # seconds per queued op beyond the threshold
    read_bw: float  # bytes/s media rate
    write_bw: float
    min_seek: float  # seconds
    max_seek: float
    rot_half: float  # rotational latency (half a revolution), seconds
    # Fabric.
    nic_bw: float  # bytes/s per NIC
    net_lat: float  # one-way propagation latency, seconds
    # Workload profile.
    io_size: float
    read_fraction: float
    think_time: float
    inst_per_client: float
    # Telemetry.
    drop_probability: float

    @classmethod
    def from_env_config(cls, cfg: EnvConfig) -> "FleetConfig":
        """Flatten an :class:`EnvConfig` into kernel constants.

        Raises for EnvConfig features the fluid model does not carry
        (server PIs, time features, Poisson noise, non-throughput
        objectives) rather than silently dropping them.
        """
        if cfg.include_server_pis or cfg.include_time_features:
            raise NotImplementedError(
                "the vec backend emits the 11 client-side PIs only; "
                "include_server_pis/include_time_features need the "
                "reference backend"
            )
        if cfg.enable_noise:
            raise NotImplementedError(
                "enable_noise is a reference-backend feature; use a "
                "NetworkCongestionWindow scenario on the vec backend"
            )
        if cfg.objective_factory is not ThroughputObjective:
            raise NotImplementedError(
                "the vec backend computes the throughput objective in "
                "its tick kernel; other objectives need the reference "
                "backend"
            )
        if cfg.workload_factory is None:
            raise ValueError("EnvConfig.workload_factory is required")
        cluster_cfg = cfg.cluster
        disk = cluster_cfg.make_disk()
        profile = _workload_profile(cfg)
        return cls(
            n_servers=int(cluster_cfg.n_servers),
            n_clients=int(cluster_cfg.n_clients),
            tick_length=float(cfg.hp.sampling_tick_length),
            obs_ticks=int(cfg.hp.sampling_ticks_per_observation),
            window0=float(cluster_cfg.max_rpcs_in_flight),
            rate0=float(cluster_cfg.io_rate_limit),
            rate_burst=float(cluster_cfg.rate_burst),
            max_dirty=float(cluster_cfg.max_dirty_bytes),
            batch_max=float(cluster_cfg.batch_max),
            collapse_threshold=float(cluster_cfg.collapse_threshold),
            collapse_coeff=float(cluster_cfg.collapse_coeff_ms) / 1e3,
            read_bw=float(disk.read_bw),
            write_bw=float(disk.write_bw),
            min_seek=float(getattr(disk, "min_seek", 0.0)),
            max_seek=float(getattr(disk, "max_seek", 0.0)),
            rot_half=float(getattr(disk, "rot_latency", 0.0)),
            nic_bw=float(cluster_cfg.nic_mbps) * 1024 * 1024,
            net_lat=float(cluster_cfg.net_latency_s),
            io_size=float(profile["io_size"]),
            read_fraction=float(profile["read_fraction"]),
            think_time=float(profile["think_time"]),
            inst_per_client=float(profile["instances_per_client"]),
            drop_probability=float(cfg.drop_probability),
        )


def _workload_profile(cfg: EnvConfig) -> dict:
    """Mix knobs read off one throwaway workload instance.

    The factory is called against a minimal unstarted cluster (no
    instances spawned, no events run) purely to introspect its knobs;
    workloads without a knob fall back to the random_rw defaults, so
    structured workloads still run — as their nearest fixed-mix
    approximation.
    """
    from repro.cluster.cluster import Cluster

    cluster = Cluster(Simulator(), cfg.cluster)
    workload = cfg.workload_factory(cluster, 0)
    return {
        "read_fraction": getattr(workload, "read_fraction", 0.1),
        "io_size": getattr(workload, "io_size", 32 * KiB),
        "think_time": getattr(workload, "think_time", 0.0),
        "instances_per_client": getattr(workload, "instances_per_client", 5),
    }
