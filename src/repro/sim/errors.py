"""Exception types raised by the simulation engine."""

from __future__ import annotations


class SimulationError(RuntimeError):
    """Generic engine failure (scheduling into the past, re-triggering an
    already-fired event, deadlock detection, ...)."""


class Interrupted(Exception):
    """Thrown into a process that another process interrupted.

    Carries the ``cause`` the interrupter supplied, mirroring SimPy's
    ``Interrupt``.  Cluster code uses this for cancelling in-flight RPCs
    when a client is reconfigured mid-request.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause
