"""Event heap and simulator loop.

The engine follows the classic discrete-event pattern: a priority queue
of ``(time, sequence, callback)`` entries drained in time order.  Two
design points matter for the reproduction:

- **Determinism.**  Ties in time are broken by a monotonically increasing
  sequence number, so two runs with the same seeds replay identically.
  (Reproducible runs are what make the Pilot-style statistics in
  :mod:`repro.stats` meaningful.)
- **Cheap hot path.**  ``heapq`` on plain tuples, no per-event object
  allocation beyond the :class:`Event` itself; the cluster model pushes
  hundreds of thousands of events per simulated hour.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.sim.errors import SimulationError

# An event that has not fired yet.
PENDING = object()


class Event:
    """A one-shot occurrence processes can wait on.

    An event starts *pending*; exactly once it is either succeeded with a
    value or failed with an exception.  Callbacks registered before the
    trigger run when the simulator reaches the trigger time; callbacks
    registered after it has been processed run immediately.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._processed = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Mark the event successful and schedule its callbacks."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self._ok = True
        self.sim._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Mark the event failed; waiting processes will see ``exc`` raised."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self._value = exc
        self._ok = False
        self.sim._schedule(self, delay)
        return self

    # -- callbacks -----------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self._processed:
            fn(self)
        else:
            assert self.callbacks is not None
            self.callbacks.append(fn)

    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for fn in callbacks:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending" if not self.triggered else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6g}>"


class Timeout(Event):
    """Event that fires ``delay`` simulated seconds after creation.

    May be constructed unbound (``Timeout(3.0)``) inside process code and
    yielded; the driving :class:`~repro.sim.process.Process` binds it to
    its simulator.  This keeps workload generator code free of explicit
    simulator plumbing.
    """

    __slots__ = ("delay", "_pending_value")

    def __init__(self, delay: float, value: Any = None, sim: Optional["Simulator"] = None):
        if delay < 0:
            raise SimulationError(f"negative Timeout delay: {delay}")
        self.delay = float(delay)
        if sim is not None:
            super().__init__(sim)
            self._value = value
            self._ok = True
            sim._schedule(self, self.delay)
        else:
            # Unbound: Process._bind() completes initialisation.
            self.sim = None  # type: ignore[assignment]
            self.callbacks = []
            self._value = PENDING
            self._ok = None
            self._processed = False
            self._pending_value = value

    def _bind(self, sim: "Simulator") -> None:
        if self.sim is not None:
            return
        self.sim = sim
        self._value = getattr(self, "_pending_value", None)
        self._ok = True
        sim._schedule(self, self.delay)


class Simulator:
    """Discrete-event simulator: an event heap plus the current time."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._event_count = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events processed so far (for engine benchmarks)."""
        return self._event_count

    # -- construction helpers ------------------------------------------
    def event(self) -> Event:
        """Create a new pending event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a timeout that fires ``delay`` seconds from now."""
        return Timeout(delay, value=value, sim=self)

    def spawn(self, gen: Generator, name: Optional[str] = None) -> "Process":
        """Run generator ``gen`` as a simulation process."""
        from repro.sim.process import Process

        return Process(self, gen, name=name)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))
        self._seq += 1

    def call_at(self, t: float, fn: Callable[[], None]) -> Event:
        """Invoke ``fn()`` at absolute time ``t`` (>= now)."""
        if t < self._now:
            raise SimulationError(f"call_at({t}) is in the past (now={self._now})")
        ev = self.timeout(t - self._now)
        ev.add_callback(lambda _e: fn())
        return ev

    # -- main loop -------------------------------------------------------
    def step(self) -> None:
        """Process the single next event."""
        if not self._heap:
            raise SimulationError("step() on empty event queue")
        t, _seq, event = heapq.heappop(self._heap)
        self._now = t
        self._event_count += 1
        event._run_callbacks()

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the queue is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[float] = None) -> None:
        """Drain events; stop at time ``until`` (exclusive of later events).

        With ``until=None``, runs until the queue empties.  When a bound
        is given the clock is advanced exactly to it, so back-to-back
        ``run(until=...)`` calls tile time seamlessly.
        """
        if until is None:
            while self._heap:
                self.step()
            return
        if until < self._now:
            raise SimulationError(f"run(until={until}) is in the past (now={self._now})")
        while self._heap and self._heap[0][0] <= until:
            self.step()
        self._now = float(until)
