"""Discrete-event simulation core.

A small, deterministic, coroutine-style discrete-event engine in the
spirit of SimPy, built from scratch because the reproduction may not use
third-party simulation packages.  The Lustre-like cluster model
(:mod:`repro.cluster`) and the workload generators
(:mod:`repro.workloads`) are written as processes on top of this engine.

Quick tour::

    from repro.sim import Simulator, Timeout

    sim = Simulator()

    def hello(sim):
        yield Timeout(1.0)
        print("one simulated second elapsed at", sim.now)

    sim.spawn(hello(sim))
    sim.run(until=10.0)
"""

from repro.sim.engine import Event, Simulator, Timeout
from repro.sim.errors import Interrupted, SimulationError
from repro.sim.process import AllOf, AnyOf, Process
from repro.sim.resources import Resource, Store, TokenBucket

__all__ = [
    "Event",
    "Simulator",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Resource",
    "Store",
    "TokenBucket",
    "SimulationError",
    "Interrupted",
]
