"""Shared resources for simulation processes.

Three primitives cover everything the cluster model needs:

- :class:`Resource` — counting semaphore with a FIFO wait queue and a
  **runtime-adjustable capacity**.  The Lustre congestion window
  (``max_rpcs_in_flight``) is exactly this: CAPES actions resize the
  window while requests are in flight; shrinking takes effect lazily as
  holders release.
- :class:`Store` — unbounded FIFO of items with blocking ``get``; used
  for server request queues.
- :class:`TokenBucket` — classic token-bucket rate limiter; the paper's
  second tunable ("I/O rate limit: how many outgoing I/O requests are
  allowed per second") is a token bucket whose refill rate CAPES tunes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple

from repro.sim.engine import Event, Simulator
from repro.sim.errors import SimulationError
from repro.util.validation import check_positive


class Resource:
    """FIFO counting semaphore with adjustable capacity."""

    def __init__(self, sim: Simulator, capacity: int):
        check_positive("capacity", capacity)
        self.sim = sim
        self._capacity = int(capacity)
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def in_use(self) -> int:
        """Number of currently held slots (may exceed capacity transiently
        right after a capacity decrease)."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of processes waiting for a slot."""
        return len(self._waiters)

    def set_capacity(self, capacity: int) -> None:
        """Resize at runtime.  Growth wakes waiters immediately; shrink
        never revokes held slots — it back-pressures future acquires."""
        check_positive("capacity", capacity)
        self._capacity = int(capacity)
        self._wake_waiters()

    def acquire(self) -> Event:
        """Request one slot; yield the returned event to wait for it."""
        ev = self.sim.event()
        if self._in_use < self._capacity and not self._waiters:
            self._in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return one slot and hand it to the oldest waiter if any fits."""
        if self._in_use <= 0:
            raise SimulationError("release() without matching acquire()")
        self._in_use -= 1
        self._wake_waiters()

    def _wake_waiters(self) -> None:
        while self._waiters and self._in_use < self._capacity:
            ev = self._waiters.popleft()
            self._in_use += 1
            ev.succeed()


class Store:
    """Unbounded FIFO store with blocking get.

    ``put`` never blocks (server request queues in the cluster model are
    bounded by the clients' congestion windows, not by the store).
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Yield the returned event to receive the oldest item."""
        ev = self.sim.event()
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def peek_all(self) -> Tuple[Any, ...]:
        """Snapshot of queued items, oldest first (for scheduler merging)."""
        return tuple(self._items)

    def drain(self) -> Tuple[Any, ...]:
        """Remove and return all queued items at once."""
        items = tuple(self._items)
        self._items.clear()
        return items


class TokenBucket:
    """Token-bucket rate limiter with runtime-adjustable rate.

    Tokens accrue continuously at ``rate`` per second up to ``capacity``.
    ``acquire(n)`` blocks the calling process until ``n`` tokens are
    available, serving waiters FIFO so a large request cannot be starved
    by a stream of small ones.
    """

    def __init__(
        self,
        sim: Simulator,
        rate: float,
        capacity: Optional[float] = None,
    ):
        check_positive("rate", rate)
        self.sim = sim
        self._rate = float(rate)
        self.capacity = float(capacity) if capacity is not None else float(rate)
        check_positive("capacity", self.capacity)
        self._tokens = self.capacity  # start full: first burst is free
        self._last_refill = sim.now
        self._waiters: Deque[Tuple[float, Event]] = deque()
        self._pump_scheduled = False
        # Invalidates in-flight wake-ups when the rate changes.
        self._generation = 0

    @property
    def rate(self) -> float:
        return self._rate

    @property
    def tokens(self) -> float:
        """Tokens currently available (after a virtual refill to now)."""
        self._refill()
        return self._tokens

    def set_rate(self, rate: float) -> None:
        """Change the refill rate; pending waiters are re-timed."""
        check_positive("rate", rate)
        self._refill()
        self._rate = float(rate)
        # Cancel any wake scheduled under the old rate and re-plan.
        self._generation += 1
        self._pump_scheduled = False
        self._pump()

    def acquire(self, n: float = 1.0) -> Event:
        """Take ``n`` tokens, waiting for refill if necessary."""
        if n <= 0:
            raise ValueError(f"token count must be > 0, got {n}")
        if n > self.capacity:
            raise ValueError(
                f"cannot acquire {n} tokens from a bucket of capacity "
                f"{self.capacity}"
            )
        ev = self.sim.event()
        self._refill()
        if not self._waiters and self._tokens >= n:
            self._tokens -= n
            ev.succeed()
        else:
            self._waiters.append((float(n), ev))
            self._pump()
        return ev

    # -- internals -------------------------------------------------------
    def _refill(self) -> None:
        now = self.sim.now
        dt = now - self._last_refill
        if dt > 0:
            self._tokens = min(self.capacity, self._tokens + dt * self._rate)
            self._last_refill = now

    #: Slack absorbing float rounding in refill arithmetic; without it a
    #: waiter can starve on an infinite sequence of ~1e-16 wake-ups.
    _EPS = 1e-9

    def _pump(self) -> None:
        """Serve whoever fits now; schedule a wake-up for the head waiter."""
        self._refill()
        while self._waiters and self._tokens + self._EPS >= self._waiters[0][0]:
            n, ev = self._waiters.popleft()
            self._tokens = max(0.0, self._tokens - n)
            ev.succeed()
        if self._waiters and not self._pump_scheduled:
            need = self._waiters[0][0] - self._tokens
            delay = max(need / self._rate, self._EPS)
            self._pump_scheduled = True
            gen = self._generation

            def wake(_ev: Event) -> None:
                if gen != self._generation:
                    return  # superseded by a set_rate re-plan
                self._pump_scheduled = False
                self._pump()

            self.sim.timeout(delay).add_callback(wake)
