"""Generator-driven simulation processes and event combinators.

A :class:`Process` drives a Python generator: each ``yield`` hands back an
:class:`~repro.sim.engine.Event` (or an unbound
:class:`~repro.sim.engine.Timeout`) to wait on; when the event fires the
generator resumes with the event's value, or the event's exception is
thrown into it.  A process is itself an event that fires when the
generator returns, so processes can wait on each other.

:class:`AllOf` / :class:`AnyOf` provide barrier and race composition, used
by the cluster model to fan RPCs out across stripes and wait for
completion.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, List, Optional

from repro.sim.engine import Event, Simulator, Timeout
from repro.sim.errors import Interrupted, SimulationError


class Process(Event):
    """Event wrapper that executes a generator as a simulation process."""

    __slots__ = ("gen", "name", "_waiting_on")

    def __init__(self, sim: Simulator, gen: Generator, name: Optional[str] = None):
        super().__init__(sim)
        if not hasattr(gen, "send"):
            raise TypeError(
                f"Process needs a generator (did you forget to call the "
                f"process function?), got {gen!r}"
            )
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick off on the next event-loop iteration at the current time.
        start = sim.timeout(0.0)
        start.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at the current time.

        A process cannot interrupt itself, and interrupting a finished
        process is an error (matching SimPy semantics).
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        wake = self.sim.timeout(0.0)
        exc = Interrupted(cause)

        def deliver(_ev: Event) -> None:
            if self.triggered:  # finished in the meantime
                return
            self._step(exc, throw=True)

        wake.add_callback(deliver)

    # -- generator driving ----------------------------------------------
    def _resume(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self._step(event.value, throw=False)
        else:
            self._step(event.value, throw=True)

    def _step(self, value: Any, *, throw: bool) -> None:
        self._waiting_on = None
        try:
            if throw:
                target = self.gen.throw(value)
            else:
                target = self.gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            # Propagate process crashes to waiters; if nobody is waiting,
            # failing the event still records it and run() keeps going —
            # re-raise instead so bugs never pass silently.
            if self.callbacks:
                self.fail(exc)
                return
            raise
        # Bind unbound timeouts created inside process code.
        if isinstance(target, Timeout) and target.sim is None:
            target._bind(self.sim)
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                f"yield Event/Timeout/Process instances"
            )
        self._waiting_on = target
        target.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.is_alive else "done"
        return f"<Process {self.name!r} {state}>"


class AllOf(Event):
    """Fires when *all* child events have fired successfully.

    Value is the list of child values in construction order.  Fails as
    soon as any child fails (first failure wins).
    """

    __slots__ = ("_remaining", "_values", "_failed")

    def __init__(self, sim: Simulator, events: Iterable[Event]):
        super().__init__(sim)
        events = list(events)
        self._values: List[Any] = [None] * len(events)
        self._remaining = len(events)
        self._failed = False
        if not events:
            self.succeed([])
            return
        for i, ev in enumerate(events):
            if isinstance(ev, Timeout) and ev.sim is None:
                ev._bind(sim)
            ev.add_callback(self._make_cb(i))

    def _make_cb(self, index: int):
        def cb(ev: Event) -> None:
            if self._failed or self.triggered:
                return
            if not ev.ok:
                self._failed = True
                self.fail(ev.value)
                return
            self._values[index] = ev.value
            self._remaining -= 1
            if self._remaining == 0:
                self.succeed(list(self._values))

        return cb


class AnyOf(Event):
    """Fires when the *first* child event fires (success or failure).

    Value is ``(index, value)`` of the winning child.  A failing child
    fails the combinator.
    """

    __slots__ = ("_done",)

    def __init__(self, sim: Simulator, events: Iterable[Event]):
        super().__init__(sim)
        events = list(events)
        self._done = False
        if not events:
            raise SimulationError("AnyOf of zero events would never fire")
        for i, ev in enumerate(events):
            if isinstance(ev, Timeout) and ev.sim is None:
                ev._bind(sim)
            ev.add_callback(self._make_cb(i))

    def _make_cb(self, index: int):
        def cb(ev: Event) -> None:
            if self._done:
                return
            self._done = True
            if ev.ok:
                self.succeed((index, ev.value))
            else:
                self.fail(ev.value)

        return cb
