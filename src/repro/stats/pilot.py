"""The Pilot analysis pipeline: i.i.d. validation then Student-t CIs.

Appendix B.2: throughput is sampled every second; the autocorrelation
of the samples is checked, and if its magnitude exceeds 0.1, adjacent
samples are merged by averaging ("subsession analysis") until it drops
below the threshold; only then is the confidence interval computed via
the Student's t-distribution.  Warm-up/cool-down trimming happens
before any of this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import stats as sps

from repro.stats.changepoint import trim_warmup_cooldown
from repro.util.validation import check_in_range

#: Pilot's default autocorrelation acceptance threshold.
AUTOCORR_THRESHOLD = 0.1


def autocorrelation(x: np.ndarray, lag: int = 1) -> float:
    """Lag-``lag`` sample autocorrelation; 0.0 for degenerate input."""
    x = np.asarray(x, dtype=np.float64)
    if lag <= 0:
        raise ValueError(f"lag must be > 0, got {lag}")
    n = x.size
    if n <= lag + 1:
        return 0.0
    x0 = x - x.mean()
    denom = float(np.dot(x0, x0))
    if denom == 0.0:
        return 0.0
    return float(np.dot(x0[:-lag], x0[lag:]) / denom)


def subsession_merge(
    x: np.ndarray,
    threshold: float = AUTOCORR_THRESHOLD,
    min_samples: int = 4,
) -> tuple[np.ndarray, int]:
    """Merge adjacent samples until |autocorrelation| <= threshold.

    Each round halves the series by averaging non-overlapping pairs.
    Returns ``(merged, rounds)``.  Stops early rather than dropping
    below ``min_samples`` — a CI from two points is worse than a
    slightly correlated CI, and Pilot warns rather than diverges here.
    """
    check_in_range("threshold", threshold, 0.0, 1.0, low_inclusive=False)
    x = np.asarray(x, dtype=np.float64)
    rounds = 0
    while abs(autocorrelation(x)) > threshold and x.size // 2 >= min_samples:
        tail = x.size - (x.size % 2)
        x = x[:tail].reshape(-1, 2).mean(axis=1)
        rounds += 1
    return x, rounds


def mean_ci(
    x: np.ndarray, confidence: float = 0.95
) -> tuple[float, float]:
    """Sample mean and CI half-width from the Student t-distribution."""
    check_in_range("confidence", confidence, 0.0, 1.0, low_inclusive=False, high_inclusive=False)
    x = np.asarray(x, dtype=np.float64)
    n = x.size
    if n == 0:
        raise ValueError("mean_ci of empty sample")
    mean = float(x.mean())
    if n == 1:
        return mean, float("inf")
    sem = float(x.std(ddof=1) / np.sqrt(n))
    tcrit = float(sps.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return mean, tcrit * sem


@dataclass
class MeasurementSummary:
    """One measurement analyzed the Pilot way."""

    mean: float
    ci_halfwidth: float
    confidence: float
    n_raw: int
    n_effective: int  # samples used for the CI after merging
    autocorr_raw: float
    autocorr_final: float
    merge_rounds: int
    trimmed_prefix: int
    trimmed_suffix: int

    @property
    def ci(self) -> tuple[float, float]:
        return (self.mean - self.ci_halfwidth, self.mean + self.ci_halfwidth)

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return (
            f"{self.mean:.4g} ± {self.ci_halfwidth:.2g} "
            f"({self.confidence:.0%} CI, n={self.n_effective})"
        )


def analyze(
    samples: np.ndarray,
    confidence: float = 0.95,
    autocorr_threshold: float = AUTOCORR_THRESHOLD,
    trim: bool = True,
) -> MeasurementSummary:
    """Full Pilot pipeline: trim → i.i.d. check/merge → t-based CI."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        raise ValueError("analyze() of empty sample")
    n_raw = samples.size
    if trim:
        core, lo, hi = trim_warmup_cooldown(samples)
    else:
        core, lo, hi = samples, 0, samples.size
    ac_raw = autocorrelation(core)
    merged, rounds = subsession_merge(core, threshold=autocorr_threshold)
    mean, half = mean_ci(merged, confidence)
    return MeasurementSummary(
        mean=mean,
        ci_halfwidth=half,
        confidence=confidence,
        n_raw=n_raw,
        n_effective=merged.size,
        autocorr_raw=ac_raw,
        autocorr_final=autocorrelation(merged),
        merge_rounds=rounds,
        trimmed_prefix=lo,
        trimmed_suffix=n_raw - hi,
    )
