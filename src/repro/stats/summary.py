"""Comparing measurements: percent change, Welch tests, report rows.

The benchmark harness uses these helpers to print paper-style results
("CAPES increased throughput by 45 %") with honest uncertainty: a
comparison is only called significant when the Welch t-test agrees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.stats.pilot import MeasurementSummary, analyze


def percent_change(baseline: float, tuned: float) -> float:
    """Relative change of ``tuned`` over ``baseline`` in percent."""
    if baseline == 0:
        raise ZeroDivisionError("baseline mean is zero")
    return 100.0 * (tuned - baseline) / baseline


@dataclass
class Comparison:
    """Tuned-vs-baseline comparison with significance."""

    baseline: MeasurementSummary
    tuned: MeasurementSummary
    percent: float
    p_value: float
    significant: bool

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        marker = "*" if self.significant else " "
        return (
            f"baseline {self.baseline.mean:.4g} -> tuned "
            f"{self.tuned.mean:.4g} ({self.percent:+.1f}%{marker})"
        )


def compare_measurements(
    baseline_samples: np.ndarray,
    tuned_samples: np.ndarray,
    confidence: float = 0.95,
    trim: bool = True,
) -> Comparison:
    """Analyze both series the Pilot way and Welch-test the difference."""
    base = analyze(baseline_samples, confidence=confidence, trim=trim)
    tuned = analyze(tuned_samples, confidence=confidence, trim=trim)
    # Welch's t-test on the raw (trimmed) series; unequal variances.
    b = np.asarray(baseline_samples, dtype=np.float64)
    t = np.asarray(tuned_samples, dtype=np.float64)
    if b.std(ddof=1) == 0 and t.std(ddof=1) == 0:
        p = 0.0 if b.mean() != t.mean() else 1.0
    else:
        _stat, p = sps.ttest_ind(t, b, equal_var=False)
        p = float(p)
    return Comparison(
        baseline=base,
        tuned=tuned,
        percent=percent_change(base.mean, tuned.mean),
        p_value=p,
        significant=p < (1.0 - confidence),
    )
