"""Bootstrap confidence intervals for derived quantities.

Student-t CIs (appendix B) cover means of i.i.d. samples; the paper's
headline numbers, however, are *ratios* of means ("45 % increase"),
whose sampling distribution is not Student-t.  The percentile bootstrap
handles ratios and any other statistic without distributional
assumptions, at the price of resampling cost — fine at benchmark scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.util.rng import ensure_rng
from repro.util.validation import check_in_range, check_positive


@dataclass
class BootstrapCI:
    """A statistic with a percentile-bootstrap confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    n_resamples: int

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return (
            f"{self.estimate:.4g} [{self.low:.4g}, {self.high:.4g}] "
            f"({self.confidence:.0%} bootstrap CI)"
        )


def bootstrap_ci(
    samples: np.ndarray,
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed=None,
) -> BootstrapCI:
    """Percentile bootstrap CI of ``statistic`` over one sample."""
    check_in_range("confidence", confidence, 0.0, 1.0, low_inclusive=False, high_inclusive=False)
    check_positive("n_resamples", n_resamples)
    x = np.asarray(samples, dtype=np.float64)
    if x.size < 2:
        raise ValueError("need at least 2 samples to bootstrap")
    rng = ensure_rng(seed)
    idx = rng.integers(0, x.size, size=(n_resamples, x.size))
    stats = np.apply_along_axis(statistic, 1, x[idx])
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCI(
        estimate=float(statistic(x)),
        low=float(np.quantile(stats, alpha)),
        high=float(np.quantile(stats, 1.0 - alpha)),
        confidence=confidence,
        n_resamples=int(n_resamples),
    )


def bootstrap_ratio_ci(
    baseline: np.ndarray,
    tuned: np.ndarray,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed=None,
) -> BootstrapCI:
    """CI of ``mean(tuned)/mean(baseline) - 1`` (the paper's "% gain").

    The two series are resampled independently — they come from
    separate measurement sessions.
    """
    check_in_range("confidence", confidence, 0.0, 1.0, low_inclusive=False, high_inclusive=False)
    check_positive("n_resamples", n_resamples)
    b = np.asarray(baseline, dtype=np.float64)
    t = np.asarray(tuned, dtype=np.float64)
    if b.size < 2 or t.size < 2:
        raise ValueError("need at least 2 samples in each series")
    if b.mean() == 0:
        raise ZeroDivisionError("baseline mean is zero")
    rng = ensure_rng(seed)
    bi = rng.integers(0, b.size, size=(n_resamples, b.size))
    ti = rng.integers(0, t.size, size=(n_resamples, t.size))
    b_means = b[bi].mean(axis=1)
    t_means = t[ti].mean(axis=1)
    ok = b_means != 0
    ratios = t_means[ok] / b_means[ok] - 1.0
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCI(
        estimate=float(t.mean() / b.mean() - 1.0),
        low=float(np.quantile(ratios, alpha)),
        high=float(np.quantile(ratios, 1.0 - alpha)),
        confidence=confidence,
        n_resamples=int(n_resamples),
    )
