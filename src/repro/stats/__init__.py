"""Pilot-style measurement statistics (paper appendix B).

Every throughput number in the paper carries a 95 % confidence interval
computed only after the samples were validated to be i.i.d.; warm-up and
cool-down phases were removed by changepoint detection.  This package
reimplements that pipeline:

- :func:`~repro.stats.pilot.autocorrelation` — lag-k sample
  autocorrelation;
- :func:`~repro.stats.pilot.subsession_merge` — merge adjacent samples
  until |autocorrelation| drops below the 0.1 threshold;
- :func:`~repro.stats.pilot.mean_ci` — Student-t confidence interval;
- :func:`~repro.stats.pilot.analyze` — the full pipeline producing a
  :class:`~repro.stats.pilot.MeasurementSummary`;
- :mod:`~repro.stats.changepoint` — CUSUM changepoint detection and
  warm-up/cool-down trimming;
- :mod:`~repro.stats.summary` — comparison helpers (percent change,
  Welch tests) used by the benchmark harness to print paper-style rows.
"""

from repro.stats.bootstrap import BootstrapCI, bootstrap_ci, bootstrap_ratio_ci
from repro.stats.changepoint import detect_changepoint, trim_warmup_cooldown
from repro.stats.pilot import (
    MeasurementSummary,
    analyze,
    autocorrelation,
    mean_ci,
    subsession_merge,
)
from repro.stats.summary import compare_measurements, percent_change

__all__ = [
    "BootstrapCI",
    "bootstrap_ci",
    "bootstrap_ratio_ci",
    "autocorrelation",
    "subsession_merge",
    "mean_ci",
    "analyze",
    "MeasurementSummary",
    "detect_changepoint",
    "trim_warmup_cooldown",
    "percent_change",
    "compare_measurements",
]
