"""CUSUM changepoint detection and warm-up/cool-down trimming.

Appendix B: "We used a changepoint detection algorithm to detect these
non-stable phases and removes them from the result calculation."

The detector is the classic cumulative-sum statistic: under a mean
shift at k, S_k = Σ_{i≤k}(x_i − x̄) peaks near k.  Significance uses
the standardized maximum |S_k| / (σ̂·√n); for i.i.d. noise this
statistic converges to the supremum of a Brownian bridge, whose 95th
percentile is ≈1.36 (the Kolmogorov statistic), giving a closed-form
threshold with no bootstrap.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

#: 95th percentile of sup|Brownian bridge| (Kolmogorov distribution).
_BRIDGE_95 = 1.358


def detect_changepoint(x: np.ndarray) -> Tuple[Optional[int], float]:
    """Most likely mean-shift location and its standardized magnitude.

    Returns ``(k, stat)`` where the shift separates ``x[:k+1]`` from
    ``x[k+1:]``; ``k`` is None when no significant shift is found
    (stat below the 95 % Brownian-bridge threshold, or degenerate
    input).
    """
    x = np.asarray(x, dtype=np.float64)
    n = x.size
    if n < 8:
        return None, 0.0
    sd = x.std(ddof=1)
    if sd == 0.0 or not np.isfinite(sd):
        return None, 0.0
    cusum = np.cumsum(x - x.mean())
    # Endpoints are pinned at ~0; interior max marks the shift.
    k = int(np.argmax(np.abs(cusum[:-1])))
    stat = float(np.abs(cusum[k]) / (sd * np.sqrt(n)))
    if stat < _BRIDGE_95:
        return None, stat
    return k, stat


def trim_warmup_cooldown(
    x: np.ndarray,
    max_trim_fraction: float = 0.3,
    max_rounds: int = 4,
) -> Tuple[np.ndarray, int, int]:
    """Remove unstable prefix/suffix phases; returns ``(core, lo, hi)``
    with ``core = x[lo:hi]``.

    Iteratively: detect a changepoint; if it falls inside the leading
    ``max_trim_fraction`` of the remaining window, drop the prefix
    (warm-up); if inside the trailing fraction, drop the suffix
    (cool-down); interior changepoints are left alone — a genuine
    mid-run regime change is signal, not measurement artefact.
    """
    x = np.asarray(x, dtype=np.float64)
    if not 0.0 < max_trim_fraction < 0.5:
        raise ValueError(
            f"max_trim_fraction must be in (0, 0.5), got {max_trim_fraction}"
        )
    lo, hi = 0, x.size
    for _ in range(max_rounds):
        if hi - lo < 8:
            break
        k, _stat = detect_changepoint(x[lo:hi])
        if k is None:
            break
        span = hi - lo
        if k + 1 <= max_trim_fraction * span:
            lo += k + 1  # warm-up
        elif k + 1 >= (1.0 - max_trim_fraction) * span:
            hi = lo + k + 1  # cool-down
        else:
            break
    return x[lo:hi], lo, hi
