"""The CAPES control-plane daemon (the paper's deployed shape).

One asyncio process plays the roles §3 assigns to the control node:
the Interface Daemon (ingest compressed differential telemetry, fan it
into the shared replay store), the DRL engine (train continuously via
the existing :mod:`repro.train` backends), and the action server
(price actions with :meth:`~repro.rl.agent.DQNAgent.act_batch` and
push versioned :mod:`repro.nn.checkpoint` weight broadcasts back out).

Concurrency model: every connected cluster gets a reader coroutine;
frames whose observation window is warm are queued to one shared
*decider* task that micro-batches whatever is pending into a single
``act_batch`` forward pass, lands the records, answers the clients,
and grants the trainer its tick budget.  Clients therefore share one
model and one replay store without locks — everything mutable lives on
the event loop.

Replay layout mirrors the vectorized fan-in path: cluster ``slot``'s
local tick ``t`` lands at global tick ``slot * tick_stride + t``, and
a :class:`~repro.replaydb.spans.TickSpans` frontier keeps the sampler
uniform over every cluster's transitions.

Determinism: the agent, per-slot exploration streams and sampler seed
all derive from ``ServeConfig.seed`` exactly the way the in-process
session derives them, which is what makes the server-vs-inline golden
equivalence test possible (same seed + same frames ⇒ same actions).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.env.vector import per_env_rngs
from repro.replaydb.db import CACHE_ONLY, ReplayDB
from repro.replaydb.records import PackedRecords
from repro.replaydb.spans import StridedMinibatchSampler, TickSpans
from repro.rl.agent import DQNAgent
from repro.rl.hyperparams import Hyperparameters
from repro.serve import protocol
from repro.serve.stats import ClusterStats, EventFeed, ServeStats
from repro.snapshot import (
    SessionSnapshot,
    SnapshotError,
    capture_agent,
    capture_replay,
    capture_trainer,
    restore_agent,
    restore_replay,
    restore_trainer,
    rng_state,
    set_rng_state,
)
from repro.telemetry.wire import DecoderPool, WireDesyncError
from repro.train.loop import TrainerConfig, TrainerLoop, TrainerStats
from repro.util.ringbuffer import RingBuffer
from repro.util.rng import derive_rng, ensure_rng
from repro.util.validation import check_positive

#: Trainer backends the daemon accepts.  ``none`` serves a frozen
#: policy; ``serial`` bursts SGD on the event loop between decisions;
#: ``process`` overlaps training in the PR-5 worker process.
SERVE_BACKENDS = ("none", "serial", "process")

#: The crash-recovery artifact name inside ``ServeConfig.snapshot_dir``.
#: One fixed name, rewritten atomically: recovery always wants "the
#: most recent consistent state", never a history.
SERVE_SNAPSHOT_NAME = "serve-latest.npz"


@dataclass
class ServeConfig:
    """Everything needed to run one control-plane daemon."""

    frame_width: int
    n_actions: int
    host: str = "127.0.0.1"
    #: TCP port for the client protocol; 0 binds an ephemeral port.
    port: int = 0
    #: HTTP ``/stats`` port; ``None`` disables the endpoint, 0 is
    #: ephemeral.
    stats_port: Optional[int] = None
    max_clients: int = 64
    #: Seconds a connected client may go silent before being dropped.
    read_timeout: float = 60.0
    #: Observation window length in ticks; defaults to the
    #: hyperparameter table's ``sampling_ticks_per_observation``.
    obs_ticks: Optional[int] = None
    #: Per-cluster tick-space block size (bounds one cluster's ticks).
    tick_stride: int = 4096
    #: Replay cache rows; defaults to ``max_clients * tick_stride``,
    #: the exact global-tick span the strided layout can produce.  The
    #: cache is a tick-indexed ring, so anything smaller would alias
    #: high-slot writes over low-slot records mid-serve; shrink
    #: ``tick_stride`` (or ``max_clients``) to shrink memory instead.
    cache_capacity: Optional[int] = None
    #: Replay store path; the sentinel keeps it cache-only.
    db_path: str = CACHE_ONLY
    trainer_backend: str = "serial"
    train_ratio: float = 1.0
    sync_every: int = 64
    #: Per-connection transport write-buffer ceiling (bytes) above which
    #: a checkpoint broadcast is *skipped* for that client rather than
    #: queued: a stalled reader must not accumulate megabyte weight
    #: blobs in its asyncio transport indefinitely.  The client catches
    #: up at the next version bump (or on reconnect, which always
    #: carries a current-epoch checkpoint).
    broadcast_high_water: int = 8 * 1024 * 1024
    #: Crash-recovery snapshot directory; ``None`` disables snapshots.
    #: The daemon rewrites ``serve-latest.npz`` there (atomically) every
    #: ``snapshot_every_s`` seconds and once at shutdown, and ``repro
    #: serve --resume`` restores a fresh daemon from it.
    snapshot_dir: Optional[str] = None
    #: Seconds between periodic crash-recovery snapshots.
    snapshot_every_s: float = 30.0
    greedy: bool = False
    seed: int = 0
    hp: Hyperparameters = field(default_factory=Hyperparameters)
    loss: str = "mse"

    def __post_init__(self) -> None:
        check_positive("frame_width", self.frame_width)
        check_positive("n_actions", self.n_actions)
        for label, value in (("port", self.port), ("stats_port", self.stats_port)):
            if value is not None and not 0 <= int(value) <= 65535:
                raise ValueError(f"{label} must be in [0, 65535], got {value}")
        check_positive("max_clients", self.max_clients)
        if self.read_timeout <= 0:
            raise ValueError(
                f"read_timeout must be > 0, got {self.read_timeout}"
            )
        if self.obs_ticks is None:
            self.obs_ticks = int(self.hp.sampling_ticks_per_observation)
        check_positive("obs_ticks", self.obs_ticks)
        check_positive("tick_stride", self.tick_stride)
        if self.tick_stride <= self.obs_ticks:
            raise ValueError(
                f"tick_stride ({self.tick_stride}) must exceed the "
                f"observation window ({self.obs_ticks} ticks)"
            )
        span = self.max_clients * self.tick_stride
        if self.cache_capacity is None:
            self.cache_capacity = span
        check_positive("cache_capacity", self.cache_capacity)
        if self.cache_capacity < span:
            raise ValueError(
                f"cache_capacity ({self.cache_capacity}) must cover the "
                f"strided global-tick span max_clients * tick_stride "
                f"({span}); a smaller ring would evict live clusters' "
                f"records mid-serve — lower tick_stride instead"
            )
        check_positive("broadcast_high_water", self.broadcast_high_water)
        if self.snapshot_every_s <= 0:
            raise ValueError(
                f"snapshot_every_s must be > 0, got {self.snapshot_every_s}"
            )
        if self.trainer_backend not in SERVE_BACKENDS:
            raise ValueError(
                f"trainer backend must be one of {SERVE_BACKENDS}, "
                f"got {self.trainer_backend!r}"
            )
        if self.trainer_backend == "process" and self.obs_ticks != int(
            self.hp.sampling_ticks_per_observation
        ):
            # The worker builds observations from
            # hp.sampling_ticks_per_observation rows of its mirror cache;
            # a daemon serving a different window would hand it batches
            # the agent's input layer rejects mid-serve.
            raise ValueError(
                f"obs_ticks ({self.obs_ticks}) must match "
                f"hp.sampling_ticks_per_observation "
                f"({self.hp.sampling_ticks_per_observation}) with the "
                f"process trainer backend: the forked worker samples "
                f"the hp window"
            )
        if self.trainer_backend != "none":
            # Reuse the TrainerConfig rejection rules (train_ratio >= 0,
            # sync_every >= 1) rather than restating them here.
            TrainerConfig(
                backend=self.trainer_backend,
                train_ratio=self.train_ratio,
                sync_every=self.sync_every,
            )


def build_serve_agent(
    seed: int,
    obs_dim: int,
    n_actions: int,
    hp: Optional[Hyperparameters] = None,
    loss: str = "mse",
) -> DQNAgent:
    """The daemon's acting agent, derived deterministically from ``seed``.

    Exposed so the golden equivalence test can build the *same* agent
    outside the server and replay frames through it inline.
    """
    return DQNAgent(
        obs_dim=int(obs_dim),
        n_actions=int(n_actions),
        hp=hp,
        loss=loss,
        rng=derive_rng(ensure_rng(seed), "serve-agent"),
    )


class _Cluster:
    """Server-side state for one registered cluster (survives churn)."""

    __slots__ = ("name", "slot", "ring", "last_tick", "writer", "row")

    def __init__(
        self, name: str, slot: int, obs_ticks: int, frame_width: int,
        row: ClusterStats,
    ):
        self.name = name
        self.slot = slot
        self.ring = RingBuffer(obs_ticks, shape=(frame_width,))
        self.last_tick = -1
        self.writer: Optional[asyncio.StreamWriter] = None
        self.row = row


@dataclass
class _Pending:
    """One warm frame waiting for the decider."""

    cluster: _Cluster
    tick: int
    reward: float
    frame: np.ndarray  # (frame_width,) float64
    obs: np.ndarray  # (obs_ticks * frame_width,) float64
    arrived: float


class CapesServer:
    """The asyncio control-plane daemon.  See the module docstring."""

    def __init__(self, config: ServeConfig, agent: Optional[DQNAgent] = None):
        self.config = config
        fw = config.frame_width
        self.agent = agent or build_serve_agent(
            config.seed,
            config.obs_ticks * fw,
            config.n_actions,
            hp=config.hp,
            loss=config.loss,
        )
        self.stats = ServeStats()
        self.events = EventFeed()
        self.pool = DecoderPool(fw)
        self.db = ReplayDB(
            fw, path=config.db_path, cache_capacity=config.cache_capacity
        )
        self.spans = TickSpans(
            n_blocks=config.max_clients, stride=config.tick_stride
        )
        self._clusters: Dict[str, _Cluster] = {}
        self._act_rngs = per_env_rngs(
            config.seed, config.max_clients, "serve-act"
        )
        sampler_seed = int(
            derive_rng(ensure_rng(config.seed), "serve-sampler").integers(
                2**31
            )
        )
        self._trainer: Optional[TrainerLoop] = None
        #: The serial sampler, kept for snapshot capture of its RNG.
        self._sampler: Optional[StridedMinibatchSampler] = None
        if config.trainer_backend == "serial":
            self._sampler = StridedMinibatchSampler(
                self.db.cache,
                self.spans,
                obs_ticks=config.obs_ticks,
                missing_tolerance=config.hp.missing_entry_tolerance,
                seed=sampler_seed,
            )
            self._trainer = TrainerLoop(
                self.agent,
                TrainerConfig(
                    backend="serial",
                    train_ratio=config.train_ratio,
                    sync_every=config.sync_every,
                ),
                sampler=self._sampler,
            )
        elif config.trainer_backend == "process":
            self._trainer = TrainerLoop(
                self.agent,
                TrainerConfig(
                    backend="process",
                    train_ratio=config.train_ratio,
                    sync_every=config.sync_every,
                ),
                frame_width=fw,
                stride=config.tick_stride,
                n_blocks=config.max_clients,
                sampler_seed=sampler_seed,
                cache_capacity=config.cache_capacity,
            )
        # Last weight state broadcast to clients (PR-5 fence identity).
        self._weight_epoch = 0
        self._weight_version = 0
        self._pending: asyncio.Queue = asyncio.Queue()
        self._server: Optional[asyncio.base_events.Server] = None
        self._stats_server: Optional[asyncio.base_events.Server] = None
        self._decider_task: Optional[asyncio.Task] = None
        self._snapshot_task: Optional[asyncio.Task] = None
        self._conn_tasks: set = set()
        self._closing = False
        self._done = asyncio.Event()
        self.port: Optional[int] = None
        self.stats_port: Optional[int] = None

    # -- lifecycle --------------------------------------------------------
    async def start(self) -> None:
        """Bind sockets, fork the trainer backend, start the decider."""
        if self._trainer is not None:
            self._trainer.begin()
        self._decider_task = asyncio.create_task(self._decider())
        if self.config.snapshot_dir is not None:
            self._snapshot_task = asyncio.create_task(self._snapshot_loop())
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.stats_port is not None:
            self._stats_server = await asyncio.start_server(
                self._on_stats, self.config.host, self.config.stats_port
            )
            self.stats_port = self._stats_server.sockets[0].getsockname()[1]

    async def wait_shutdown(self) -> None:
        """Block until :meth:`shutdown` has completed."""
        await self._done.wait()

    async def shutdown(self) -> None:
        """Graceful stop: drain decisions, stop the trainer, flush replay.

        Idempotent.  Ordering matters: connections close first (no new
        frames), then the decider spends the queue (every accepted
        frame still lands and grants training budget), then the trainer
        stops via its own ``stop()`` (flushing budget / joining the
        worker without masking errors), then the store commits.
        """
        if self._closing:
            await self._done.wait()
            return
        self._closing = True
        if self._snapshot_task is not None:
            self._snapshot_task.cancel()
            try:
                await self._snapshot_task
            except asyncio.CancelledError:
                pass
            self._snapshot_task = None
        if self._server is not None:
            self._server.close()
        if self._stats_server is not None:
            self._stats_server.close()
        for cluster in self._clusters.values():
            writer = cluster.writer
            if writer is not None and not writer.is_closing():
                try:
                    writer.write(protocol.pack_message(protocol.BYE))
                except (ConnectionError, RuntimeError):
                    pass
                writer.close()
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=5.0)
        await self._pending.put(None)
        if self._decider_task is not None:
            await self._decider_task
        if self._trainer is not None:
            self.stats.trainer = _trainer_snapshot(self._trainer.stop())
        if self.config.snapshot_dir is not None:
            # Final snapshot after the trainer has stopped: the decider
            # has drained (every accepted frame landed), the serial
            # burst flushed, and a process worker's weights have been
            # adopted back — the artifact is the fully quiesced session.
            try:
                self.write_snapshot()
            except OSError as exc:
                self.events.publish("snapshot-error", error=str(exc))
        self.db.commit()
        self.db.close()
        if self._server is not None:
            await self._server.wait_closed()
        if self._stats_server is not None:
            await self._stats_server.wait_closed()
        self.events.publish("shutdown")
        self._done.set()

    # -- client connections -----------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self.stats.connections_total += 1
        self.stats.connections_open += 1
        cluster: Optional[_Cluster] = None
        reason = "bye"
        try:
            cluster = await self._handshake(reader, writer)
            if cluster is not None:
                await self._frame_loop(cluster, reader, writer)
        except (asyncio.IncompleteReadError, ConnectionError):
            reason = "disconnect"
            self.stats.disconnects += 1
        except asyncio.TimeoutError:
            reason = "timeout"
            self.stats.timeouts += 1
            await self._send_error(writer, "read timeout")
        except protocol.ProtocolError as exc:
            reason = "protocol-error"
            self.stats.protocol_errors += 1
            await self._send_error(writer, str(exc))
        finally:
            self._conn_tasks.discard(task)
            self.stats.connections_open -= 1
            if cluster is not None and cluster.writer is writer:
                cluster.writer = None
                cluster.row.connected = False
                # Read the Table-2 accounting off the decoder before
                # evicting it; the next incarnation starts from zero
                # state and must resync explicitly.
                cluster.row.fold_wire(self.pool.stats(cluster.name))
                if self.pool.evict(cluster.name):
                    self.stats.evictions += 1
                self.events.publish(
                    "disconnect", cluster=cluster.name, reason=reason
                )
            await _close_writer(writer)

    async def _handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[_Cluster]:
        """HELLO → WELCOME + current-epoch CHECKPOINT; None = rejected."""
        msg_type, payload = await asyncio.wait_for(
            protocol.read_message(reader), self.config.read_timeout
        )
        if msg_type != protocol.HELLO:
            raise protocol.ProtocolError(
                f"expected HELLO, got "
                f"{protocol.TYPE_NAMES.get(msg_type, msg_type)}"
            )
        hello = protocol.unpack_json(payload)
        name = hello.get("name")
        if not isinstance(name, str) or not name:
            raise protocol.ProtocolError(
                "HELLO must carry a non-empty string 'name'"
            )
        if hello.get("proto") != protocol.PROTO_VERSION:
            await self._send_error(
                writer,
                f"protocol version {hello.get('proto')} unsupported "
                f"(server speaks {protocol.PROTO_VERSION})",
            )
            return None
        if hello.get("frame_width") != self.config.frame_width:
            await self._send_error(
                writer,
                f"frame_width {hello.get('frame_width')} does not match "
                f"server's {self.config.frame_width}",
            )
            return None
        cluster = self._clusters.get(name)
        if cluster is None:
            if len(self._clusters) >= self.config.max_clients:
                await self._send_error(
                    writer,
                    f"server full ({self.config.max_clients} clusters)",
                )
                return None
            slot = len(self._clusters)
            cluster = _Cluster(
                name,
                slot,
                self.config.obs_ticks,
                self.config.frame_width,
                self.stats.cluster(name, slot),
            )
            self._clusters[name] = cluster
        elif cluster.writer is not None:
            await self._send_error(
                writer, f"cluster {name!r} is already connected"
            )
            return None
        cluster.writer = writer
        cluster.row.connects += 1
        cluster.row.connected = True
        writer.write(
            protocol.pack_json(
                protocol.WELCOME,
                {
                    "proto": protocol.PROTO_VERSION,
                    "cluster": cluster.slot,
                    "frame_width": self.config.frame_width,
                    "obs_ticks": self.config.obs_ticks,
                    "n_actions": self.config.n_actions,
                    # Reconnecting senders must re-establish decoder
                    # state: their first frame must be a full frame.
                    "resync": True,
                },
            )
        )
        writer.write(self._checkpoint_message())
        await writer.drain()
        self.events.publish("connect", cluster=name, slot=cluster.slot)
        return cluster

    async def _frame_loop(
        self,
        cluster: _Cluster,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """The steady state: FRAME in, DECISION (or RESYNC) out."""
        cfg = self.config
        while True:
            msg_type, payload = await asyncio.wait_for(
                protocol.read_message(reader), cfg.read_timeout
            )
            if msg_type == protocol.BYE:
                return
            if msg_type != protocol.FRAME:
                raise protocol.ProtocolError(
                    f"unexpected {protocol.TYPE_NAMES.get(msg_type, msg_type)}"
                    f" message mid-stream"
                )
            tick, reward, wire_msg = protocol.unpack_frame(payload)
            try:
                wire_tick, frame = self.pool.decode(cluster.name, wire_msg)
            except WireDesyncError:
                self.stats.resyncs += 1
                writer.write(protocol.pack_message(protocol.RESYNC))
                await writer.drain()
                self.events.publish(
                    "resync", cluster=cluster.name, tick=tick
                )
                continue
            except (zlib.error, ValueError) as exc:
                raise protocol.ProtocolError(
                    f"malformed wire message: {exc}"
                ) from exc
            if wire_tick != tick:
                raise protocol.ProtocolError(
                    f"FRAME tick {tick} disagrees with wire tick {wire_tick}"
                )
            if tick <= cluster.last_tick:
                raise protocol.ProtocolError(
                    f"non-monotonic tick {tick} (last was "
                    f"{cluster.last_tick}); a restarted cluster must "
                    f"register under a fresh name"
                )
            if tick >= cfg.tick_stride:
                raise protocol.ProtocolError(
                    f"tick {tick} exceeds the replay block stride "
                    f"{cfg.tick_stride}"
                )
            cluster.last_tick = tick
            cluster.row.frames += 1
            cluster.row.last_tick = tick
            cluster.row.reward_ewma.update(reward)
            self.stats.frames_total += 1
            cluster.ring.append(frame)
            if cluster.ring.full:
                obs = np.empty(
                    (cfg.obs_ticks, cfg.frame_width), dtype=np.float64
                )
                cluster.ring.copy_into(obs)
                await self._pending.put(
                    _Pending(
                        cluster,
                        tick,
                        reward,
                        frame,
                        obs.reshape(-1),
                        time.monotonic(),
                    )
                )
            else:
                # Window still warming: land the NULL-action record
                # (exactly what in-process monitoring ticks do) and
                # answer immediately so the client keeps streaming.
                self._land(cluster, tick, frame, reward, 0)
                writer.write(protocol.pack_decision(tick, 0, False))
                await writer.drain()

    async def _send_error(
        self, writer: asyncio.StreamWriter, text: str
    ) -> None:
        """Best-effort ERROR reply (the peer may already be gone)."""
        if writer.is_closing():
            return
        try:
            writer.write(protocol.pack_json(protocol.ERROR, {"error": text}))
            await writer.drain()
        except (ConnectionError, RuntimeError, OSError):
            pass

    # -- deciding ----------------------------------------------------------
    async def _decider(self) -> None:
        """Micro-batch pending frames into single act_batch passes."""
        while True:
            item = await self._pending.get()
            if item is None:
                return
            batch = [item]
            stop = False
            while True:
                try:
                    nxt = self._pending.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is None:
                    stop = True
                    break
                batch.append(nxt)
            await self._decide(batch)
            if stop:
                return

    async def _decide(self, batch: List[_Pending]) -> None:
        obs = np.stack([item.obs for item in batch])
        rngs = None
        if not self.config.greedy:
            rngs = [self._act_rngs[item.cluster.slot] for item in batch]
        actions = self.agent.act_batch(
            obs, greedy=self.config.greedy, rngs=rngs
        )
        now = time.monotonic()
        writers = []
        for item, action in zip(batch, actions):
            action = int(action)
            self._land(item.cluster, item.tick, item.frame, item.reward, action)
            latency = now - item.arrived
            row = item.cluster.row
            row.decisions += 1
            row.last_action = action
            row.latency.observe(latency)
            self.stats.latency.observe(latency)
            self.stats.decisions_total += 1
            writer = item.cluster.writer
            if writer is not None and not writer.is_closing():
                try:
                    writer.write(
                        protocol.pack_decision(item.tick, action, True)
                    )
                    writers.append(writer)
                except (ConnectionError, RuntimeError):
                    pass
            self.events.publish(
                "decision",
                cluster=item.cluster.name,
                tick=item.tick,
                action=action,
                latency_ms=latency * 1e3,
            )
        for writer in writers:
            try:
                await writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                pass
        self._train(len(batch))

    def _land(
        self,
        cluster: _Cluster,
        tick: int,
        frame: np.ndarray,
        reward: float,
        action: int,
    ) -> None:
        """One record into the shared replay path (DB + spans + trainer)."""
        packed = PackedRecords(
            ticks=np.array(
                [cluster.slot * self.config.tick_stride + tick],
                dtype=np.int64,
            ),
            frames=np.ascontiguousarray(
                frame.reshape(1, -1), dtype=np.float64
            ),
            actions=np.array([action], dtype=np.int64),
            rewards=np.array([float(reward)], dtype=np.float64),
        )
        self.db.put_many(
            packed.ticks, packed.frames, packed.rewards, packed.actions
        )
        self.spans.observe_top(cluster.slot, tick)
        if self._trainer is not None:
            self._trainer.ingest(packed)
        cluster.row.ticks_landed += 1

    # -- training / broadcasts ---------------------------------------------
    def _train(self, k: int) -> None:
        """Grant ``k`` decision ticks of budget; broadcast new weights."""
        if self._trainer is None or k <= 0:
            return
        self._trainer.notify_ticks(k)
        stats = self._trainer.stats
        try:
            if self._trainer.config.backend == "process":
                epoch, version = stats.epoch, stats.weights_version
            else:
                # Serial SGD mutates the acting agent directly; mirror
                # the process backend's broadcast cadence for clients.
                epoch = stats.epoch
                version = (
                    stats.steps_attempted // self._trainer.config.sync_every
                )
            if (epoch, version) <= (self._weight_epoch, self._weight_version):
                return
            self._weight_epoch, self._weight_version = epoch, version
            if self._trainer.config.backend != "process":
                # The serial path has no worker feeding these back; the
                # broadcast IS the version bump, so record it.
                stats.weights_version = version
                stats.broadcasts_applied += 1
            message = self._checkpoint_message()
            high_water = self.config.broadcast_high_water
            for cluster in self._clusters.values():
                writer = cluster.writer
                if writer is None or writer.is_closing():
                    continue
                buffered = writer.transport.get_write_buffer_size()
                if buffered > high_water:
                    # A stalled reader: queueing another megabyte blob
                    # only grows its transport buffer without bound.
                    # It catches up at the next bump or on reconnect.
                    self.stats.broadcasts_skipped += 1
                    self.events.publish(
                        "checkpoint-skipped",
                        cluster=cluster.name,
                        buffered=buffered,
                        version=version,
                    )
                    continue
                try:
                    writer.write(message)
                except (ConnectionError, RuntimeError):
                    pass
            self.stats.checkpoints_broadcast += 1
            self.events.publish("checkpoint", epoch=epoch, version=version)
        finally:
            # Snapshot *after* the broadcast decision so /stats sees the
            # version/broadcast accounting this call just produced.
            self.stats.trainer = _trainer_snapshot(stats)

    def _checkpoint_message(self) -> bytes:
        """The current weights as a versioned CHECKPOINT message."""
        return protocol.pack_checkpoint(
            self._weight_epoch,
            self._weight_version,
            self.agent.snapshot_weights(),
        )

    # -- crash recovery ----------------------------------------------------
    def snapshot_state(self) -> SessionSnapshot:
        """Capture every mutable layer of the daemon into one artifact.

        Sections: ``serve`` (weight fence, aggregate counters, the
        cluster registry with each ring's warm frames), ``agent``
        (networks + optimizer + epsilon + RNG, plus every per-slot
        exploration stream), ``trainer`` (cadence debt and stats, the
        serial sampler's RNG) and ``replay`` (span frontiers + cached
        rows).  Runs synchronously on the event loop, so the capture is
        a consistent point-in-time cut — no frame can land mid-capture.
        """
        cfg = self.config
        snap = SessionSnapshot()
        clusters = []
        rings: Dict[str, np.ndarray] = {}
        for cluster in self._clusters.values():
            row = cluster.row
            clusters.append(
                {
                    "name": cluster.name,
                    "slot": int(cluster.slot),
                    "last_tick": int(cluster.last_tick),
                    "connects": int(row.connects),
                    "frames": int(row.frames),
                    "ticks_landed": int(row.ticks_landed),
                    "decisions": int(row.decisions),
                    "row_last_tick": int(row.last_tick),
                    "last_action": row.last_action,
                    "reward_ewma": {
                        "mean": row.reward_ewma._mean,
                        "count": int(row.reward_ewma._count),
                    },
                    "wire": {
                        "messages": int(row.wire.messages),
                        "raw_bytes": int(row.wire.raw_bytes),
                        "compressed_bytes": int(row.wire.compressed_bytes),
                        "entries_sent": int(row.wire.entries_sent),
                    },
                }
            )
            rings[f"ring{cluster.slot}"] = cluster.ring.view()
        st = self.stats
        meta = {
            "frame_width": int(cfg.frame_width),
            "n_actions": int(cfg.n_actions),
            "obs_ticks": int(cfg.obs_ticks),
            "tick_stride": int(cfg.tick_stride),
            "max_clients": int(cfg.max_clients),
            "seed": int(cfg.seed),
            "trainer_backend": cfg.trainer_backend,
            "weight_epoch": int(self._weight_epoch),
            "weight_version": int(self._weight_version),
            "counters": {
                "connections_total": int(st.connections_total),
                "disconnects": int(st.disconnects),
                "evictions": int(st.evictions),
                "resyncs": int(st.resyncs),
                "timeouts": int(st.timeouts),
                "protocol_errors": int(st.protocol_errors),
                "frames_total": int(st.frames_total),
                "decisions_total": int(st.decisions_total),
                "checkpoints_broadcast": int(st.checkpoints_broadcast),
                "broadcasts_skipped": int(st.broadcasts_skipped),
            },
            "clusters": clusters,
            "act_rngs": [rng_state(g) for g in self._act_rngs],
        }
        snap.put("serve", meta=meta, arrays=rings)
        agent_meta, agent_arrays = capture_agent(self.agent)
        snap.put("agent", meta=agent_meta, arrays=agent_arrays)
        if self._trainer is not None:
            t_meta, t_arrays = capture_trainer(self._trainer)
            if self._sampler is not None:
                t_meta["sampler_rng"] = rng_state(self._sampler.rng)
            snap.put("trainer", meta=t_meta, arrays=t_arrays)
        r_meta, r_arrays = capture_replay(self.db, self.spans)
        snap.put("replay", meta=r_meta, arrays=r_arrays)
        return snap

    def restore_state(self, snap: SessionSnapshot) -> None:
        """Apply a serve snapshot onto this freshly built daemon.

        Must run before :meth:`start`: a process-backend trainer forks
        its worker on ``begin()`` and must fork from the restored
        weights and (bumped) epoch.  Clusters re-register under their
        old names, keep their slots, rings and monotonic tick fences,
        and must continue from ``last_tick + 1`` — exactly the contract
        a reconnect already imposes.
        """
        if self._server is not None or self._closing:
            raise SnapshotError("restore_state must run before start()")
        cfg = self.config
        meta = snap.section("serve")
        for key, live in (
            ("frame_width", cfg.frame_width),
            ("n_actions", cfg.n_actions),
            ("obs_ticks", cfg.obs_ticks),
            ("tick_stride", cfg.tick_stride),
            ("max_clients", cfg.max_clients),
        ):
            if int(meta[key]) != int(live):
                raise SnapshotError(
                    f"serve geometry mismatch: snapshot has "
                    f"{key}={meta[key]}, server has {live}"
                )
        if meta["trainer_backend"] != cfg.trainer_backend:
            raise SnapshotError(
                f"trainer backend mismatch: snapshot has "
                f"{meta['trainer_backend']!r}, server has "
                f"{cfg.trainer_backend!r}"
            )
        restore_agent(
            self.agent, snap.section("agent"), snap.section_arrays("agent")
        )
        states = meta["act_rngs"]
        if len(states) != len(self._act_rngs):
            raise SnapshotError(
                f"snapshot carries {len(states)} exploration streams, "
                f"server has {len(self._act_rngs)}"
            )
        for gen, state in zip(self._act_rngs, states):
            set_rng_state(gen, state)
        if self._trainer is not None and snap.has_section("trainer"):
            t_meta = snap.section("trainer")
            # The epoch bump is the process-backend resume fence: the
            # worker's in-flight state died with the old daemon, and
            # the first post-resume report must win the broadcast race.
            restore_trainer(
                self._trainer,
                t_meta,
                snap.section_arrays("trainer"),
                bump_epoch=(cfg.trainer_backend == "process"),
            )
            if self._sampler is not None and "sampler_rng" in t_meta:
                set_rng_state(self._sampler.rng, t_meta["sampler_rng"])
        restore_replay(
            self.db,
            self.spans,
            snap.section("replay"),
            snap.section_arrays("replay"),
        )
        if self._trainer is not None and cfg.trainer_backend == "process":
            # The worker samples its *own* mirror cache, which died with
            # the old daemon; replay the restored blocks through ingest
            # (this forks the worker — from the weights and bumped epoch
            # restored above) so post-resume SGD sees the full history.
            r_meta = snap.section("replay")
            r_arrays = snap.section_arrays("replay")
            for i, top in enumerate(r_meta["tops"]):
                key = f"ticks{i}"
                if top < 0 or key not in r_arrays or not len(r_arrays[key]):
                    continue
                self._trainer.ingest(
                    PackedRecords(
                        ticks=r_arrays[key],
                        frames=r_arrays[f"frames{i}"],
                        actions=r_arrays[f"actions{i}"],
                        rewards=r_arrays[f"rewards{i}"],
                    )
                )
        rings = snap.section_arrays("serve")
        self._clusters.clear()
        self.stats.clusters.clear()
        for spec in meta["clusters"]:
            slot = int(spec["slot"])
            cluster = _Cluster(
                spec["name"],
                slot,
                cfg.obs_ticks,
                cfg.frame_width,
                self.stats.cluster(spec["name"], slot),
            )
            cluster.last_tick = int(spec["last_tick"])
            ring = rings.get(f"ring{slot}")
            if ring is not None and len(ring):
                cluster.ring.extend(ring)
            row = cluster.row
            row.connects = int(spec["connects"])
            row.frames = int(spec["frames"])
            row.ticks_landed = int(spec["ticks_landed"])
            row.decisions = int(spec["decisions"])
            row.last_tick = int(spec["row_last_tick"])
            row.last_action = (
                None
                if spec["last_action"] is None
                else int(spec["last_action"])
            )
            ewma = spec["reward_ewma"]
            row.reward_ewma._mean = (
                None if ewma["mean"] is None else float(ewma["mean"])
            )
            row.reward_ewma._count = int(ewma["count"])
            wire = spec["wire"]
            row.wire.messages = int(wire["messages"])
            row.wire.raw_bytes = int(wire["raw_bytes"])
            row.wire.compressed_bytes = int(wire["compressed_bytes"])
            row.wire.entries_sent = int(wire["entries_sent"])
            self._clusters[spec["name"]] = cluster
        counters = meta["counters"]
        st = self.stats
        for key, value in counters.items():
            setattr(st, key, int(value))
        self._weight_epoch = int(meta["weight_epoch"])
        self._weight_version = int(meta["weight_version"])

    def write_snapshot(
        self, path: Optional[Union[str, Path]] = None
    ) -> Path:
        """Write the current state; defaults to the configured artifact."""
        if path is None:
            if self.config.snapshot_dir is None:
                raise SnapshotError(
                    "no snapshot path: configure ServeConfig.snapshot_dir "
                    "or pass one explicitly"
                )
            path = Path(self.config.snapshot_dir) / SERVE_SNAPSHOT_NAME
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        out = self.snapshot_state().save(path)
        self.events.publish("snapshot", path=str(out))
        return out

    async def _snapshot_loop(self) -> None:
        """Rewrite the crash-recovery artifact every ``snapshot_every_s``.

        The write runs on the event loop — that is what makes each cut
        consistent — so the interval bounds added decision latency, not
        correctness.  Shutdown writes the final quiesced artifact.
        """
        while True:
            await asyncio.sleep(self.config.snapshot_every_s)
            try:
                self.write_snapshot()
            except OSError as exc:
                self.events.publish("snapshot-error", error=str(exc))

    # -- observability -----------------------------------------------------
    def stats_snapshot(self) -> dict:
        """The ``/stats`` JSON body (also handy in-process)."""
        live = {
            name: self.pool.stats(name)
            for name in self._clusters
            if name in self.pool
        }
        snapshot = self.stats.snapshot(live)
        snapshot["clusters_registered"] = len(self._clusters)
        snapshot["weight_epoch"] = self._weight_epoch
        snapshot["weight_version"] = self._weight_version
        return snapshot

    async def _on_stats(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """A deliberately tiny HTTP/1.0 responder for ``GET /stats``."""
        try:
            request = await asyncio.wait_for(reader.readline(), 5.0)
            parts = request.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else "/"
            while True:
                line = await asyncio.wait_for(reader.readline(), 5.0)
                if line in (b"", b"\r\n", b"\n"):
                    break
            if path.partition("?")[0] in ("/stats", "/stats/"):
                status, body = "200 OK", json.dumps(
                    self.stats_snapshot()
                ).encode("utf-8")
            else:
                status, body = "404 Not Found", b'{"error":"not found"}'
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"Connection: close\r\n\r\n"
                ).encode("latin-1")
                + body
            )
            await writer.drain()
        except (
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            ConnectionError,
            OSError,
        ):
            pass
        finally:
            await _close_writer(writer)


def _trainer_snapshot(stats: TrainerStats) -> dict:
    """A JSON-able trainer summary for the ``/stats`` body."""
    return {
        "backend": stats.backend,
        "steps_attempted": stats.steps_attempted,
        "losses": len(stats.losses),
        "last_loss": float(stats.losses[-1]) if stats.losses else None,
        "broadcasts_applied": stats.broadcasts_applied,
        "weights_version": stats.weights_version,
        "epoch": stats.epoch,
    }


async def _close_writer(writer: asyncio.StreamWriter) -> None:
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass


def run_server(server: CapesServer, install_signal_handlers: bool = True,
               announce=None) -> ServeStats:
    """Run ``server`` until SIGINT/SIGTERM (the CLI entry point).

    ``announce(server)`` is called once the sockets are bound, so the
    caller can print the (possibly ephemeral) ports.
    """
    import signal as _signal

    async def _main() -> None:
        await server.start()
        # Handlers must be live before the announce: a supervisor that
        # reads the port line and signals immediately must never catch
        # the gap where SIGINT still means KeyboardInterrupt.
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for sig in (_signal.SIGINT, _signal.SIGTERM):
                loop.add_signal_handler(
                    sig,
                    lambda: asyncio.ensure_future(server.shutdown()),
                )
        if announce is not None:
            announce(server)
        await server.wait_shutdown()

    asyncio.run(_main())
    return server.stats


class ServerThread:
    """A :class:`CapesServer` on a background event loop.

    The in-process harness for tests and the swarm bench: the server
    owns a private loop in a daemon thread; the caller talks to it over
    real TCP from its own loop (or blocking sockets).  Use as a context
    manager, or ``start()`` / ``stop()`` explicitly.
    """

    def __init__(self, server: CapesServer):
        self.server = server
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._started = threading.Event()
        self._error: Optional[BaseException] = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> "ServerThread":
        """Start the loop thread; returns once the sockets are bound."""
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("serve thread failed to start in 30s")
        if self._error is not None:
            raise RuntimeError("serve thread died on startup") from self._error
        return self

    @property
    def port(self) -> int:
        """The bound client-protocol port."""
        return self.server.port

    @property
    def stats_port(self) -> Optional[int]:
        """The bound ``/stats`` port (None when disabled)."""
        return self.server.stats_port

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # surfaced to start()/stop() callers
            self._error = exc
        finally:
            self._started.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        await self.server.start()
        self._started.set()
        await self.server.wait_shutdown()

    def stop(self) -> None:
        """Graceful shutdown on the server's loop, then join the thread."""
        if self._loop is not None and self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.shutdown(), self._loop
            )
            future.result(timeout=60)
        self._thread.join(timeout=30)
