"""The CAPES control plane as a network daemon (``repro serve``).

The deployed shape §3 of the paper describes: a central control node
that ingests compressed differential telemetry from many monitored
clusters, trains continuously against the shared replay store, prices
tuning actions for every cluster in batched forward passes, and pushes
versioned weight checkpoints back out — plus the live observability a
long-running daemon needs (a ``/stats`` endpoint and an in-process
event feed).

- :mod:`protocol` — the framed TCP message layer (HELLO/WELCOME,
  FRAME/DECISION, RESYNC, CHECKPOINT, BYE/ERROR);
- :mod:`server` — :class:`CapesServer`, the asyncio daemon, with
  :class:`ServeConfig`, :func:`run_server` (signal-driven CLI entry)
  and :class:`ServerThread` (background-loop harness for tests);
- :mod:`client` — :class:`ServeClient`, a monitored cluster's agent:
  differential encoding, decision round trips, fenced checkpoint
  adoption;
- :mod:`swarm` — :func:`run_swarm`, N concurrent simulated clusters
  (``FleetEnv`` slots) for load benches and soak tests;
- :mod:`stats` — :class:`ServeStats` counters and the
  :class:`EventFeed`.
"""

from repro.serve.client import ServeClient, ServeClientError, ServerClosedError
from repro.serve.protocol import PROTO_VERSION, ProtocolError
from repro.serve.server import (
    SERVE_SNAPSHOT_NAME,
    CapesServer,
    ServeConfig,
    ServerThread,
    build_serve_agent,
    run_server,
)
from repro.serve.stats import EventFeed, LatencyWindow, ServeStats
from repro.serve.swarm import (
    ClientReport,
    SwarmReport,
    run_swarm,
    run_swarm_sync,
)

__all__ = [
    "PROTO_VERSION",
    "ProtocolError",
    "SERVE_SNAPSHOT_NAME",
    "CapesServer",
    "ServeConfig",
    "ServerThread",
    "build_serve_agent",
    "run_server",
    "ServeClient",
    "ServeClientError",
    "ServerClosedError",
    "EventFeed",
    "LatencyWindow",
    "ServeStats",
    "ClientReport",
    "SwarmReport",
    "run_swarm",
    "run_swarm_sync",
]
