"""Client side of the control plane: a monitored cluster's agent.

:class:`ServeClient` is the asyncio counterpart of the daemon: it
registers with HELLO, streams :mod:`repro.telemetry.wire` differential
frames (fresh encoder per connection, so the first frame after any
(re)connect covers every indicator and re-establishes server decoder
state), waits for the matching DECISION, and applies CHECKPOINT
hot-swaps under the PR-5 load-fence rule — a broadcast is adopted only
when its ``(epoch, version)`` is strictly newer than what the client
already runs, so a stale epoch can never overwrite fresher weights.

A RESYNC reply (the server lost this sender's decoder state, e.g. the
client survived a server-side eviction with its encoder intact) is
handled transparently: the frame is re-sent in full via
:meth:`~repro.telemetry.wire.DifferentialEncoder.encode_full` and the
exchange continues.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Tuple

import numpy as np

from repro.serve import protocol
from repro.telemetry.wire import DifferentialEncoder
from repro.util.validation import check_positive


class ServeClientError(RuntimeError):
    """The server rejected us or sent something unintelligible."""


class ServerClosedError(ServeClientError):
    """The server said BYE (or vanished) mid-conversation."""


class ServeClient:
    """One cluster's connection to a :class:`~repro.serve.server.CapesServer`.

    ``agent`` is optional: when given, every adopted CHECKPOINT is
    loaded into it via
    :meth:`~repro.rl.agent.DQNAgent.adopt_network`; without it the
    newest blob is kept in :attr:`latest_checkpoint` for the caller.
    """

    def __init__(
        self,
        host: str,
        port: int,
        name: str,
        frame_width: int,
        agent=None,
        timeout: float = 30.0,
    ):
        if not name:
            raise ValueError("client name must be non-empty")
        check_positive("frame_width", frame_width)
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.host = host
        self.port = int(port)
        self.name = name
        self.frame_width = int(frame_width)
        self.agent = agent
        self.timeout = float(timeout)
        self.encoder: Optional[DifferentialEncoder] = None
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.welcome: Optional[dict] = None
        #: Weight identity currently running, (-1, -1) before any adopt.
        self.weight_epoch = -1
        self.weight_version = -1
        #: Newest adopted ``(epoch, version, blob)``.
        self.latest_checkpoint: Optional[Tuple[int, int, bytes]] = None
        self.checkpoints_applied = 0
        self.stale_discarded = 0
        self.resyncs = 0
        self.decisions = 0

    @property
    def connected(self) -> bool:
        """Whether a live connection is up."""
        return self.writer is not None and not self.writer.is_closing()

    # -- lifecycle --------------------------------------------------------
    async def connect(self) -> dict:
        """HELLO/WELCOME handshake; returns the WELCOME body.

        Adopts the current-epoch CHECKPOINT the server sends right
        behind WELCOME, so a freshly connected client acts on live
        weights before its first frame.
        """
        self.reader, self.writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), self.timeout
        )
        # A fresh encoder per connection: its first message covers every
        # indicator, which is what re-establishes server decoder state.
        self.encoder = DifferentialEncoder(self.frame_width)
        self.writer.write(
            protocol.pack_json(
                protocol.HELLO,
                {
                    "name": self.name,
                    "frame_width": self.frame_width,
                    "proto": protocol.PROTO_VERSION,
                },
            )
        )
        await self.writer.drain()
        msg_type, payload = await self._read()
        if msg_type == protocol.ERROR:
            raise ServeClientError(
                protocol.unpack_json(payload).get("error", "rejected")
            )
        if msg_type != protocol.WELCOME:
            raise ServeClientError(
                f"expected WELCOME, got "
                f"{protocol.TYPE_NAMES.get(msg_type, msg_type)}"
            )
        self.welcome = protocol.unpack_json(payload)
        msg_type, payload = await self._read()
        if msg_type != protocol.CHECKPOINT:
            raise ServeClientError(
                f"expected the handshake CHECKPOINT, got "
                f"{protocol.TYPE_NAMES.get(msg_type, msg_type)}"
            )
        self._apply_checkpoint(payload)
        return self.welcome

    async def close(self) -> None:
        """Say BYE (best effort) and drop the connection."""
        writer = self.writer
        self.reader = self.writer = None
        if writer is None:
            return
        try:
            if not writer.is_closing():
                writer.write(protocol.pack_message(protocol.BYE))
                await writer.drain()
        except (ConnectionError, RuntimeError, OSError):
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # -- the tick exchange -------------------------------------------------
    async def tick(
        self, tick: int, frame: np.ndarray, reward: float = 0.0
    ) -> Tuple[int, int, bool]:
        """Send one PI frame; return ``(tick, action, decided)``.

        Blocks until the server's DECISION for this tick arrives.
        CHECKPOINT broadcasts that interleave are applied on the spot;
        a RESYNC triggers a full-frame resend of the same tick.
        """
        if self.reader is None or self.encoder is None:
            raise ServeClientError("not connected")
        frame = np.asarray(frame, dtype=np.float64)
        wire = self.encoder.encode(tick, frame)
        self.writer.write(protocol.pack_frame(tick, float(reward), wire))
        await self.writer.drain()
        while True:
            msg_type, payload = await self._read()
            if msg_type == protocol.CHECKPOINT:
                self._apply_checkpoint(payload)
                continue
            if msg_type == protocol.RESYNC:
                self.resyncs += 1
                wire = self.encoder.encode_full(tick, frame)
                self.writer.write(
                    protocol.pack_frame(tick, float(reward), wire)
                )
                await self.writer.drain()
                continue
            if msg_type == protocol.DECISION:
                got_tick, action, decided = protocol.unpack_decision(payload)
                if got_tick != tick:
                    raise ServeClientError(
                        f"DECISION for tick {got_tick}, expected {tick}"
                    )
                if decided:
                    self.decisions += 1
                return got_tick, action, decided
            if msg_type == protocol.BYE:
                raise ServerClosedError("server closed the session")
            if msg_type == protocol.ERROR:
                raise ServeClientError(
                    protocol.unpack_json(payload).get("error", "error")
                )
            raise ServeClientError(
                f"unexpected {protocol.TYPE_NAMES.get(msg_type, msg_type)} "
                f"message"
            )

    # -- internals ---------------------------------------------------------
    async def _read(self) -> Tuple[int, bytes]:
        try:
            return await asyncio.wait_for(
                protocol.read_message(self.reader), self.timeout
            )
        except (asyncio.IncompleteReadError, ConnectionError) as exc:
            raise ServerClosedError("server connection lost") from exc

    def _apply_checkpoint(self, payload: bytes) -> None:
        epoch, version, blob = protocol.unpack_checkpoint(payload)
        # The load fence: only strictly newer weight identities land.
        if (epoch, version) <= (self.weight_epoch, self.weight_version):
            self.stale_discarded += 1
            return
        self.weight_epoch, self.weight_version = epoch, version
        self.latest_checkpoint = (epoch, version, blob)
        if self.agent is not None:
            from repro.nn.checkpoint import checkpoint_from_bytes

            net, _ = checkpoint_from_bytes(blob)
            self.agent.adopt_network(net)
        self.checkpoints_applied += 1
