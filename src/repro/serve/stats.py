"""Live observability for the control-plane daemon.

Two consumers, one source of truth:

- :class:`ServeStats` holds the counters — per-cluster tick/decision/
  loss/reward/latency aggregates, connection churn, and the §3.3
  wire-protocol byte savings measured on received traffic (the Table 2
  "average message size per client" row, on real messages) — and
  renders one JSON-able snapshot for the ``/stats`` endpoint;
- :class:`EventFeed` is the in-process push channel: subscribers get
  every connect/disconnect/decision/broadcast event as a dict on their
  own bounded queue (oldest events drop rather than block the serving
  loop).
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Deque, Dict, List, Optional

import numpy as np

from repro.telemetry.wire import WireStats
from repro.util.ewma import EWMA


class LatencyWindow:
    """Rolling decision-latency quantiles over the last ``window`` samples.

    A bounded deque, not a reservoir: decision latency is a live-health
    signal, so recent behaviour should dominate — and the window is
    large enough that p99 over it is stable for the load bench.
    """

    def __init__(self, window: int = 8192):
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        self._samples: Deque[float] = deque(maxlen=int(window))
        self.count = 0

    def observe(self, seconds: float) -> None:
        """Record one latency sample."""
        self._samples.append(float(seconds))
        self.count += 1

    def quantiles(self, qs=(0.5, 0.99)) -> List[float]:
        """The requested quantiles over the retained window (or NaNs)."""
        if not self._samples:
            return [float("nan")] * len(qs)
        arr = np.asarray(self._samples)
        return [float(np.quantile(arr, q)) for q in qs]


class ClusterStats:
    """One registered cluster's live counters."""

    def __init__(self, name: str, slot: int):
        self.name = name
        self.slot = int(slot)
        self.connects = 0
        self.frames = 0
        self.ticks_landed = 0
        self.decisions = 0
        self.last_tick = -1
        self.last_action: Optional[int] = None
        self.reward_ewma = EWMA(alpha=0.05)
        self.latency = LatencyWindow()
        #: Receive-side wire accounting, folded in across connections
        #: (the live connection's decoder holds the in-flight tail).
        self.wire = WireStats()
        self.connected = False

    def fold_wire(self, stats: Optional[WireStats]) -> None:
        """Accumulate a (dying) decoder's wire stats into this cluster."""
        if stats is None:
            return
        self.wire.messages += stats.messages
        self.wire.raw_bytes += stats.raw_bytes
        self.wire.compressed_bytes += stats.compressed_bytes
        self.wire.entries_sent += stats.entries_sent

    def snapshot(self, live_wire: Optional[WireStats] = None) -> dict:
        """JSON-able view, merging the live decoder's wire tail."""
        wire = WireStats(
            messages=self.wire.messages,
            raw_bytes=self.wire.raw_bytes,
            compressed_bytes=self.wire.compressed_bytes,
            entries_sent=self.wire.entries_sent,
        )
        if live_wire is not None:
            wire.messages += live_wire.messages
            wire.raw_bytes += live_wire.raw_bytes
            wire.compressed_bytes += live_wire.compressed_bytes
            wire.entries_sent += live_wire.entries_sent
        p50, p99 = self.latency.quantiles()
        return {
            "name": self.name,
            "slot": self.slot,
            "connected": self.connected,
            "connects": self.connects,
            "frames": self.frames,
            "ticks_landed": self.ticks_landed,
            "decisions": self.decisions,
            "last_tick": self.last_tick,
            "last_action": self.last_action,
            "reward_ewma": (
                self.reward_ewma.value if self.reward_ewma.count else None
            ),
            "decision_latency_p50_ms": p50 * 1e3,
            "decision_latency_p99_ms": p99 * 1e3,
            "wire": {
                "messages": wire.messages,
                "raw_bytes": wire.raw_bytes,
                "compressed_bytes": wire.compressed_bytes,
                "entries_sent": wire.entries_sent,
                "mean_message_size": wire.mean_message_size,
                "compression_ratio": wire.compression_ratio,
            },
        }


class ServeStats:
    """The daemon's aggregate counters and per-cluster breakdowns."""

    def __init__(self):
        self.started_at = time.monotonic()
        self.clusters: Dict[str, ClusterStats] = {}
        self.connections_open = 0
        self.connections_total = 0
        self.disconnects = 0
        self.evictions = 0
        self.resyncs = 0
        self.timeouts = 0
        self.protocol_errors = 0
        self.decisions_total = 0
        self.frames_total = 0
        self.checkpoints_broadcast = 0
        #: Per-writer broadcast skips: a stalled client whose transport
        #: buffer sat above the high-water mark when weights shipped.
        self.broadcasts_skipped = 0
        self.latency = LatencyWindow()
        #: Filled from the trainer loop's :class:`~repro.train.TrainerStats`.
        self.trainer: Optional[dict] = None

    def cluster(self, name: str, slot: int) -> ClusterStats:
        """The (created-on-first-use) stats row for one cluster."""
        row = self.clusters.get(name)
        if row is None:
            row = self.clusters[name] = ClusterStats(name, slot)
        return row

    def snapshot(
        self, live_wire: Optional[Dict[str, WireStats]] = None
    ) -> dict:
        """One JSON-able view of everything (the ``/stats`` body)."""
        live_wire = live_wire or {}
        p50, p99 = self.latency.quantiles()
        rows = {
            name: row.snapshot(live_wire.get(name))
            for name, row in sorted(self.clusters.items())
        }
        wire_totals = {
            key: sum(r["wire"][key] for r in rows.values())
            for key in ("messages", "raw_bytes", "compressed_bytes")
        }
        wire_totals["compression_ratio"] = (
            wire_totals["raw_bytes"] / wire_totals["compressed_bytes"]
            if wire_totals["compressed_bytes"]
            else 1.0
        )
        wire_totals["mean_message_size"] = (
            wire_totals["compressed_bytes"] / wire_totals["messages"]
            if wire_totals["messages"]
            else 0.0
        )
        return {
            "uptime_s": time.monotonic() - self.started_at,
            "connections": {
                "open": self.connections_open,
                "total": self.connections_total,
                "disconnects": self.disconnects,
                "evictions": self.evictions,
                "resyncs": self.resyncs,
                "timeouts": self.timeouts,
                "protocol_errors": self.protocol_errors,
            },
            "frames_total": self.frames_total,
            "decisions_total": self.decisions_total,
            "checkpoints_broadcast": self.checkpoints_broadcast,
            "broadcasts_skipped": self.broadcasts_skipped,
            "decision_latency_p50_ms": p50 * 1e3,
            "decision_latency_p99_ms": p99 * 1e3,
            "wire": wire_totals,
            "trainer": self.trainer,
            "clusters": rows,
        }


class EventFeed:
    """Bounded fan-out of server events to in-process subscribers.

    ``publish`` never blocks the serving loop: a subscriber that falls
    behind loses its *oldest* events (each queue is a sliding window),
    which is the right failure mode for a live dashboard feed.
    """

    def __init__(self, maxsize: int = 256):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be > 0, got {maxsize}")
        self._maxsize = int(maxsize)
        self._queues: List[asyncio.Queue] = []
        self.dropped = 0

    def subscribe(self) -> asyncio.Queue:
        """A fresh queue receiving every event published from now on."""
        q: asyncio.Queue = asyncio.Queue(maxsize=self._maxsize)
        self._queues.append(q)
        return q

    def unsubscribe(self, q: asyncio.Queue) -> None:
        """Stop delivering to ``q``."""
        try:
            self._queues.remove(q)
        except ValueError:
            pass

    def publish(self, kind: str, **data) -> None:
        """Deliver ``{"event": kind, **data}`` to every subscriber."""
        if not self._queues:
            return
        event = {"event": kind, **data}
        for q in self._queues:
            while True:
                try:
                    q.put_nowait(event)
                    break
                except asyncio.QueueFull:
                    try:
                        q.get_nowait()
                        self.dropped += 1
                    except asyncio.QueueEmpty:  # pragma: no cover - race
                        break
