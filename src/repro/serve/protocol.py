"""Framed control-plane messages between serve clients and the daemon.

Transport framing is deliberately dumb: every message is a 5-byte
prefix (``uint8`` type + ``uint32`` payload length, little-endian)
followed by the payload.  Control messages (HELLO/WELCOME/ERROR) carry
UTF-8 JSON; the hot-path messages are packed structs:

=============  =========  ==================================================
message        direction  payload
=============  =========  ==================================================
``HELLO``      c → s      JSON: ``name``, ``frame_width``, ``proto``
``WELCOME``    s → c      JSON: ``cluster`` slot, geometry, ``resync`` flag
``FRAME``      c → s      ``<qd`` tick, reward + :mod:`repro.telemetry.wire`
                          differential message bytes (§3.3)
``DECISION``   s → c      ``<qqB`` tick, action, decided flag (0 while the
                          server's observation window is still warming)
``RESYNC``     s → c      empty — the server lost this sender's decoder
                          state; reset the encoder and resend in full
``CHECKPOINT`` s → c      ``<qq`` weight epoch, version +
                          :mod:`repro.nn.checkpoint` npz bytes
``BYE``        either     empty — deliberate goodbye (clean churn)
``ERROR``      s → c      JSON: ``error`` text; the connection closes next
=============  =========  ==================================================

Every ``FRAME`` gets exactly one ``DECISION`` (or ``RESYNC``) reply, so
a client has at most one frame in flight — the request/response shape
that makes client-measured decision latency meaningful — while
``CHECKPOINT`` messages may arrive at any point between replies.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Tuple

from repro.transport.framing import (
    MAX_PAYLOAD,
    PREFIX as _PREFIX,
    ProtocolError,
    encode_frame,
    read_frame_async,
)

PROTO_VERSION = 1

HELLO = 1
WELCOME = 2
FRAME = 3
DECISION = 4
RESYNC = 5
CHECKPOINT = 6
BYE = 7
ERROR = 8

#: Human-readable message-type names (logs, events, tests).
TYPE_NAMES = {
    HELLO: "hello",
    WELCOME: "welcome",
    FRAME: "frame",
    DECISION: "decision",
    RESYNC: "resync",
    CHECKPOINT: "checkpoint",
    BYE: "bye",
    ERROR: "error",
}

_FRAME_HEAD = struct.Struct("<qd")  # tick, reward
_DECISION = struct.Struct("<qqB")  # tick, action, decided flag
_CHECKPOINT_HEAD = struct.Struct("<qq")  # weight epoch, version

def pack_message(msg_type: int, payload: bytes = b"") -> bytes:
    """One wire-ready framed message.

    Thin alias of :func:`repro.transport.framing.encode_frame` — the
    control plane and the collection transports share one framing
    implementation (prefix layout, :data:`MAX_PAYLOAD` cap,
    :class:`ProtocolError` on oversize).
    """
    return encode_frame(msg_type, payload)


async def read_message(reader: asyncio.StreamReader) -> Tuple[int, bytes]:
    """Read one framed message; raises on EOF or oversized frames.

    Thin alias of :func:`repro.transport.framing.read_frame_async`.
    ``asyncio.IncompleteReadError`` propagates on a peer that vanished
    mid-frame — callers treat it exactly like a disconnect.
    """
    return await read_frame_async(reader)


def pack_json(msg_type: int, obj: dict) -> bytes:
    """A JSON-payload control message."""
    return pack_message(
        msg_type, json.dumps(obj, separators=(",", ":")).encode("utf-8")
    )


def unpack_json(payload: bytes) -> dict:
    """Parse a JSON control payload (raises :class:`ProtocolError`)."""
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed JSON control payload: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"control payload must be a JSON object, got "
            f"{type(obj).__name__}"
        )
    return obj


def pack_frame(tick: int, reward: float, wire_msg: bytes) -> bytes:
    """A FRAME message: tick + reward + differential wire bytes."""
    return pack_message(FRAME, _FRAME_HEAD.pack(tick, reward) + wire_msg)


def unpack_frame(payload: bytes) -> Tuple[int, float, bytes]:
    """``(tick, reward, wire_msg)`` from a FRAME payload."""
    if len(payload) <= _FRAME_HEAD.size:
        raise ProtocolError(
            f"FRAME payload of {len(payload)} bytes is too short"
        )
    tick, reward = _FRAME_HEAD.unpack_from(payload, 0)
    return tick, reward, payload[_FRAME_HEAD.size :]


def pack_decision(tick: int, action: int, decided: bool) -> bytes:
    """A DECISION reply (``decided=False`` while the window warms)."""
    return pack_message(DECISION, _DECISION.pack(tick, action, int(decided)))


def unpack_decision(payload: bytes) -> Tuple[int, int, bool]:
    """``(tick, action, decided)`` from a DECISION payload."""
    if len(payload) != _DECISION.size:
        raise ProtocolError(
            f"DECISION payload of {len(payload)} bytes, "
            f"expected {_DECISION.size}"
        )
    tick, action, decided = _DECISION.unpack(payload)
    return tick, action, bool(decided)


def pack_checkpoint(epoch: int, version: int, blob: bytes) -> bytes:
    """A CHECKPOINT broadcast: versioned npz weight bytes."""
    return pack_message(
        CHECKPOINT, _CHECKPOINT_HEAD.pack(epoch, version) + blob
    )


def unpack_checkpoint(payload: bytes) -> Tuple[int, int, bytes]:
    """``(epoch, version, blob)`` from a CHECKPOINT payload."""
    if len(payload) < _CHECKPOINT_HEAD.size:
        raise ProtocolError(
            f"CHECKPOINT payload of {len(payload)} bytes is too short"
        )
    epoch, version = _CHECKPOINT_HEAD.unpack_from(payload, 0)
    return epoch, version, payload[_CHECKPOINT_HEAD.size :]
