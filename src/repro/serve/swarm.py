"""A simulated cluster swarm driving a live control-plane daemon.

The load-generation half of the serve bench: N concurrent
:class:`~repro.serve.client.ServeClient` tasks, each streaming one
:class:`~repro.sim.vec.fleet_env.FleetEnv` slot's monitoring records
to the daemon and applying the decisions it returns.  All clients run
cooperatively on one event loop (fleet slots are not thread-safe), so
concurrency at the server is real — many sockets, interleaved frames —
while the load generator stays single-threaded and deterministic.

Per-client decision latency is measured around the full
``tick()`` round trip (encode → TCP → decode → act → TCP), which is
the number a deployed monitoring agent would experience.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.serve.client import ServeClient
from repro.util.validation import check_positive


@dataclass
class ClientReport:
    """What one swarm client saw."""

    name: str
    ticks: int = 0
    decisions: int = 0
    resyncs: int = 0
    checkpoints_applied: int = 0
    stale_discarded: int = 0
    #: Compressed §3.3 wire bytes this client sent.
    wire_bytes: int = 0
    wire_raw_bytes: int = 0
    #: Round-trip decision latencies, seconds.
    latencies: List[float] = field(default_factory=list)
    error: Optional[str] = None


@dataclass
class SwarmReport:
    """Aggregate swarm results (the BENCH_serve.json payload)."""

    n_clients: int
    ticks: int
    decisions: int
    duration_s: float
    decisions_per_s: float
    latency_p50_ms: float
    latency_p99_ms: float
    bytes_per_client: float
    raw_bytes_per_client: float
    compression_ratio: float
    checkpoints_applied: int
    resyncs: int
    errors: int
    clients: List[ClientReport] = field(default_factory=list)

    def to_json(self) -> dict:
        """JSON-able summary (per-client detail elided)."""
        return {
            "n_clients": self.n_clients,
            "ticks": self.ticks,
            "decisions": self.decisions,
            "duration_s": self.duration_s,
            "decisions_per_s": self.decisions_per_s,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "bytes_per_client": self.bytes_per_client,
            "raw_bytes_per_client": self.raw_bytes_per_client,
            "compression_ratio": self.compression_ratio,
            "checkpoints_applied": self.checkpoints_applied,
            "resyncs": self.resyncs,
            "errors": self.errors,
        }


async def _drive_slot(
    client: ServeClient, fleet, env_index: int, n_ticks: int,
    report: ClientReport,
) -> None:
    """Stream one fleet slot's records through one connection."""
    slot = fleet.slot(env_index)
    try:
        await client.connect()
        action = 0
        sent_top = -1
        # The fleet's warm-up records (NULL ticks) stream first, warming
        # the server's observation window exactly like a local session.
        for _ in range(n_ticks):
            packed = fleet.records_since_packed(sent_top, env_index)
            for i in range(len(packed)):
                tick = int(packed.ticks[i])
                t0 = time.perf_counter()
                _, decided_action, decided = await client.tick(
                    tick, packed.frames[i], float(packed.rewards[i])
                )
                report.latencies.append(time.perf_counter() - t0)
                report.ticks += 1
                if decided:
                    action = int(decided_action)
                sent_top = tick
            slot.step(action)
        # Flush the records of the final step.
        packed = fleet.records_since_packed(sent_top, env_index)
        for i in range(len(packed)):
            tick = int(packed.ticks[i])
            t0 = time.perf_counter()
            await client.tick(
                tick, packed.frames[i], float(packed.rewards[i])
            )
            report.latencies.append(time.perf_counter() - t0)
            report.ticks += 1
            sent_top = tick
        await client.close()
    except Exception as exc:  # one client's failure must not kill the swarm
        report.error = f"{type(exc).__name__}: {exc}"
    finally:
        report.decisions = client.decisions
        report.resyncs = client.resyncs
        report.checkpoints_applied = client.checkpoints_applied
        report.stale_discarded = client.stale_discarded
        if client.encoder is not None:
            report.wire_bytes = client.encoder.stats.compressed_bytes
            report.wire_raw_bytes = client.encoder.stats.raw_bytes


async def run_swarm(
    host: str,
    port: int,
    fleet,
    n_ticks: int,
    name_prefix: str = "swarm",
    timeout: float = 60.0,
) -> SwarmReport:
    """Drive every slot of ``fleet`` against the daemon at ``host:port``.

    ``fleet`` must already be reset.  Returns the aggregate
    :class:`SwarmReport`; individual client failures are recorded per
    client (``error``) rather than raised, so a flaky connection shows
    up in the report instead of hiding the rest of the swarm's numbers.
    """
    check_positive("n_ticks", n_ticks)
    n = fleet.n_envs
    reports = [
        ClientReport(name=f"{name_prefix}-{i:03d}") for i in range(n)
    ]
    clients = [
        ServeClient(
            host, port, reports[i].name, fleet.frame_dim, timeout=timeout
        )
        for i in range(n)
    ]
    started = time.perf_counter()
    await asyncio.gather(
        *(
            _drive_slot(clients[i], fleet, i, n_ticks, reports[i])
            for i in range(n)
        )
    )
    duration = time.perf_counter() - started
    all_latencies = np.array(
        [lat for r in reports for lat in r.latencies], dtype=np.float64
    )
    decisions = sum(r.decisions for r in reports)
    wire_bytes = sum(r.wire_bytes for r in reports)
    raw_bytes = sum(r.wire_raw_bytes for r in reports)
    return SwarmReport(
        n_clients=n,
        ticks=sum(r.ticks for r in reports),
        decisions=decisions,
        duration_s=duration,
        decisions_per_s=decisions / duration if duration > 0 else 0.0,
        latency_p50_ms=(
            float(np.quantile(all_latencies, 0.50)) * 1e3
            if all_latencies.size
            else float("nan")
        ),
        latency_p99_ms=(
            float(np.quantile(all_latencies, 0.99)) * 1e3
            if all_latencies.size
            else float("nan")
        ),
        bytes_per_client=wire_bytes / n,
        raw_bytes_per_client=raw_bytes / n,
        compression_ratio=raw_bytes / wire_bytes if wire_bytes else 1.0,
        checkpoints_applied=sum(r.checkpoints_applied for r in reports),
        resyncs=sum(r.resyncs for r in reports),
        errors=sum(1 for r in reports if r.error is not None),
        clients=reports,
    )


def run_swarm_sync(
    host: str, port: int, fleet, n_ticks: int, **kwargs
) -> SwarmReport:
    """:func:`run_swarm` from synchronous code (bench entry point)."""
    return asyncio.run(run_swarm(host, port, fleet, n_ticks, **kwargs))
