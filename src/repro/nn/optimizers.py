"""First-order optimisers over :class:`~repro.nn.layers.Parameter` lists.

The paper trains with Adam at learning rate 1e-4 (Table 1); SGD,
Momentum and RMSProp are provided for the optimiser ablation.  Each
optimiser owns per-parameter state keyed by position, so it must always
be stepped with the same parameter list.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence

import numpy as np

from repro.nn.layers import Parameter
from repro.util.validation import check_in_range, check_positive


class Optimizer(abc.ABC):
    """Base: validates the learning rate and tracks step count."""

    def __init__(self, lr: float):
        check_positive("lr", lr)
        self.lr = float(lr)
        self.steps = 0

    def step(self, params: Sequence[Parameter]) -> None:
        """Apply one update from each parameter's accumulated gradient."""
        self._update(list(params))
        self.steps += 1

    @abc.abstractmethod
    def _update(self, params: List[Parameter]) -> None: ...

    # -- optimiser-state checkpointing ------------------------------------
    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Flat dict of state tensors for checkpointing (may be empty)."""
        return {}

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        pass


class SGD(Optimizer):
    """Vanilla stochastic gradient descent."""

    def _update(self, params: List[Parameter]) -> None:
        for p in params:
            p.value -= self.lr * p.grad


class Momentum(Optimizer):
    """Classical momentum (Polyak)."""

    def __init__(self, lr: float, momentum: float = 0.9):
        super().__init__(lr)
        check_in_range("momentum", momentum, 0.0, 1.0, high_inclusive=False)
        self.momentum = float(momentum)
        self._v: Dict[int, np.ndarray] = {}

    def _update(self, params: List[Parameter]) -> None:
        for i, p in enumerate(params):
            v = self._v.get(i)
            if v is None:
                v = np.zeros_like(p.value)
            v = self.momentum * v - self.lr * p.grad
            self._v[i] = v
            p.value += v


class RMSProp(Optimizer):
    """RMSProp (Tieleman & Hinton)."""

    def __init__(self, lr: float, rho: float = 0.99, eps: float = 1e-8):
        super().__init__(lr)
        check_in_range("rho", rho, 0.0, 1.0, high_inclusive=False)
        check_positive("eps", eps)
        self.rho = float(rho)
        self.eps = float(eps)
        self._sq: Dict[int, np.ndarray] = {}

    def _update(self, params: List[Parameter]) -> None:
        for i, p in enumerate(params):
            sq = self._sq.get(i)
            if sq is None:
                sq = np.zeros_like(p.value)
            sq = self.rho * sq + (1.0 - self.rho) * p.grad**2
            self._sq[i] = sq
            p.value -= self.lr * p.grad / (np.sqrt(sq) + self.eps)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction — the paper's choice."""

    def __init__(
        self,
        lr: float = 1e-4,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(lr)
        check_in_range("beta1", beta1, 0.0, 1.0, high_inclusive=False)
        check_in_range("beta2", beta2, 0.0, 1.0, high_inclusive=False)
        check_positive("eps", eps)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def _update(self, params: List[Parameter]) -> None:
        t = self.steps + 1
        bc1 = 1.0 - self.beta1**t
        bc2 = 1.0 - self.beta2**t
        for i, p in enumerate(params):
            m = self._m.get(i)
            v = self._v.get(i)
            if m is None:
                m = np.zeros_like(p.value)
                v = np.zeros_like(p.value)
            m = self.beta1 * m + (1.0 - self.beta1) * p.grad
            v = self.beta2 * v + (1.0 - self.beta2) * p.grad**2
            self._m[i] = m
            self._v[i] = v
            p.value -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)

    def state_arrays(self) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {"adam.steps": np.array([self.steps])}
        for i, m in self._m.items():
            out[f"adam.m.{i}"] = m
        for i, v in self._v.items():
            out[f"adam.v.{i}"] = v
        return out

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        self._m.clear()
        self._v.clear()
        for key, arr in arrays.items():
            if key == "adam.steps":
                self.steps = int(arr[0])
            elif key.startswith("adam.m."):
                self._m[int(key.rsplit(".", 1)[1])] = np.array(arr)
            elif key.startswith("adam.v."):
                self._v[int(key.rsplit(".", 1)[1])] = np.array(arr)
