"""Model checkpointing (artifact appendix A.4).

"CAPES automatically checkpoints and stores the trained model when
being stopped, and loads the saved model when being started next time."

Checkpoints are single ``.npz`` files holding the MLP topology, all
weights, and (optionally) optimiser state, so a Figure 4-style
multi-session experiment can stop and resume training bit-exactly.

The same format also travels as in-memory bytes
(:func:`checkpoint_to_bytes` / :func:`checkpoint_from_bytes`) — the
versioned weight snapshots the decoupled trainer (:mod:`repro.train`)
broadcasts from its worker process back to the acting agent.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.nn.network import MLP
from repro.nn.optimizers import Optimizer

FORMAT_VERSION = 1


def _checkpoint_arrays(
    network: MLP,
    optimizer: Optional[Optimizer] = None,
    extra: Optional[dict] = None,
) -> dict:
    """The flat array mapping one checkpoint serialises."""
    arrays = {
        "__version__": np.array([FORMAT_VERSION]),
        "__dims__": np.array(network.layer_dims),
        "__activation__": np.array([network.hidden_activation]),
        "__batchnorm__": np.array([int(network.use_batchnorm)]),
    }
    for i, w in enumerate(network.get_weights()):
        arrays[f"w{i}"] = w
    if network.use_batchnorm:
        for i, norm in enumerate(network._norms):
            if norm is not None:
                arrays[f"bn_mean{i}"] = norm.running_mean
                arrays[f"bn_var{i}"] = norm.running_var
    if optimizer is not None:
        for key, arr in optimizer.state_arrays().items():
            arrays[f"opt::{key}"] = arr
    if extra:
        for key, val in extra.items():
            arrays[f"extra::{key}"] = np.asarray(val)
    return arrays


def save_checkpoint(
    path: Union[str, Path],
    network: MLP,
    optimizer: Optional[Optimizer] = None,
    extra: Optional[dict] = None,
) -> None:
    """Serialise ``network`` (+ optimiser state, + scalar extras) to npz."""
    np.savez(path, **_checkpoint_arrays(network, optimizer, extra))


def checkpoint_to_bytes(
    network: MLP,
    optimizer: Optional[Optimizer] = None,
    extra: Optional[dict] = None,
) -> bytes:
    """:func:`save_checkpoint`, but to in-memory npz bytes.

    The transport form of a weight snapshot: small enough to cross a
    worker pipe, self-describing enough to rebuild the network on the
    other side with :func:`checkpoint_from_bytes`.
    """
    buf = io.BytesIO()
    np.savez(buf, **_checkpoint_arrays(network, optimizer, extra))
    return buf.getvalue()


def checkpoint_from_bytes(
    blob: bytes,
    optimizer: Optional[Optimizer] = None,
) -> tuple[MLP, dict]:
    """Rebuild an MLP from :func:`checkpoint_to_bytes` output.

    If ``optimizer`` is given, its state arrays are restored in place.
    """
    return load_checkpoint(io.BytesIO(blob), optimizer=optimizer)


def load_checkpoint(
    path,
    optimizer: Optional[Optimizer] = None,
) -> tuple[MLP, dict]:
    """Rebuild the MLP from ``path`` (or file object); returns
    ``(network, extras)``.

    If ``optimizer`` is given, its state arrays are restored in place.
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["__version__"][0])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"checkpoint version {version} unsupported "
                f"(expected {FORMAT_VERSION})"
            )
        dims = [int(d) for d in data["__dims__"]]
        activation = str(data["__activation__"][0])
        use_bn = (
            bool(int(data["__batchnorm__"][0]))
            if "__batchnorm__" in data
            else False
        )
        net = MLP(dims, hidden_activation=activation, use_batchnorm=use_bn, rng=0)
        weights = []
        i = 0
        while f"w{i}" in data:
            weights.append(data[f"w{i}"])
            i += 1
        net.set_weights(weights)
        if use_bn:
            for i, norm in enumerate(net._norms):
                if norm is not None and f"bn_mean{i}" in data:
                    norm.running_mean[...] = data[f"bn_mean{i}"]
                    norm.running_var[...] = data[f"bn_var{i}"]
        if optimizer is not None:
            opt_state = {
                key[len("opt::") :]: data[key]
                for key in data.files
                if key.startswith("opt::")
            }
            optimizer.load_state_arrays(opt_state)
        extras = {
            key[len("extra::") :]: data[key]
            for key in data.files
            if key.startswith("extra::")
        }
    return net, extras
