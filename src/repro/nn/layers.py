"""Trainable layers: parameters and the dense (fully connected) layer."""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.nn.initializers import xavier_uniform


class Parameter:
    """A weight tensor together with its accumulated gradient."""

    __slots__ = ("name", "value", "grad")

    def __init__(self, name: str, value: np.ndarray):
        self.name = name
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    @property
    def shape(self):
        return self.value.shape

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Parameter({self.name!r}, shape={self.value.shape})"


class Layer:
    """Base class; concrete layers define forward/backward/parameters."""

    def parameters(self) -> list[Parameter]:
        return []

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class Dense(Layer):
    """Affine map ``y = x @ W + b`` with cached input for backprop.

    Gradients accumulate into the parameters (callers zero them between
    steps) so gradient checking and multi-loss setups compose naturally.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        name: str = "dense",
        weight_init: Callable = xavier_uniform,
        rng=None,
    ):
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError(f"bad dims ({in_dim}, {out_dim})")
        self.in_dim = int(in_dim)
        self.out_dim = int(out_dim)
        self.name = name
        self.W = Parameter(f"{name}.W", weight_init(in_dim, out_dim, rng))
        self.b = Parameter(f"{name}.b", np.zeros(out_dim))
        self._x: Optional[np.ndarray] = None

    def parameters(self) -> list[Parameter]:
        return [self.W, self.b]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_dim:
            raise ValueError(
                f"{self.name}: expected input (batch, {self.in_dim}), "
                f"got {x.shape}"
            )
        self._x = x
        return x @ self.W.value + self.b.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError(f"{self.name}: backward() before forward()")
        grad_out = np.asarray(grad_out, dtype=np.float64)
        if grad_out.shape != (self._x.shape[0], self.out_dim):
            raise ValueError(
                f"{self.name}: bad grad shape {grad_out.shape}, expected "
                f"({self._x.shape[0]}, {self.out_dim})"
            )
        self.W.grad += self._x.T @ grad_out
        self.b.grad += grad_out.sum(axis=0)
        return grad_out @ self.W.value.T
