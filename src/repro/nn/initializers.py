"""Weight initialisation schemes.

Xavier/Glorot uniform is the right default for the tanh MLP the paper
uses; He uniform is provided for ReLU variants explored in ablations.
"""

from __future__ import annotations

import math

import numpy as np

from repro.util.rng import ensure_rng


def xavier_uniform(fan_in: int, fan_out: int, rng=None) -> np.ndarray:
    """Glorot & Bengio (2010): U(-a, a) with a = sqrt(6 / (fan_in+fan_out))."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fans must be > 0, got ({fan_in}, {fan_out})")
    rng = ensure_rng(rng)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def he_uniform(fan_in: int, fan_out: int, rng=None) -> np.ndarray:
    """He et al. (2015): U(-a, a) with a = sqrt(6 / fan_in), for ReLU."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fans must be > 0, got ({fan_in}, {fan_out})")
    rng = ensure_rng(rng)
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def zeros(fan_in: int, fan_out: int, rng=None) -> np.ndarray:
    """All-zero init (biases)."""
    return np.zeros((fan_in, fan_out))
