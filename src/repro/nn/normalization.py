"""Batch normalization (Ioffe & Szegedy, 2015).

§6 of the paper: "New deep learning techniques ... such [as] batch
normalization and continuous Deep Q learning, need be systematically
evaluated and added to CAPES."  This is the batch-normalization half:
a 1-D feature normalizer usable between the MLP's dense layers.

Semantics follow the original paper: per-feature standardization using
minibatch statistics during training, running-average statistics during
inference, with learned scale (γ) and shift (β).  Inference mode
matters for CAPES because action selection runs on single observations
(batch of one), where minibatch statistics are undefined.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Layer, Parameter
from repro.util.validation import check_in_range, check_positive


class BatchNorm1d(Layer):
    """Per-feature batch normalization over (batch, features) inputs."""

    def __init__(
        self,
        num_features: int,
        momentum: float = 0.1,
        eps: float = 1e-5,
        name: str = "bn",
    ):
        check_positive("num_features", num_features)
        check_in_range("momentum", momentum, 0.0, 1.0, low_inclusive=False)
        check_positive("eps", eps)
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.name = name
        self.gamma = Parameter(f"{name}.gamma", np.ones(num_features))
        self.beta = Parameter(f"{name}.beta", np.zeros(num_features))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self.training = True
        # Backward cache.
        self._xhat: Optional[np.ndarray] = None
        self._inv_std: Optional[np.ndarray] = None

    def parameters(self):
        return [self.gamma, self.beta]

    def train_mode(self) -> None:
        self.training = True

    def eval_mode(self) -> None:
        self.training = False

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"{self.name}: expected (batch, {self.num_features}), "
                f"got {x.shape}"
            )
        if self.training:
            if x.shape[0] < 2:
                # Minibatch statistics of one sample are degenerate;
                # fall back to running statistics (standard practice for
                # online RL where acting uses batch size 1).
                mean, var = self.running_mean, self.running_var
            else:
                mean = x.mean(axis=0)
                var = x.var(axis=0)
                self.running_mean += self.momentum * (mean - self.running_mean)
                self.running_var += self.momentum * (var - self.running_var)
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - mean) * inv_std
        self._xhat = xhat
        self._inv_std = np.broadcast_to(inv_std, x.shape)
        return xhat * self.gamma.value + self.beta.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._xhat is None or self._inv_std is None:
            raise RuntimeError(f"{self.name}: backward() before forward()")
        grad_out = np.asarray(grad_out, dtype=np.float64)
        xhat = self._xhat
        n = xhat.shape[0]
        self.gamma.grad += (grad_out * xhat).sum(axis=0)
        self.beta.grad += grad_out.sum(axis=0)
        g = grad_out * self.gamma.value
        if not self.training or n < 2:
            # Statistics were constants: plain elementwise chain rule.
            return g * self._inv_std
        # Full batch-norm backward: statistics depend on the batch.
        return (
            self._inv_std
            / n
            * (n * g - g.sum(axis=0) - xhat * (g * xhat).sum(axis=0))
        )
