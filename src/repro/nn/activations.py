"""Elementwise activation layers with explicit backward passes."""

from __future__ import annotations

import abc

import numpy as np


class Activation(abc.ABC):
    """Stateless elementwise nonlinearity.

    ``forward`` caches whatever ``backward`` needs; each instance is
    used at exactly one position in a network, so a single cached
    tensor suffices.
    """

    @abc.abstractmethod
    def forward(self, x: np.ndarray) -> np.ndarray: ...

    @abc.abstractmethod
    def backward(self, grad_out: np.ndarray) -> np.ndarray: ...


class Tanh(Activation):
    """Hyperbolic tangent — the paper's hidden-layer nonlinearity (§3.4)."""

    def __init__(self) -> None:
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward() before forward()")
        return grad_out * (1.0 - self._y**2)


class ReLU(Activation):
    """Rectifier, for the activation ablation."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward() before forward()")
        return grad_out * self._mask


class Identity(Activation):
    """Linear pass-through (the output head)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out


ACTIVATIONS = {"tanh": Tanh, "relu": ReLU, "identity": Identity}


def make_activation(name: str) -> Activation:
    """Instantiate an activation by name (checkpoint deserialisation)."""
    try:
        return ACTIVATIONS[name]()
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; choose from {sorted(ACTIVATIONS)}"
        ) from None
