"""Pure-NumPy deep-learning substrate (the TensorFlow substitute).

CAPES's prototype built its Q-network in TensorFlow 1.0; this package
provides the pieces the paper actually uses, implemented from scratch on
NumPy with explicit forward/backward passes:

- dense layers with Xavier/He initialisation (:mod:`layers`,
  :mod:`initializers`);
- tanh / ReLU / identity activations (:mod:`activations`);
- an MLP container with parameter access for target-network syncing
  (:mod:`network`);
- MSE and Huber losses (:mod:`losses`);
- SGD, Momentum, RMSProp and **Adam** optimizers (:mod:`optimizers`) —
  Adam with the paper's 1e-4 learning rate is the default;
- ``.npz`` checkpointing (:mod:`checkpoint`) for the session save/load
  behaviour the artifact appendix describes.

Everything is float64 and vectorised; the per-minibatch cost is a
handful of matrix multiplies, exactly the regime the HPC guides'
vectorisation advice targets.
"""

from repro.nn.activations import Activation, Identity, ReLU, Tanh
from repro.nn.checkpoint import (
    checkpoint_from_bytes,
    checkpoint_to_bytes,
    load_checkpoint,
    save_checkpoint,
)
from repro.nn.initializers import he_uniform, xavier_uniform, zeros
from repro.nn.layers import Dense, Layer, Parameter
from repro.nn.losses import huber_loss, mse_loss
from repro.nn.network import MLP
from repro.nn.normalization import BatchNorm1d
from repro.nn.optimizers import SGD, Adam, Momentum, Optimizer, RMSProp

__all__ = [
    "BatchNorm1d",
    "Activation",
    "Identity",
    "ReLU",
    "Tanh",
    "xavier_uniform",
    "he_uniform",
    "zeros",
    "Dense",
    "Layer",
    "Parameter",
    "mse_loss",
    "huber_loss",
    "MLP",
    "Optimizer",
    "SGD",
    "Momentum",
    "RMSProp",
    "Adam",
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_to_bytes",
    "checkpoint_from_bytes",
]
