"""The multi-layer perceptron container (§3.4).

"We use a standard two-hidden-layer MLP with a hyperbolic tangent
nonlinear activation function.  The two hidden layers are of the same
size as the input array.  The final output layer is a fully-connected
linear layer with a single output for each valid action."

:meth:`MLP.for_q_network` builds exactly that topology; the generic
constructor supports the layer-count/width/activation ablations the
paper lists as future work.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn.activations import Activation, Identity, make_activation
from repro.nn.layers import Dense, Layer, Parameter
from repro.util.rng import derive_rng, ensure_rng


class MLP:
    """Fully connected feed-forward network with explicit backprop."""

    def __init__(
        self,
        layer_dims: Sequence[int],
        hidden_activation: str = "tanh",
        use_batchnorm: bool = False,
        rng=None,
    ):
        if len(layer_dims) < 2:
            raise ValueError("need at least input and output dims")
        if any(d <= 0 for d in layer_dims):
            raise ValueError(f"all dims must be > 0: {layer_dims}")
        self.layer_dims = [int(d) for d in layer_dims]
        self.hidden_activation = hidden_activation
        self.use_batchnorm = bool(use_batchnorm)
        rng = ensure_rng(rng)
        self._dense: List[Dense] = []
        self._acts: List[Activation] = []
        self._norms: List[Optional["BatchNorm1d"]] = []
        n = len(self.layer_dims) - 1
        for i in range(n):
            layer_rng = derive_rng(rng, "layer", i)
            self._dense.append(
                Dense(
                    self.layer_dims[i],
                    self.layer_dims[i + 1],
                    name=f"fc{i}",
                    rng=layer_rng,
                )
            )
            is_output = i == n - 1
            self._acts.append(
                Identity() if is_output else make_activation(hidden_activation)
            )
            if self.use_batchnorm and not is_output:
                from repro.nn.normalization import BatchNorm1d

                self._norms.append(
                    BatchNorm1d(self.layer_dims[i + 1], name=f"bn{i}")
                )
            else:
                self._norms.append(None)

    # -- introspection -----------------------------------------------------
    @property
    def in_dim(self) -> int:
        return self.layer_dims[0]

    @property
    def out_dim(self) -> int:
        return self.layer_dims[-1]

    def parameters(self) -> List[Parameter]:
        out: List[Parameter] = []
        for d, norm in zip(self._dense, self._norms):
            out.extend(d.parameters())
            if norm is not None:
                out.extend(norm.parameters())
        return out

    def train_mode(self) -> None:
        """Use minibatch statistics in any normalization layers."""
        for norm in self._norms:
            if norm is not None:
                norm.train_mode()

    def eval_mode(self) -> None:
        """Use running statistics (single-observation action selection)."""
        for norm in self._norms:
            if norm is not None:
                norm.eval_mode()

    def num_parameters(self) -> int:
        return sum(p.value.size for p in self.parameters())

    def nbytes(self) -> int:
        """In-memory model size (Table 2's 'size of the DNN model')."""
        return sum(p.value.nbytes + p.grad.nbytes for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- compute ------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Batched forward pass: (batch, in_dim) -> (batch, out_dim)."""
        h = np.asarray(x, dtype=np.float64)
        squeeze = False
        if h.ndim == 1:
            h = h[None, :]
            squeeze = True
        for dense, act, norm in zip(self._dense, self._acts, self._norms):
            h = dense.forward(h)
            if norm is not None:
                h = norm.forward(h)
            h = act.forward(h)
        return h[0] if squeeze else h

    __call__ = forward

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate; accumulates parameter grads, returns input grad."""
        g = np.asarray(grad_out, dtype=np.float64)
        if g.ndim == 1:
            g = g[None, :]
        for dense, act, norm in zip(
            reversed(self._dense), reversed(self._acts), reversed(self._norms)
        ):
            g = act.backward(g)
            if norm is not None:
                g = norm.backward(g)
            g = dense.backward(g)
        return g

    # -- weight transfer -------------------------------------------------------
    def get_weights(self) -> List[np.ndarray]:
        return [p.value.copy() for p in self.parameters()]

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        params = self.parameters()
        if len(weights) != len(params):
            raise ValueError(
                f"expected {len(params)} arrays, got {len(weights)}"
            )
        for p, w in zip(params, weights):
            w = np.asarray(w, dtype=np.float64)
            if w.shape != p.value.shape:
                raise ValueError(
                    f"{p.name}: shape {w.shape} != {p.value.shape}"
                )
            p.value[...] = w

    def clone(self) -> "MLP":
        """Structural copy with identical weights (target-network init)."""
        twin = MLP(
            self.layer_dims,
            self.hidden_activation,
            use_batchnorm=self.use_batchnorm,
            rng=0,
        )
        twin.set_weights(self.get_weights())
        for mine, theirs in zip(self._norms, twin._norms):
            if mine is not None and theirs is not None:
                theirs.running_mean[...] = mine.running_mean
                theirs.running_var[...] = mine.running_var
        return twin

    # -- canonical CAPES topology ------------------------------------------------
    @classmethod
    def for_q_network(
        cls,
        obs_dim: int,
        n_actions: int,
        n_hidden_layers: int = 2,
        hidden_size: Optional[int] = None,
        hidden_activation: str = "tanh",
        use_batchnorm: bool = False,
        rng=None,
    ) -> "MLP":
        """Build the paper's Q-network topology.

        ``hidden_size`` defaults to the input width, per §3.4 ("the two
        hidden layers are of the same size as the input array").
        """
        if n_hidden_layers < 1:
            raise ValueError("need at least one hidden layer")
        width = obs_dim if hidden_size is None else int(hidden_size)
        dims = [obs_dim] + [width] * n_hidden_layers + [n_actions]
        return cls(
            dims,
            hidden_activation=hidden_activation,
            use_batchnorm=use_batchnorm,
            rng=rng,
        )
