"""Loss functions returning (value, gradient-wrt-prediction) pairs."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def mse_loss(pred: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean squared error over all elements — Equation 1's loss.

    Returns the scalar loss and dL/dpred.
    """
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    diff = pred - target
    n = diff.size
    return float((diff**2).mean()), (2.0 / n) * diff


def huber_loss(
    pred: np.ndarray, target: np.ndarray, delta: float = 1.0
) -> Tuple[float, np.ndarray]:
    """Huber loss — the DQN literature's standard error clipping.

    Quadratic within ``delta`` of the target, linear outside; gradients
    saturate at ±delta/n, which keeps early bootstrapped targets from
    blowing up the optimiser.
    """
    if delta <= 0:
        raise ValueError(f"delta must be > 0, got {delta}")
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    diff = pred - target
    absd = np.abs(diff)
    quad = absd <= delta
    vals = np.where(quad, 0.5 * diff**2, delta * (absd - 0.5 * delta))
    grads = np.where(quad, diff, delta * np.sign(diff))
    n = diff.size
    return float(vals.mean()), grads / n
