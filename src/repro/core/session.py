"""Training and evaluation session drivers.

A session owns a DQN agent bound to one
:class:`~repro.env.protocol.Environment` (any registered backend — the
reference is the ``"sim-lustre"`` simulated cluster) and reproduces the
paper's operational cycle (appendix A.4):

1. ``train(n_ticks)`` — online training: ε-greedy actions every action
   tick, with SGD delegated to a :class:`~repro.train.loop.TrainerLoop`
   (``trainer_backend="inline"`` keeps the historical
   one-burst-per-tick cadence byte-identically; ``"serial"``
   interleaves bursts; ``"process"`` trains continuously in a forked
   worker, §3);
2. ``evaluate(n_ticks)`` — measurement: greedy policy, no training;
3. ``save()`` / ``load()`` — "CAPES automatically checkpoints and
   stores the trained model when being stopped, and loads the saved
   model when being started next time."

``attach_schedule`` wires a workload schedule's phase changes to the
agent's ε bump (§3.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.env.protocol import Environment
from repro.nn.checkpoint import load_checkpoint, save_checkpoint
from repro.replaydb.sampler import MinibatchSampler
from repro.rl.agent import DQNAgent
from repro.train.loop import PackedFeed, TrainerConfig, TrainerLoop
from repro.util.rng import derive_rng, ensure_rng
from repro.util.validation import check_positive
from repro.workloads.schedule import WorkloadSchedule


@dataclass
class TrainResult:
    """Everything a training run produced, tick by tick."""

    n_ticks: int
    rewards: np.ndarray  # objective value per tick
    losses: np.ndarray  # prediction error per performed train step
    epsilon_trace: np.ndarray  # ε at each tick
    action_counts: np.ndarray  # histogram over the action space
    final_params: dict

    @property
    def mean_reward(self) -> float:
        return float(self.rewards.mean()) if len(self.rewards) else 0.0


@dataclass
class EvalResult:
    """A measurement run (no exploration, no training)."""

    n_ticks: int
    rewards: np.ndarray  # objective value per tick
    params_trace: List[dict]
    final_params: dict

    @property
    def mean_reward(self) -> float:
        return float(self.rewards.mean()) if len(self.rewards) else 0.0


class CapesSession:
    """One CAPES deployment against one environment."""

    def __init__(
        self,
        env: Environment,
        seed: int = 0,
        train_steps_per_tick: int = 1,
        loss: str = "mse",
        trainer_backend: str = "inline",
        train_ratio: Optional[float] = None,
        sync_every: int = 64,
    ):
        check_positive("train_steps_per_tick", train_steps_per_tick)
        self.env = env
        self.train_steps_per_tick = int(train_steps_per_tick)
        #: SGD steps granted per action tick; defaults to the session's
        #: ``train_steps_per_tick`` (the historical knob), but may be
        #: fractional for decoupled backends.
        self.train_ratio = (
            float(train_ratio)
            if train_ratio is not None
            else float(self.train_steps_per_tick)
        )
        self.trainer_config = TrainerConfig(
            backend=trainer_backend,
            train_ratio=self.train_ratio,
            sync_every=sync_every,
        )
        root = ensure_rng(seed)
        self.agent = DQNAgent(
            obs_dim=env.obs_dim,
            n_actions=env.n_actions,
            hp=env.hp,
            loss=loss,
            rng=derive_rng(root, "agent"),
        )
        self._sampler_seed = int(derive_rng(root, "sampler").integers(2**31))
        self.sampler: Optional[MinibatchSampler] = None
        self.trainer: Optional[TrainerLoop] = None
        self._obs: Optional[np.ndarray] = None

    # -- lifecycle ---------------------------------------------------------
    def ensure_started(self) -> None:
        """Reset the environment on first use; later calls are no-ops."""
        if self._obs is None:
            self._obs = self.env.reset()
            self.sampler = self.env.make_sampler(seed=self._sampler_seed)

    def restart_environment(self) -> None:
        """Force a fresh target system (keeps the trained agent)."""
        self.shutdown_trainer()
        self._obs = self.env.reset()
        self.sampler = self.env.make_sampler(seed=self._sampler_seed)

    def _ensure_trainer(self) -> TrainerLoop:
        """Build (once) the trainer loop this session delegates SGD to.

        In-process backends share the session's live sampler (rebuilt
        on environment restarts, hence the callable); the process
        backend mirrors the environment's replay feed into its worker
        and samples there.
        """
        if self.trainer is None:
            if self.trainer_config.backend == "process":
                # Mirror-cache sizing: match the env's own replay cache
                # when it exposes one (the ``db`` attribute is sim-lustre
                # convention, not an Environment protocol member).
                db = getattr(self.env, "db", None)
                self.trainer = TrainerLoop(
                    self.agent,
                    self.trainer_config,
                    feed=PackedFeed(self.env),
                    frame_width=self.env.frame_dim,
                    stride=None,
                    sampler_seed=self._sampler_seed,
                    cache_capacity=(
                        db.cache.capacity if db is not None else 250_000
                    ),
                )
            else:
                self.trainer = TrainerLoop(
                    self.agent,
                    self.trainer_config,
                    sampler=lambda: self.sampler,
                )
            self.trainer.begin()
        return self.trainer

    def shutdown_trainer(self) -> None:
        """Stop and discard the trainer loop (fresh one on next train).

        Called on environment restarts — the replay tick space starts
        over, so a process worker's mirrored cache would go stale — and
        available to tests/drivers for deterministic teardown.
        """
        if self.trainer is not None:
            self.trainer.stop()
            self.trainer = None

    def attach_schedule(self, schedule: WorkloadSchedule) -> None:
        """Bump ε whenever the schedule starts a new workload phase."""
        schedule.on_phase_change(lambda _p: self.agent.notify_workload_change())

    def _flush_replay(self) -> None:
        """Commit the environment's durable replay store, if it has one.

        The per-record writers never commit (they would serialize the
        hot path); instead every session segment boundary — the natural
        checkpoint — flushes, so a crash mid-session loses at most the
        current segment, not the whole store Figure 4's multi-session
        reload depends on.
        """
        commit = getattr(self.env, "commit_replay", None)
        if commit is not None:
            commit()

    # -- training -------------------------------------------------------------
    def train(self, n_ticks: int) -> TrainResult:
        """Run ``n_ticks`` of online ε-greedy training.

        Acting stays on this loop; SGD cadence belongs to the trainer
        backend.  ``inline`` (default) runs its burst inside every tick
        exactly as the historical session did; ``serial`` interleaves;
        ``process`` trains concurrently in its worker, the policy here
        refreshing from versioned weight broadcasts.  Every backend
        ends the call fully drained — the same total step budget spent,
        the same weights adopted — so segment boundaries line up.
        """
        check_positive("n_ticks", n_ticks)
        self.ensure_started()
        assert self._obs is not None and self.sampler is not None
        trainer = self._ensure_trainer()
        rewards = np.zeros(n_ticks)
        eps_trace = np.zeros(n_ticks)
        action_counts = np.zeros(self.env.n_actions, dtype=np.int64)
        losses: List[float] = []
        obs = self._obs
        # The stacked observation lands in one reused buffer tick after
        # tick; the agent consumes it before the next overwrite.
        obs_buf = np.empty(self.env.obs_dim)
        for i in range(n_ticks):
            eps_trace[i] = self.agent.epsilon.value
            action = self.agent.act(obs)
            action_counts[action] += 1
            obs, reward, _info = self.env.step(action, out=obs_buf)
            rewards[i] = reward
            losses.extend(trainer.notify_ticks(1))
        losses.extend(trainer.drain())
        self._obs = obs
        self._flush_replay()
        return TrainResult(
            n_ticks=n_ticks,
            rewards=rewards,
            losses=np.array(losses),
            epsilon_trace=eps_trace,
            action_counts=action_counts,
            final_params=self.env.current_params(),
        )

    # -- evaluation ------------------------------------------------------------
    def evaluate(self, n_ticks: int, greedy: bool = True) -> EvalResult:
        """Measure the tuned system: policy actions, no training."""
        check_positive("n_ticks", n_ticks)
        self.ensure_started()
        assert self._obs is not None
        rewards = np.zeros(n_ticks)
        params_trace: List[dict] = []
        obs = self._obs
        obs_buf = np.empty(self.env.obs_dim)
        for i in range(n_ticks):
            action = self.agent.act(obs, greedy=greedy)
            obs, reward, info = self.env.step(action, out=obs_buf)
            rewards[i] = reward
            params_trace.append(info["params"])
        self._obs = obs
        self._flush_replay()
        return EvalResult(
            n_ticks=n_ticks,
            rewards=rewards,
            params_trace=params_trace,
            final_params=self.env.current_params(),
        )

    # -- monitoring-only + offline training (§3.3) -------------------------
    def collect(self, n_ticks: int) -> np.ndarray:
        """Monitoring-only operation: record observations and NULL
        actions without consulting the DNN or training.

        §3.3: the Interface Daemon "enables independent control of the
        Monitoring Agent and the DRL Engine so we can choose to do
        solely monitoring or training on demand."  Data collected this
        way is valid replay input (every tick's action is NULL), so a
        model can later be trained offline with :meth:`train_offline`.
        """
        check_positive("n_ticks", n_ticks)
        self.ensure_started()
        rewards = np.zeros(n_ticks)
        obs_buf = np.empty(self.env.obs_dim)
        for i in range(n_ticks):
            _obs, reward, _info = self.env.step(0, out=obs_buf)  # NULL action
            rewards[i] = reward
        self._obs = self.env.current_observation()
        self._flush_replay()
        return rewards

    def train_offline(self, n_steps: int) -> np.ndarray:
        """Run SGD steps against already-collected replay data only.

        The target system is not touched; this is the "training on
        demand" half of §3.3, and what a production deployment does
        overnight with the day's monitoring data.
        """
        check_positive("n_steps", n_steps)
        self.ensure_started()
        assert self.sampler is not None
        losses = []
        for _ in range(n_steps):
            loss = self.agent.train_from_sampler(self.sampler)
            if loss is not None:
                losses.append(loss)
        return np.array(losses)

    def measure_baseline(self, n_ticks: int) -> np.ndarray:
        """Per-tick objective with CAPES inactive (no actions at all)."""
        check_positive("n_ticks", n_ticks)
        self.ensure_started()
        rewards = self.env.run_ticks(n_ticks)
        # The observation stack advanced while we watched; refresh it.
        self._obs = self.env.current_observation()
        return rewards

    # -- checkpointing -------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Checkpoint the trained model (+ optimiser state, ε, steps).

        A live decoupled trainer is drained first, so the stored
        weights include every SGD step granted so far — identical to
        what an inline session would have stored.
        """
        if self.trainer is not None:
            self.trainer.drain()
        self._flush_replay()
        save_checkpoint(
            path,
            self.agent.online.net,
            optimizer=self.agent.optimizer,
            extra={
                "epsilon": self.agent.epsilon.value,
                "train_steps": self.agent.train_steps,
            },
        )

    def load(self, path: Union[str, Path]) -> None:
        """Restore a checkpoint into the live agent.

        If a decoupled trainer is running, its weight-version lineage
        is invalidated: any broadcast already in flight belongs to the
        pre-load weights and must not overwrite what was just loaded
        (the worker itself restarts from the restored weights).
        """
        net, extras = load_checkpoint(path, optimizer=self.agent.optimizer)
        if net.layer_dims != self.agent.online.net.layer_dims:
            raise ValueError(
                f"checkpoint topology {net.layer_dims} does not match this "
                f"session's network {self.agent.online.net.layer_dims}"
            )
        self.agent.adopt_network(net)
        if "epsilon" in extras:
            self.agent.epsilon._value = float(extras["epsilon"])
        if "train_steps" in extras:
            self.agent.train_steps = int(extras["train_steps"])
        if self.trainer is not None:
            self.trainer.invalidate_weights()
