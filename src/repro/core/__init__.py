"""CAPES control plane: the paper's primary contribution, assembled.

- :mod:`actions` — tunable-parameter descriptions and the discrete
  action space (one increase and one decrease action per parameter plus
  NULL, §3.7);
- :mod:`checker` — the Action Checker that vetoes egregiously bad
  actions before broadcast;
- :mod:`control` — per-client Control Agents that apply parameter
  changes;
- :mod:`interface_daemon` — the Interface Daemon: ingests monitoring
  messages, writes the Replay DB, broadcasts checked actions, and
  relays workload-change notifications;
- :mod:`session` — training and evaluation session drivers with
  checkpointing;
- :mod:`capes` — the top-level facade a user instantiates.
"""

from repro.core.actions import ActionSpace, TunableParameter
from repro.core.capes import CAPES, CapesConfig
from repro.core.checker import ActionChecker
from repro.core.control import ControlAgent
from repro.core.interface_daemon import InterfaceDaemon
from repro.core.session import CapesSession, EvalResult, TrainResult

__all__ = [
    "TunableParameter",
    "ActionSpace",
    "ActionChecker",
    "ControlAgent",
    "InterfaceDaemon",
    "CapesSession",
    "TrainResult",
    "EvalResult",
    "CAPES",
    "CapesConfig",
]
