"""conf.py-style configuration loading (artifact appendix A.3).

"All CAPES configuration settings are in the file conf.py in the top
level directory. ... These two functions are Python functions that can
be defined anywhere and imported in conf.py."

A configuration file is a Python script executed in an isolated
namespace; it must define a ``WORKLOAD(cluster, seed)`` factory and may
override any of the names in :data:`DEFAULTS`.  :func:`load_config`
turns the file into a ready :class:`~repro.core.capes.CapesConfig`.

Example ``conf.py``::

    from repro.workloads import RandomReadWrite

    N_SERVERS = 2
    N_CLIENTS = 5
    READ_FRACTION = 0.1
    TRAIN_STEPS_PER_TICK = 4
    ADAM_LEARNING_RATE = 5e-4

    def WORKLOAD(cluster, seed):
        return RandomReadWrite(
            cluster, read_fraction=READ_FRACTION, seed=seed)
"""

from __future__ import annotations

import runpy
from dataclasses import fields
from pathlib import Path
from typing import Any, Dict, Union

from repro.cluster.cluster import ClusterConfig
from repro.core.capes import CapesConfig
from repro.env.tuning_env import EnvConfig
from repro.rl.hyperparams import Hyperparameters

#: Recognised configuration names, their defaults, and where they land.
DEFAULTS: Dict[str, Any] = {
    # cluster
    "N_SERVERS": 4,
    "N_CLIENTS": 5,
    "DISK_KIND": "hdd",
    "MAX_RPCS_IN_FLIGHT": 8,
    "IO_RATE_LIMIT": 10_000.0,
    # hyperparameters (Table 1 names, upper-cased)
    "HIDDEN_LAYER_SIZE": None,
    "N_HIDDEN_LAYERS": 2,
    "ADAM_LEARNING_RATE": 1e-4,
    "DISCOUNT_RATE": 0.99,
    "TARGET_NETWORK_UPDATE_RATE": 0.01,
    "EXPLORATION_TICKS": 7200,
    "MINIBATCH_SIZE": 32,
    "SAMPLING_TICKS_PER_OBSERVATION": 10,
    "MISSING_ENTRY_TOLERANCE": 0.20,
    # environment
    "DROP_PROBABILITY": 0.0,
    "DB_PATH": ":memory:",
    "REPLAY_CAPACITY": 250_000,
    "SEED": 0,
    "INCLUDE_SERVER_PIS": False,
    "INCLUDE_TIME_FEATURES": False,
    # session
    "TRAIN_STEPS_PER_TICK": 1,
    "LOSS": "mse",
    # decoupled trainer (repro.train): inline | serial | process
    "TRAINER_BACKEND": "inline",
    "TRAIN_RATIO": None,
    "SYNC_EVERY": 64,
}

_HP_KEYS = {
    "HIDDEN_LAYER_SIZE": "hidden_layer_size",
    "N_HIDDEN_LAYERS": "n_hidden_layers",
    "ADAM_LEARNING_RATE": "adam_learning_rate",
    "DISCOUNT_RATE": "discount_rate",
    "TARGET_NETWORK_UPDATE_RATE": "target_network_update_rate",
    "EXPLORATION_TICKS": "exploration_ticks",
    "MINIBATCH_SIZE": "minibatch_size",
    "SAMPLING_TICKS_PER_OBSERVATION": "sampling_ticks_per_observation",
    "MISSING_ENTRY_TOLERANCE": "missing_entry_tolerance",
}


class ConfigError(ValueError):
    """Raised for malformed configuration files."""


def load_config(path: Union[str, Path]) -> CapesConfig:
    """Execute ``path`` as a conf.py and build a :class:`CapesConfig`."""
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"configuration file {path} does not exist")
    namespace = runpy.run_path(str(path))

    workload = namespace.get("WORKLOAD")
    if workload is None or not callable(workload):
        raise ConfigError(
            f"{path} must define a callable WORKLOAD(cluster, seed)"
        )

    # Reject unknown ALL_CAPS names: silent typos in tuning configs are
    # exactly the kind of operational error the artifact's conf.py
    # comments warn about.
    known = set(DEFAULTS) | {"WORKLOAD"}
    unknown = [
        k
        for k in namespace
        if k.isupper() and not k.startswith("_") and k not in known
    ]
    if unknown:
        raise ConfigError(
            f"{path}: unknown configuration names {sorted(unknown)}; "
            f"known names: {sorted(known)}"
        )

    values = {k: namespace.get(k, v) for k, v in DEFAULTS.items()}

    cluster = ClusterConfig(
        n_servers=int(values["N_SERVERS"]),
        n_clients=int(values["N_CLIENTS"]),
        disk_kind=values["DISK_KIND"],
        max_rpcs_in_flight=int(values["MAX_RPCS_IN_FLIGHT"]),
        io_rate_limit=float(values["IO_RATE_LIMIT"]),
    )
    hp = Hyperparameters(
        **{field: values[key] for key, field in _HP_KEYS.items()}
    )
    env = EnvConfig(
        cluster=cluster,
        workload_factory=workload,
        hp=hp,
        drop_probability=float(values["DROP_PROBABILITY"]),
        db_path=str(values["DB_PATH"]),
        replay_capacity=int(values["REPLAY_CAPACITY"]),
        seed=int(values["SEED"]),
        include_server_pis=bool(values["INCLUDE_SERVER_PIS"]),
        include_time_features=bool(values["INCLUDE_TIME_FEATURES"]),
    )
    return CapesConfig(
        env=env,
        seed=int(values["SEED"]),
        train_steps_per_tick=int(values["TRAIN_STEPS_PER_TICK"]),
        loss=str(values["LOSS"]),
        trainer_backend=str(values["TRAINER_BACKEND"]),
        train_ratio=(
            None
            if values["TRAIN_RATIO"] is None
            else float(values["TRAIN_RATIO"])
        ),
        sync_every=int(values["SYNC_EVERY"]),
    )
