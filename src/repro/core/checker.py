"""The Action Checker (§3.7, Figure 1).

"Before broadcast, the Interface Daemon will call an Action checker to
rule out egregiously bad actions, such as setting the CPU clock rate
to 0. ... if there are known bad parameter values, they can be shielded
from the target system."

Rules are predicates over ``(parameter_name, proposed_value)``; a veto
turns the action into NULL (recorded so the training data reflects what
actually happened).  Range clamping already lives in the action space —
the checker is for *domain* knowledge, e.g. the appendix's "the RPC
congestion window size for Lustre should not be smaller than eight".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.actions import ActionEffect, ActionSpace

#: Returns True when the proposed value is acceptable.
Rule = Callable[[str, float], bool]


@dataclass
class ActionChecker:
    """Chain of veto rules applied before an action is broadcast."""

    rules: List[Rule] = field(default_factory=list)
    vetoes: int = 0

    def add_rule(self, rule: Rule) -> None:
        self.rules.append(rule)

    def add_minimum(self, parameter: str, minimum: float) -> None:
        """Convenience: forbid values of ``parameter`` below ``minimum``."""
        self.rules.append(
            lambda name, value: name != parameter or value >= minimum
        )

    def add_maximum(self, parameter: str, maximum: float) -> None:
        self.rules.append(
            lambda name, value: name != parameter or value <= maximum
        )

    def check(self, effect: ActionEffect) -> bool:
        """True if the proposed effect passes every rule."""
        if effect.is_null:
            return True
        assert effect.parameter is not None and effect.new_value is not None
        for rule in self.rules:
            if not rule(effect.parameter, effect.new_value):
                self.vetoes += 1
                return False
        return True

    def filter(self, space: ActionSpace, action: int, get) -> int:
        """Return ``action`` if acceptable, else the NULL action."""
        effect = space.propose(action, get)
        return action if self.check(effect) else ActionSpace.NULL_ACTION
