"""The Interface Daemon (§3.3, Figure 1).

The traffic hub of CAPES: receives wire messages from every Monitoring
Agent, reconstructs per-client PI frames, assembles them into
cluster-wide tick records in the Replay DB, runs decided actions
through the Action Checker, broadcasts accepted actions to the Control
Agents, and records them — "these actions are also stored within the
Replay DB, as part of Experience Replay".

It is also the only Replay-DB writer, matching the paper's locking
argument, and it keeps a short ring of assembled frames so the DRL
engine can read the *current* observation without a DB round trip.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.actions import ActionEffect, ActionSpace
from repro.core.checker import ActionChecker
from repro.core.control import ControlAgent
from repro.replaydb.db import ReplayDB
from repro.telemetry.wire import DifferentialDecoder
from repro.util.ringbuffer import RingBuffer


class InterfaceDaemon:
    """Message hub between monitoring agents, Replay DB and controls."""

    def __init__(
        self,
        n_clients: int,
        client_frame_width: int,
        db: ReplayDB,
        action_space: ActionSpace,
        control_agents: Sequence[ControlAgent],
        checker: Optional[ActionChecker] = None,
        obs_ticks: int = 10,
        extra_frame_width: int = 0,
        extra_frame_provider=None,
    ):
        """``extra_frame_provider(tick) -> ndarray`` appends additional
        columns to every stored cluster frame — the hook that carries
        the optional server-side PIs (§6) and date/time features (§3.1)
        without the daemon knowing their semantics."""
        if n_clients <= 0:
            raise ValueError(f"n_clients must be > 0, got {n_clients}")
        if (extra_frame_width > 0) != (extra_frame_provider is not None):
            raise ValueError(
                "extra_frame_width and extra_frame_provider must be "
                "given together"
            )
        expected = n_clients * client_frame_width + extra_frame_width
        if db.frame_width != expected:
            raise ValueError(
                f"replay DB frame width {db.frame_width} != n_clients × "
                f"client frame width + extra = {expected}"
            )
        self.extra_frame_width = int(extra_frame_width)
        self.extra_frame_provider = extra_frame_provider
        self.cluster_frame_width = int(expected)
        self.n_clients = int(n_clients)
        self.client_frame_width = int(client_frame_width)
        self.db = db
        self.action_space = action_space
        self.checker = checker or ActionChecker()
        self.control_agents = list(control_agents)
        self._decoders: Dict[int, DifferentialDecoder] = {
            cid: DifferentialDecoder(client_frame_width)
            for cid in range(n_clients)
        }
        # Frames received for the tick currently being assembled.
        self._pending: Dict[int, Dict[int, np.ndarray]] = {}
        self._recent = RingBuffer(obs_ticks, shape=expected)
        self.ticks_stored = 0
        self.ticks_incomplete = 0
        self.actions_broadcast = 0

    # -- monitoring ingest ------------------------------------------------
    def ingest(self, client_id: int, message: bytes) -> None:
        """Decode one Monitoring Agent message and buffer its frame."""
        if client_id not in self._decoders:
            raise KeyError(f"unknown client {client_id}")
        tick, frame = self._decoders[client_id].decode(message)
        self._pending.setdefault(tick, {})[client_id] = frame

    def finish_tick(self, tick: int) -> bool:
        """Close out ``tick``: store its record if every client reported.

        Returns True when the tick was stored.  A tick with any client
        missing is dropped entirely — this is what the replay sampler's
        missing-entry tolerance exists to absorb.
        """
        frames = self._pending.pop(tick, {})
        # Drop any stale partial assemblies older than the tick being
        # closed; they can never complete.
        for old in [t for t in self._pending if t < tick]:
            del self._pending[old]
            self.ticks_incomplete += 1
        if len(frames) < self.n_clients:
            self.ticks_incomplete += 1
            return False
        parts = [frames[cid] for cid in range(self.n_clients)]
        if self.extra_frame_provider is not None:
            extra = np.asarray(
                self.extra_frame_provider(tick), dtype=np.float64
            )
            if extra.shape != (self.extra_frame_width,):
                raise ValueError(
                    f"extra frame provider returned shape {extra.shape}, "
                    f"expected ({self.extra_frame_width},)"
                )
            parts.append(extra)
        cluster_frame = np.concatenate(parts)
        self.db.put_observation(tick, cluster_frame)
        self._recent.append(cluster_frame)
        self.ticks_stored += 1
        return True

    def set_reward(self, tick: int, reward: float) -> None:
        """Attach the objective value measured over ``tick``."""
        self.db.set_reward(tick, reward)

    # -- observations for the DRL engine ------------------------------------
    def current_observation(
        self, out: Optional[np.ndarray] = None
    ) -> Optional[np.ndarray]:
        """Stacked observation ending at the newest stored tick.

        Until a full stack has accumulated the earliest frame is
        repeated backwards (the warm-up padding choice; recorded here
        because training data from the DB never pads — the sampler
        rejects short windows instead).

        ``out``, when given, must be a C-contiguous float64 array of
        ``obs_ticks × cluster frame width`` elements; the observation is
        written into it in place and ``out`` is returned, so per-tick
        collection loops reuse one buffer instead of reallocating.
        """
        if len(self._recent) == 0:
            return None
        cap = self._recent.capacity
        width = self.cluster_frame_width
        if out is None:
            out = np.empty(cap * width)
        elif out.size != cap * width:
            raise ValueError(
                f"out buffer has {out.size} elements, expected "
                f"{cap} ticks x {width} = {cap * width}"
            )
        elif not out.flags["C_CONTIGUOUS"] or out.dtype != np.float64:
            # reshape on a non-viewable buffer would silently write into
            # a temporary copy and hand back the untouched original.
            raise ValueError(
                "out buffer must be a C-contiguous float64 array"
            )
        frames = out.reshape(cap, width)
        pad = cap - len(self._recent)
        self._recent.copy_into(frames[pad:])
        if pad > 0:
            frames[:pad] = frames[pad]
        return out

    # -- actions ---------------------------------------------------------------
    def perform_action(self, tick: int, action: int) -> ActionEffect:
        """Check, broadcast, apply and record ``action`` decided at ``tick``.

        A vetoed action degrades to NULL, and the *recorded* action is
        what was actually performed, keeping replay data truthful.
        """
        get = self.control_agents[0].current
        action = self.checker.filter(self.action_space, action, get)
        effect = self.action_space.propose(action, get)
        if not effect.is_null and effect.new_value != effect.old_value:
            for agent in self.control_agents:
                agent.apply(effect.parameter, effect.new_value)
            self.actions_broadcast += 1
        self.db.put_action(tick, action)
        return effect

    def parameter_values(self) -> Dict[str, float]:
        get = self.control_agents[0].current
        return {p.name: get(p.name) for p in self.action_space.parameters}
