"""Tunable parameters and the discrete action space (§3.7).

"At a fixed rate (every action tick), CAPES decides on an action that
either increases or decreases one parameter by a step size.  The valid
range and tuning step size are customizable for each target system. ...
We also include a NULL action that performs no action for a step.
Thus, the total number of actions we are training the DNN for is
2 × number_of_tunable_parameters + 1."

Action indices: 0 is NULL; parameter *i* owns indices ``2i+1``
(increase) and ``2i+2`` (decrease).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.util.validation import check_positive

#: Read/write access to the live value of a named parameter.
Getter = Callable[[str], float]
Setter = Callable[[str, float], None]


@dataclass(frozen=True)
class TunableParameter:
    """One knob: name, valid range, tuning step, and untuned default."""

    name: str
    low: float
    high: float
    step: float
    default: float

    def __post_init__(self) -> None:
        if self.low >= self.high:
            raise ValueError(
                f"{self.name}: low ({self.low}) must be < high ({self.high})"
            )
        check_positive(f"{self.name}.step", self.step)
        if not self.low <= self.default <= self.high:
            raise ValueError(
                f"{self.name}: default {self.default} outside "
                f"[{self.low}, {self.high}]"
            )

    def clamp(self, value: float) -> float:
        return min(self.high, max(self.low, value))


#: The paper's two Lustre knobs with sensible simulation ranges.
def lustre_parameters(
    window_default: float = 8,
    rate_default: float = 10_000.0,
) -> List[TunableParameter]:
    return [
        TunableParameter(
            "max_rpcs_in_flight", low=1, high=64, step=1, default=window_default
        ),
        TunableParameter(
            "io_rate_limit",
            low=50.0,
            high=10_000.0,
            step=250.0,
            default=rate_default,
        ),
    ]


@dataclass(frozen=True)
class ActionEffect:
    """What applying an action did (or would do)."""

    action: int
    parameter: Optional[str]  # None for NULL
    old_value: Optional[float]
    new_value: Optional[float]

    @property
    def is_null(self) -> bool:
        return self.parameter is None


class ActionSpace:
    """Discrete action space over a list of tunable parameters."""

    NULL_ACTION = 0

    def __init__(self, parameters: Sequence[TunableParameter]):
        if not parameters:
            raise ValueError("need at least one tunable parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter names in {names}")
        self.parameters: List[TunableParameter] = list(parameters)

    @property
    def n_actions(self) -> int:
        """2 × number_of_tunable_parameters + 1."""
        return 2 * len(self.parameters) + 1

    def decode(self, action: int) -> Tuple[Optional[TunableParameter], int]:
        """Return ``(parameter, direction)``; NULL decodes to (None, 0)."""
        if not 0 <= action < self.n_actions:
            raise ValueError(
                f"action {action} out of range [0, {self.n_actions})"
            )
        if action == self.NULL_ACTION:
            return None, 0
        idx, rem = divmod(action - 1, 2)
        return self.parameters[idx], (+1 if rem == 0 else -1)

    def describe(self, action: int) -> str:
        param, direction = self.decode(action)
        if param is None:
            return "NULL"
        arrow = "+" if direction > 0 else "-"
        return f"{param.name} {arrow}{param.step:g}"

    def propose(self, action: int, get: Getter) -> ActionEffect:
        """Compute the effect of ``action`` against current values."""
        param, direction = self.decode(action)
        if param is None:
            return ActionEffect(action, None, None, None)
        old = get(param.name)
        new = param.clamp(old + direction * param.step)
        return ActionEffect(action, param.name, old, new)

    def apply(self, action: int, get: Getter, set_: Setter) -> ActionEffect:
        """Apply ``action`` through the getter/setter pair, clamped."""
        effect = self.propose(action, get)
        if not effect.is_null and effect.new_value != effect.old_value:
            set_(effect.parameter, effect.new_value)
        return effect

    def defaults(self) -> dict[str, float]:
        return {p.name: p.default for p in self.parameters}
