"""Top-level CAPES facade.

What a user of the library instantiates: configuration in, trained
tuner out.  Mirrors the deployment workflow of appendix A.4:

    capes = CAPES(CapesConfig(env=EnvConfig(..., workload_factory=...)))
    capes.train(hours(12))          # online training session
    baseline = capes.measure_baseline(hours(2))
    tuned = capes.evaluate(hours(2))

plus checkpoint save/load for multi-session operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.core.session import CapesSession, EvalResult, TrainResult
from repro.env.tuning_env import EnvConfig, StorageTuningEnv


def hours(h: float, tick_length: float = 1.0) -> int:
    """Convert wall-clock hours of system time into action ticks."""
    n = int(round(h * 3600.0 / tick_length))
    if n <= 0:
        raise ValueError(f"{h} hours is less than one tick")
    return n


@dataclass
class CapesConfig:
    """Facade configuration: the environment plus session knobs.

    ``trainer_backend`` / ``train_ratio`` / ``sync_every`` select and
    tune the decoupled trainer (:mod:`repro.train`); the ``inline``
    default reproduces the historical train-in-the-tick-loop sessions
    byte-identically.
    """

    env: EnvConfig
    seed: int = 0
    train_steps_per_tick: int = 1
    loss: str = "mse"
    trainer_backend: str = "inline"
    train_ratio: Optional[float] = None
    sync_every: int = 64


class CAPES:
    """The Computer Automated Performance Enhancement System."""

    def __init__(self, config: CapesConfig):
        self.config = config
        self.env = StorageTuningEnv(config.env)
        self.session = CapesSession(
            self.env,
            seed=config.seed,
            train_steps_per_tick=config.train_steps_per_tick,
            loss=config.loss,
            trainer_backend=config.trainer_backend,
            train_ratio=config.train_ratio,
            sync_every=config.sync_every,
        )

    # -- the four workflow verbs -----------------------------------------
    def train(self, n_ticks: int) -> TrainResult:
        """Online training against the live system."""
        return self.session.train(n_ticks)

    def evaluate(self, n_ticks: int, greedy: bool = True) -> EvalResult:
        """Measure tuned performance (no training)."""
        return self.session.evaluate(n_ticks, greedy=greedy)

    def measure_baseline(self, n_ticks: int) -> np.ndarray:
        """Measure untuned performance (CAPES off)."""
        return self.session.measure_baseline(n_ticks)

    def save(self, path: Union[str, Path]) -> None:
        self.session.save(path)

    def load(self, path: Union[str, Path]) -> None:
        self.session.load(path)

    # -- measurements for Table 2-style reporting ---------------------------
    def technical_measurements(self) -> dict:
        """Replay-DB and model size numbers (needs a started session)."""
        self.session.ensure_started()
        db = self.env.db
        net = self.session.agent.online.net
        wire = [m.wire_stats for m in self.env.monitors]
        msgs = sum(w.messages for w in wire)
        comp = sum(w.compressed_bytes for w in wire)
        return {
            "replay_records": db.record_count(),
            "replay_disk_bytes": db.on_disk_bytes(),
            "replay_memory_bytes": db.in_memory_bytes(),
            "model_bytes": net.nbytes(),
            "model_parameters": net.num_parameters(),
            "observation_size": self.env.obs_dim,
            "pis_per_client": self.env.frame_dim // len(self.env.monitors),
            "mean_message_bytes": comp / msgs if msgs else 0.0,
        }
