"""Control Agents (§3.7).

"A Control Agent will listen for inbound Action Messages from the
Interface Daemon and will change the system parameters accordingly."

One agent per client node; the Interface Daemon broadcasts the decided
parameter change to all of them (the paper applies the same values on
every client).  Each agent knows how to map parameter names onto its
client's setters and keeps a small audit trail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.cluster.client import ClientNode


@dataclass
class ControlAgent:
    """Applies parameter values to one client node."""

    client: ClientNode
    applied: List[Tuple[str, float]] = field(default_factory=list)

    def _setters(self) -> Dict[str, Callable[[float], None]]:
        return {
            "max_rpcs_in_flight": lambda v: self.client.set_max_rpcs_in_flight(
                int(round(v))
            ),
            "io_rate_limit": lambda v: self.client.set_io_rate_limit(float(v)),
        }

    def supported_parameters(self) -> List[str]:
        return sorted(self._setters())

    def apply(self, name: str, value: float) -> None:
        """Set ``name`` to ``value`` on this agent's client."""
        setter = self._setters().get(name)
        if setter is None:
            raise KeyError(
                f"control agent for client {self.client.client_id} cannot "
                f"set unknown parameter {name!r}"
            )
        setter(value)
        self.applied.append((name, float(value)))

    def current(self, name: str) -> float:
        if name == "max_rpcs_in_flight":
            return float(self.client.max_rpcs_in_flight)
        if name == "io_rate_limit":
            return float(self.client.io_rate_limit)
        raise KeyError(f"unknown parameter {name!r}")
