"""Server-side performance indicators (§6 future work).

"On the Lustre-specific evaluation system, there are many more things
[that] can be done.  For instance, we can collect information from
server nodes in addition to client nodes."

Eight indicators per OSS, same scaling discipline as the client PIs:
queue depth, in-service count, cumulative-rate reads/writes, RPC
arrival rate, disk busy fraction, seek rate and minimum process time.
A :class:`ServerMonitoringAgent` mirrors the client agent: one PI frame
per sampling tick through the same differential wire codec, so enabling
server monitoring is purely additive — the Interface Daemon treats the
extra frames as more columns in the cluster frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.cluster.metrics import Counter
from repro.cluster.server import ServerNode
from repro.sim.engine import Simulator
from repro.telemetry.indicators import CLIP_BOUND
from repro.telemetry.wire import DifferentialEncoder
from repro.util.units import MiB
from repro.util.validation import check_positive


@dataclass(frozen=True)
class ServerIndicator:
    """One server-side PI: reader plus fixed scale."""

    name: str
    scale: float
    read: Callable[["ServerPIState", float], float]


class ServerPIState:
    """Per-server sampling state: rate marks over cumulative counters."""

    def __init__(self, server: ServerNode):
        self.server = server
        self._last_busy = 0.0
        self._last_seeks = 0
        self._last_rpc_in = 0.0
        self._last_read = 0.0
        self._last_written = 0.0

    def busy_fraction(self, tick_len: float) -> float:
        busy = self.server.disk.stats.busy_time
        frac = (busy - self._last_busy) / tick_len
        self._last_busy = busy
        return frac

    def seek_rate(self, tick_len: float) -> float:
        seeks = self.server.disk.stats.seeks
        rate = (seeks - self._last_seeks) / tick_len
        self._last_seeks = seeks
        return rate

    def _metric_rate(self, name: str, attr: str, tick_len: float) -> float:
        value = self.server.metrics.value(
            f"server.{self.server.server_id}.{name}"
        )
        last = getattr(self, attr)
        setattr(self, attr, value)
        return (value - last) / tick_len

    def rpc_rate(self, tick_len: float) -> float:
        return self._metric_rate("rpc_in", "_last_rpc_in", tick_len)

    def read_rate(self, tick_len: float) -> float:
        return self._metric_rate("bytes_read", "_last_read", tick_len)

    def write_rate(self, tick_len: float) -> float:
        return self._metric_rate("bytes_written", "_last_written", tick_len)


#: Per-indicator scales as one vector (see SERVER_INDICATORS order).
def _server_scales() -> np.ndarray:
    return np.array([ind.scale for ind in SERVER_INDICATORS])


SERVER_INDICATORS: List[ServerIndicator] = [
    ServerIndicator(
        "queue_depth", 64.0, lambda st, dt: float(st.server.queue_depth)
    ),
    ServerIndicator(
        "in_service", 16.0, lambda st, dt: float(st.server._in_service)
    ),
    ServerIndicator("read_rate", 50.0 * MiB, lambda st, dt: st.read_rate(dt)),
    ServerIndicator(
        "write_rate", 50.0 * MiB, lambda st, dt: st.write_rate(dt)
    ),
    ServerIndicator("rpc_rate", 500.0, lambda st, dt: st.rpc_rate(dt)),
    ServerIndicator(
        "disk_busy", 1.0, lambda st, dt: st.busy_fraction(dt)
    ),
    ServerIndicator("seek_rate", 200.0, lambda st, dt: st.seek_rate(dt)),
    ServerIndicator(
        "min_process_time",
        0.05,
        lambda st, dt: st.server.min_process_time or 0.0,
    ),
]


def server_frame_width() -> int:
    """PIs per server (8)."""
    return len(SERVER_INDICATORS)


def server_frame(
    state: ServerPIState,
    tick_length: float,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Sample all indicators of one server, scaled and clipped.

    ``out``, when given, receives the frame in place and is returned
    (the no-realloc convention of ``osc_frame(out=)``).
    """
    if out is None:
        out = np.empty(len(SERVER_INDICATORS))
    elif out.size != len(SERVER_INDICATORS):
        raise ValueError(
            f"out buffer has {out.size} elements, expected "
            f"{len(SERVER_INDICATORS)}"
        )
    elif not out.flags["C_CONTIGUOUS"] or out.dtype != np.float64:
        raise ValueError("out buffer must be a C-contiguous float64 array")
    for j, ind in enumerate(SERVER_INDICATORS):
        out[j] = ind.read(state, tick_length)
    np.divide(out, _server_scales(), out=out)
    np.clip(out, -CLIP_BOUND, CLIP_BOUND, out=out)
    return out


class ServerMonitoringAgent:
    """Per-server monitoring agent (pull mode, like the client agents)."""

    def __init__(
        self,
        sim: Simulator,
        server: ServerNode,
        tick_length: float = 1.0,
    ):
        check_positive("tick_length", tick_length)
        self.sim = sim
        self.server = server
        self.tick_length = float(tick_length)
        self.state = ServerPIState(server)
        self.encoder = DifferentialEncoder(server_frame_width())
        # Reused across ticks on the wire path (the encoder copies);
        # sample_frame still returns fresh arrays — its callers hold
        # frames across ticks to concatenate into cluster frames.
        self._frame_buf = np.empty(server_frame_width())
        self.ticks_sampled = 0

    def sample_frame(self, tick: int) -> np.ndarray:
        """Raw (decoded-equivalent) frame for this tick."""
        self.ticks_sampled += 1
        return server_frame(self.state, self.tick_length)

    def sample_once(self, tick: int) -> bytes:
        """Wire-encoded frame (when routed over the control network)."""
        frame = server_frame(self.state, self.tick_length, out=self._frame_buf)
        self.ticks_sampled += 1
        return self.encoder.encode(tick, frame)
