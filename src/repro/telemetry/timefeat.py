"""Date/time performance indicators for cyclical workloads (§3.1).

"Date and time should also be included if the workload is known to be
cyclical, such as many enterprise workloads, however we should not
include it as a single representation.  Instead, it is easier for the
DNN to understand if we include the month, day of the week, hour, and
minute as separate performance indicators."

Simulated time starts at an arbitrary epoch; callers map seconds onto a
calendar with a configurable epoch offset.  Each component is emitted
twice, as sine and cosine of its phase — the standard encoding that
keeps midnight adjacent to 23:59 (a raw 0-59 minute counter would put
them maximally far apart).  A plain scaled copy is also included so the
DNN can see absolute position within each period, mirroring the paper's
"separate performance indicators" guidance.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86_400.0
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY
#: Calendar months vary; the cyclical encoding uses a 30-day period.
SECONDS_PER_MONTH = 30 * SECONDS_PER_DAY

#: Feature labels in emission order.
TIME_FEATURE_LABELS: List[str] = [
    "minute_frac",
    "minute_sin",
    "minute_cos",
    "hour_frac",
    "hour_sin",
    "hour_cos",
    "day_of_week_frac",
    "day_of_week_sin",
    "day_of_week_cos",
    "month_frac",
    "month_sin",
    "month_cos",
]


def time_feature_width() -> int:
    return len(TIME_FEATURE_LABELS)


def _phase_triplet(t: float, period: float) -> tuple[float, float, float]:
    frac = (t % period) / period
    angle = 2.0 * math.pi * frac
    return frac, math.sin(angle), math.cos(angle)


def time_features(t_seconds: float, epoch_offset: float = 0.0) -> np.ndarray:
    """The 12-float time feature vector for simulated time ``t_seconds``.

    ``epoch_offset`` places simulated t=0 at an arbitrary calendar
    instant (e.g. ``3 * SECONDS_PER_DAY + 9 * SECONDS_PER_HOUR`` for
    "Thursday 09:00").
    """
    t = float(t_seconds) + float(epoch_offset)
    if not math.isfinite(t):
        raise ValueError(f"non-finite time {t_seconds!r}")
    out = []
    out.extend(_phase_triplet(t, SECONDS_PER_HOUR))  # minute-of-hour
    out.extend(_phase_triplet(t, SECONDS_PER_DAY))  # hour-of-day
    out.extend(_phase_triplet(t, SECONDS_PER_WEEK))  # day-of-week
    out.extend(_phase_triplet(t, SECONDS_PER_MONTH))  # day-of-month
    return np.array(out, dtype=np.float64)
