"""Objective functions and per-tick reward measurement (§3.2).

"We use the output of an objective function as the reward.  For
single-objective tuning, the objective function equals the tuning
objective measurement, such as throughput or latency.  It is also
common to use an objective function that combines multiple objectives."

:class:`TickRewardSource` measures the objective once per tick from the
cluster's counters; the Interface Daemon stores the value alongside the
tick's observation so the replay sampler can compute transition rewards
(the reward of acting at tick *t* is the objective measured at *t+1* —
"we can measure the change of I/O throughput at the next second").
"""

from __future__ import annotations

import abc
from typing import Dict, Sequence

from repro.cluster.cluster import Cluster
from repro.util.units import MiB
from repro.util.validation import check_positive


class Objective(abc.ABC):
    """Maps one tick of system measurements to a scalar score."""

    @abc.abstractmethod
    def score(self, cluster: Cluster, tick_length: float) -> float:
        """Higher is better.  Called exactly once per sampling tick."""


class ThroughputObjective(Objective):
    """Aggregate I/O throughput in ``scale`` units (default MB/s / 100).

    The paper's primary objective: aggregated read+write throughput
    across all clients.
    """

    READER = "reward-throughput"

    def __init__(self, scale: float = 100.0 * MiB):
        check_positive("scale", scale)
        self.scale = float(scale)

    def score(self, cluster: Cluster, tick_length: float) -> float:
        rd = cluster.metrics.counter("cluster.bytes_read").delta(self.READER)
        wr = cluster.metrics.counter("cluster.bytes_written").delta(self.READER)
        return (rd + wr) / tick_length / self.scale


class LatencyObjective(Objective):
    """Negated mean ping latency across OSCs (lower latency = higher score)."""

    def __init__(self, scale: float = 0.05):
        check_positive("scale", scale)
        self.scale = float(scale)

    def score(self, cluster: Cluster, tick_length: float) -> float:
        lats = [
            osc.ping_latency
            for client in cluster.clients
            for osc in client.oscs.values()
        ]
        mean = sum(lats) / len(lats) if lats else 0.0
        return -mean / self.scale


class CombinedObjective(Objective):
    """Weighted sum of objectives — the paper's multi-objective hook
    ("tune for throughput and latency at the same time", §6)."""

    def __init__(self, parts: Sequence[tuple[Objective, float]]):
        if not parts:
            raise ValueError("CombinedObjective needs at least one part")
        self.parts = list(parts)

    def score(self, cluster: Cluster, tick_length: float) -> float:
        return sum(w * obj.score(cluster, tick_length) for obj, w in self.parts)


class TickRewardSource:
    """Samples the objective once per tick and remembers the last value."""

    def __init__(
        self,
        cluster: Cluster,
        objective: Objective,
        tick_length: float = 1.0,
    ):
        check_positive("tick_length", tick_length)
        self.cluster = cluster
        self.objective = objective
        self.tick_length = float(tick_length)
        self.last_value = 0.0
        self.history: list[float] = []

    def sample(self) -> float:
        """Measure the objective for the tick that just ended."""
        self.last_value = self.objective.score(self.cluster, self.tick_length)
        self.history.append(self.last_value)
        return self.last_value
