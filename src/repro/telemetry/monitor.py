"""Per-client Monitoring Agent (§3.3).

"A Monitoring Agent runs on each node that needs to be monitored.  At a
predesignated sampling frequency, it collects Performance Indicators and
sends them to the Interface Daemon for processing.  We call each of
these actions a sampling tick."

The agent is a simulation process that wakes at every sampling tick,
samples the client's PI frame, differential-encodes it and hands the
wire message to a sink (the Interface Daemon's ingest function).
Monitoring traffic travels the control network in the paper's
deployment, which the data-fabric simulation does not model — the wire
codec still runs for real so message sizes (Table 2) are measured on
actual encoded traffic.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.cluster.client import ClientNode
from repro.sim.engine import Simulator, Timeout
from repro.telemetry.indicators import client_frame, frame_width
from repro.telemetry.wire import DifferentialEncoder
from repro.util.validation import check_positive

#: Daemon-side ingest: (client_id, wire_message_bytes) -> None
MessageSink = Callable[[int, bytes], None]


class MonitoringAgent:
    """Samples one client's PIs every tick and ships them to the daemon."""

    def __init__(
        self,
        sim: Simulator,
        client: ClientNode,
        sink: MessageSink,
        tick_length: float = 1.0,
        drop_probability: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        autostart: bool = True,
    ):
        check_positive("tick_length", tick_length)
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError(
                f"drop_probability must be in [0, 1), got {drop_probability}"
            )
        self.sim = sim
        self.client = client
        self.sink = sink
        self.tick_length = float(tick_length)
        #: Probability a tick's message is lost — exercises the replay
        #: sampler's missing-entry tolerance (Table 1: 20 %).
        self.drop_probability = float(drop_probability)
        self._rng = rng if rng is not None else np.random.default_rng()
        n_servers = len(client.oscs)
        self.encoder = DifferentialEncoder(frame_width(n_servers))
        # Reused every tick: the encoder copies (to float32) before the
        # next sample overwrites it, so one buffer serves the whole run.
        self._frame_buf = np.empty(frame_width(n_servers))
        self.ticks_sampled = 0
        self.ticks_dropped = 0
        # Push mode spawns the sampling process; sessions that drive the
        # clock themselves construct with autostart=False and call
        # :meth:`sample_once` at their own tick boundaries (pull mode).
        self._proc = (
            sim.spawn(self._run(), name=f"monitor.c{client.client_id}")
            if autostart
            else None
        )

    @property
    def wire_stats(self):
        return self.encoder.stats

    def sample_once(self, tick: int) -> bytes:
        """Collect one frame and encode it (exposed for tests)."""
        frame = client_frame(self.client, self.tick_length, out=self._frame_buf)
        return self.encoder.encode(tick, frame)

    def _run(self):
        tick = 0
        while True:
            yield Timeout(self.tick_length)
            tick += 1
            msg = self.sample_once(tick)
            self.ticks_sampled += 1
            if (
                self.drop_probability > 0.0
                and self._rng.random() < self.drop_probability
            ):
                self.ticks_dropped += 1
                # Lost on the control network: the daemon never sees it,
                # and the encoder must resend full state next tick or the
                # decoder would drift.  (Real CAPES runs over TCP, where
                # loss appears as a missing tick, not corrupted state —
                # resetting the differ models the reconnect behaviour.)
                self.encoder.reset()
                continue
            self.sink(self.client.client_id, msg)
