"""Monitoring-side CAPES components.

- :mod:`indicators` — the performance-indicator (PI) registry: the nine
  per-OSC indicators §4.1 lists (window size, read/write throughput,
  dirty bytes, cache size, ping latency, Ack EWMA, Send EWMA, PT ratio)
  plus the rate limit and in-flight count, with fixed scale factors that
  bring every input to O(1) before it reaches the DNN.
- :mod:`monitor` — the per-client Monitoring Agent that samples a PI
  frame every sampling tick.
- :mod:`wire` — the differential, compressed wire protocol between
  agents and the Interface Daemon ("only send out a performance
  indicator when its data is different from the value of the previous
  sampling tick", plus zlib compression); provides the message-size
  measurements of Table 2.
- :mod:`reward` — objective functions turning measured performance into
  the scalar reward (single- and multi-objective, §3.2).
"""

from repro.telemetry.indicators import (
    OSC_INDICATORS,
    Indicator,
    client_frame,
    frame_labels,
    frame_width,
    osc_frame,
)
from repro.telemetry.monitor import MonitoringAgent
from repro.telemetry.server_monitor import (
    SERVER_INDICATORS,
    ServerMonitoringAgent,
    server_frame,
    server_frame_width,
)
from repro.telemetry.timefeat import (
    TIME_FEATURE_LABELS,
    time_feature_width,
    time_features,
)
from repro.telemetry.reward import (
    CombinedObjective,
    LatencyObjective,
    Objective,
    ThroughputObjective,
    TickRewardSource,
)
from repro.telemetry.wire import (
    DecoderPool,
    DifferentialDecoder,
    DifferentialEncoder,
    WireDesyncError,
    WireStats,
)

__all__ = [
    "SERVER_INDICATORS",
    "ServerMonitoringAgent",
    "server_frame",
    "server_frame_width",
    "TIME_FEATURE_LABELS",
    "time_features",
    "time_feature_width",
    "Indicator",
    "OSC_INDICATORS",
    "osc_frame",
    "client_frame",
    "frame_width",
    "frame_labels",
    "MonitoringAgent",
    "DifferentialEncoder",
    "DifferentialDecoder",
    "DecoderPool",
    "WireDesyncError",
    "WireStats",
    "Objective",
    "ThroughputObjective",
    "LatencyObjective",
    "CombinedObjective",
    "TickRewardSource",
]
