"""Differential, compressed agent→daemon wire protocol.

§3.3: "we use a differential communication protocol designed to only
send out a performance indicator when its data is different from the
value of the previous sampling tick.  In addition, all network
communications are compressed."

A message is the zlib-compressed concatenation of ``(uint16 index,
float32 value)`` pairs for every indicator that changed since the last
tick, prefixed by the tick number.  The decoder keeps the previous
frame per sender and reconstructs the full frame.  Message sizes are
tracked so the Table 2 "average message size per client" row can be
measured on real traffic.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

_HEADER = struct.Struct("<qH")  # tick number, changed-entry count
_ENTRY = struct.Struct("<Hf")  # indicator index, float32 value

#: Values closer than this are "unchanged" — float32 wire precision.
CHANGE_EPS = 1e-7


@dataclass
class WireStats:
    """Cumulative protocol statistics (Table 2 inputs)."""

    messages: int = 0
    raw_bytes: int = 0
    compressed_bytes: int = 0
    entries_sent: int = 0

    @property
    def mean_message_size(self) -> float:
        """Average compressed bytes per message."""
        return self.compressed_bytes / self.messages if self.messages else 0.0

    @property
    def compression_ratio(self) -> float:
        return (
            self.raw_bytes / self.compressed_bytes
            if self.compressed_bytes
            else 1.0
        )


class DifferentialEncoder:
    """Client side: turn PI frames into compact change messages."""

    def __init__(self, frame_width: int):
        if frame_width <= 0 or frame_width >= 2**16:
            raise ValueError(f"frame_width out of range: {frame_width}")
        self.frame_width = int(frame_width)
        # Mirror of the decoder's state: the last *transmitted* values.
        # Diffing against the previous frame instead would let sub-epsilon
        # drift accumulate unsent and desynchronise the decoder.
        self._sent: Optional[np.ndarray] = None
        self.stats = WireStats()

    def encode(self, tick: int, frame: np.ndarray) -> bytes:
        """Encode ``frame`` for ``tick``; first frame is sent in full."""
        frame = np.asarray(frame, dtype=np.float32)
        if frame.shape != (self.frame_width,):
            raise ValueError(
                f"expected frame of shape ({self.frame_width},), got {frame.shape}"
            )
        if self._sent is None:
            changed = np.arange(self.frame_width)
            self._sent = frame.copy()
        else:
            changed = np.flatnonzero(
                np.abs(frame - self._sent) > CHANGE_EPS
            )
            self._sent[changed] = frame[changed]
        parts = [_HEADER.pack(tick, len(changed))]
        for idx in changed:
            parts.append(_ENTRY.pack(int(idx), float(frame[idx])))
        raw = b"".join(parts)
        msg = zlib.compress(raw, level=6)
        self.stats.messages += 1
        self.stats.raw_bytes += len(raw)
        self.stats.compressed_bytes += len(msg)
        self.stats.entries_sent += int(len(changed))
        return msg

    def reset(self) -> None:
        """Forget the decoder-state mirror (forces a full resend)."""
        self._sent = None


class DifferentialDecoder:
    """Daemon side: reconstruct full frames from change messages."""

    def __init__(self, frame_width: int):
        if frame_width <= 0 or frame_width >= 2**16:
            raise ValueError(f"frame_width out of range: {frame_width}")
        self.frame_width = int(frame_width)
        self._state = np.zeros(frame_width, dtype=np.float32)
        self._have_state = False

    def decode(self, msg: bytes) -> tuple[int, np.ndarray]:
        """Return ``(tick, full_frame)``; raises on malformed input."""
        raw = zlib.decompress(msg)
        if len(raw) < _HEADER.size:
            raise ValueError("truncated wire message")
        tick, count = _HEADER.unpack_from(raw, 0)
        expect = _HEADER.size + count * _ENTRY.size
        if len(raw) != expect:
            raise ValueError(
                f"malformed message: {len(raw)} bytes, expected {expect}"
            )
        off = _HEADER.size
        for _ in range(count):
            idx, value = _ENTRY.unpack_from(raw, off)
            if idx >= self.frame_width:
                raise ValueError(f"indicator index {idx} out of range")
            self._state[idx] = value
            off += _ENTRY.size
        self._have_state = True
        return tick, self._state.astype(np.float64).copy()
