"""Differential, compressed agent→daemon wire protocol.

§3.3: "we use a differential communication protocol designed to only
send out a performance indicator when its data is different from the
value of the previous sampling tick.  In addition, all network
communications are compressed."

A message is the zlib-compressed concatenation of ``(uint16 index,
float32 value)`` pairs for every indicator that changed since the last
tick, prefixed by the tick number.  The decoder keeps the previous
frame per sender and reconstructs the full frame.  Message sizes are
tracked so the Table 2 "average message size per client" row can be
measured on real traffic.

Because the protocol is differential, decoding is *stateful*: a
message only makes sense against the sender's previous frame.  Two
additions keep long-lived daemons honest about that state:

- a **full-frame resync message** (:meth:`DifferentialEncoder.encode_full`)
  carries every indicator with no per-entry indices, re-establishing
  decoder state from scratch.  A decoder that receives a *partial*
  differential message while holding no state raises
  :class:`WireDesyncError` instead of silently patching zeros — the
  reconnect-with-a-stale-encoder failure mode;
- a :class:`DecoderPool` owns one decoder per sender, created on first
  use and **evicted on disconnect**, so a server's decode state stops
  growing with its all-time client count and a reconnecting sender
  always starts from an explicit resync.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional

import numpy as np

_HEADER = struct.Struct("<qH")  # tick number, changed-entry count
_ENTRY = struct.Struct("<Hf")  # indicator index, float32 value

#: Header entry-count sentinel marking a full-frame resync message:
#: the payload is ``frame_width`` raw float32 values, no indices.
#: Frame widths are capped below it, so it can never be a real count.
FULL_FRAME = 0xFFFF

#: Values closer than this are "unchanged" — float32 wire precision.
CHANGE_EPS = 1e-7


class WireDesyncError(ValueError):
    """A differential message arrived with no previous-frame state.

    Patching it onto zeros would silently decode garbage (the classic
    reconnect bug: the sender kept its encoder, the receiver lost its
    decoder).  The receiver should request a full-frame resync —
    :meth:`DifferentialEncoder.reset` or
    :meth:`DifferentialEncoder.encode_full` on the sending side.
    """


@dataclass
class WireStats:
    """Cumulative protocol statistics (Table 2 inputs)."""

    messages: int = 0
    raw_bytes: int = 0
    compressed_bytes: int = 0
    entries_sent: int = 0

    @property
    def mean_message_size(self) -> float:
        """Average compressed bytes per message."""
        return self.compressed_bytes / self.messages if self.messages else 0.0

    @property
    def compression_ratio(self) -> float:
        return (
            self.raw_bytes / self.compressed_bytes
            if self.compressed_bytes
            else 1.0
        )


class DifferentialEncoder:
    """Client side: turn PI frames into compact change messages."""

    def __init__(self, frame_width: int):
        # Capped below FULL_FRAME so an all-indicator differential's
        # entry count can never collide with the resync sentinel.
        if frame_width <= 0 or frame_width >= FULL_FRAME:
            raise ValueError(f"frame_width out of range: {frame_width}")
        self.frame_width = int(frame_width)
        # Mirror of the decoder's state: the last *transmitted* values.
        # Diffing against the previous frame instead would let sub-epsilon
        # drift accumulate unsent and desynchronise the decoder.
        self._sent: Optional[np.ndarray] = None
        self.stats = WireStats()

    def encode(self, tick: int, frame: np.ndarray) -> bytes:
        """Encode ``frame`` for ``tick``; first frame is sent in full."""
        frame = np.asarray(frame, dtype=np.float32)
        if frame.shape != (self.frame_width,):
            raise ValueError(
                f"expected frame of shape ({self.frame_width},), got {frame.shape}"
            )
        if self._sent is None:
            changed = np.arange(self.frame_width)
            self._sent = frame.copy()
        else:
            changed = np.flatnonzero(
                np.abs(frame - self._sent) > CHANGE_EPS
            )
            self._sent[changed] = frame[changed]
        parts = [_HEADER.pack(tick, len(changed))]
        for idx in changed:
            parts.append(_ENTRY.pack(int(idx), float(frame[idx])))
        return self._finish(b"".join(parts), len(changed))

    def encode_full(self, tick: int, frame: np.ndarray) -> bytes:
        """Encode ``frame`` as an explicit full-frame resync message.

        Every indicator travels (as raw float32s, no per-entry
        indices), and the decoder re-establishes its state from scratch
        — the message to send after a reconnect, when the receiver may
        have evicted this sender's previous frame.  Also refreshes the
        encoder's own decoder-state mirror, so subsequent differential
        messages diff against what was actually (re)sent.
        """
        frame = np.asarray(frame, dtype=np.float32)
        if frame.shape != (self.frame_width,):
            raise ValueError(
                f"expected frame of shape ({self.frame_width},), got {frame.shape}"
            )
        if self._sent is None:
            self._sent = frame.copy()
        else:
            self._sent[:] = frame
        raw = _HEADER.pack(tick, FULL_FRAME) + frame.tobytes()
        return self._finish(raw, self.frame_width)

    def _finish(self, raw: bytes, entries: int) -> bytes:
        """Compress ``raw`` and account it in the Table 2 statistics."""
        msg = zlib.compress(raw, level=6)
        self.stats.messages += 1
        self.stats.raw_bytes += len(raw)
        self.stats.compressed_bytes += len(msg)
        self.stats.entries_sent += int(entries)
        return msg

    def reset(self) -> None:
        """Forget the decoder-state mirror (forces a full resend)."""
        self._sent = None


class DifferentialDecoder:
    """Daemon side: reconstruct full frames from change messages.

    Mirrors the encoder's Table 2 accounting in :attr:`stats`, so a
    server can measure the §3.3 byte savings on the traffic it actually
    received without trusting the senders' own counters.
    """

    def __init__(self, frame_width: int):
        if frame_width <= 0 or frame_width >= FULL_FRAME:
            raise ValueError(f"frame_width out of range: {frame_width}")
        self.frame_width = int(frame_width)
        self._state = np.zeros(frame_width, dtype=np.float32)
        self._have_state = False
        self.stats = WireStats()

    @property
    def synchronized(self) -> bool:
        """Whether the decoder holds previous-frame state."""
        return self._have_state

    def decode(self, msg: bytes) -> tuple[int, np.ndarray]:
        """Return ``(tick, full_frame)``; raises on malformed input.

        A partial differential message on a decoder with no state
        raises :class:`WireDesyncError` (the caller should request a
        resync); a full-coverage message — explicit
        :data:`FULL_FRAME` resync or a differential touching every
        indicator — (re)establishes state from any starting point.
        """
        raw = zlib.decompress(msg)
        if len(raw) < _HEADER.size:
            raise ValueError("truncated wire message")
        tick, count = _HEADER.unpack_from(raw, 0)
        if count == FULL_FRAME:
            expect = _HEADER.size + self.frame_width * 4
            if len(raw) != expect:
                raise ValueError(
                    f"malformed full-frame message: {len(raw)} bytes, "
                    f"expected {expect}"
                )
            self._state[:] = np.frombuffer(
                raw, dtype="<f4", count=self.frame_width, offset=_HEADER.size
            )
            return self._account(tick, raw, self.frame_width, len(msg))
        expect = _HEADER.size + count * _ENTRY.size
        if len(raw) != expect:
            raise ValueError(
                f"malformed message: {len(raw)} bytes, expected {expect}"
            )
        if not self._have_state and count < self.frame_width:
            raise WireDesyncError(
                f"differential message ({count} of {self.frame_width} "
                f"indicators) received with no previous-frame state; "
                f"a full-frame resync is required"
            )
        off = _HEADER.size
        for _ in range(count):
            idx, value = _ENTRY.unpack_from(raw, off)
            if idx >= self.frame_width:
                raise ValueError(f"indicator index {idx} out of range")
            self._state[idx] = value
            off += _ENTRY.size
        return self._account(tick, raw, count, len(msg))

    def _account(
        self, tick: int, raw: bytes, entries: int, compressed: int
    ) -> tuple[int, np.ndarray]:
        """Mark state established, update stats, hand out the frame."""
        self._have_state = True
        self.stats.messages += 1
        self.stats.raw_bytes += len(raw)
        self.stats.compressed_bytes += int(compressed)
        self.stats.entries_sent += int(entries)
        return tick, self._state.astype(np.float64).copy()


class DecoderPool:
    """Per-sender decoders with explicit lifecycle (the server side).

    One long-lived daemon decodes many senders' differential streams;
    each stream needs its own previous-frame state.  The pool creates a
    :class:`DifferentialDecoder` per sender key on first use and
    **evicts it on disconnect** — without eviction the state grows with
    the all-time sender count, and worse, a *reconnecting* sender would
    silently decode against the frame its previous incarnation left
    behind.  After eviction the fresh decoder accepts nothing but a
    state-establishing message (full frame or all-indicator
    differential), so a stale-encoder reconnect surfaces as
    :class:`WireDesyncError` instead of garbage frames.
    """

    def __init__(self, frame_width: int):
        if frame_width <= 0 or frame_width >= FULL_FRAME:
            raise ValueError(f"frame_width out of range: {frame_width}")
        self.frame_width = int(frame_width)
        self._decoders: Dict[Hashable, DifferentialDecoder] = {}
        #: Decoders dropped via :meth:`evict` (connection-churn counter).
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._decoders)

    def __contains__(self, sender: Hashable) -> bool:
        return sender in self._decoders

    def decoder(self, sender: Hashable) -> DifferentialDecoder:
        """The live decoder for ``sender``, created on first use."""
        dec = self._decoders.get(sender)
        if dec is None:
            dec = self._decoders[sender] = DifferentialDecoder(
                self.frame_width
            )
        return dec

    def decode(self, sender: Hashable, msg: bytes) -> tuple[int, np.ndarray]:
        """Decode ``msg`` against ``sender``'s stream state."""
        return self.decoder(sender).decode(msg)

    def evict(self, sender: Hashable) -> bool:
        """Drop ``sender``'s decode state (call on disconnect).

        Returns whether state existed.  Compressed-byte accounting for
        the §3.3 savings must be read (:meth:`stats`) before parting
        with the decoder, so servers typically fold the per-sender
        stats into their own counters first.
        """
        existed = self._decoders.pop(sender, None) is not None
        if existed:
            self.evictions += 1
        return existed

    def stats(self, sender: Hashable) -> Optional[WireStats]:
        """``sender``'s receive-side :class:`WireStats`, if live."""
        dec = self._decoders.get(sender)
        return dec.stats if dec is not None else None
