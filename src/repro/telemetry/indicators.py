"""Performance-indicator registry and frame collection.

§4.1 lists nine PIs per OSC; two more (the rate limit itself and the
in-flight RPC count) are included per the paper's advice to be liberal:
"any system statuses that are likely related to the performance of the
system should be included".  With the paper's four servers this gives
44 PIs per client, matching Table 2.

All PIs are floats.  Each indicator carries a fixed ``scale`` so inputs
reach the DNN at O(1) magnitude — raw mixes of bytes (10⁷), seconds
(10⁻³) and ratios (10⁰) would otherwise stall tanh layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.cluster.client import OSC, ClientNode
from repro.util.units import MiB


@dataclass(frozen=True)
class Indicator:
    """One performance indicator: how to read it and how to scale it."""

    name: str
    scale: float  # raw value is divided by this before entering the DNN
    read: Callable[[OSC, float], float]  # (osc, tick_length) -> raw value


def _read_tput(osc: OSC, tick_len: float) -> float:
    return osc.read_bytes_done.delta("pi") / tick_len


def _write_tput(osc: OSC, tick_len: float) -> float:
    return osc.write_bytes_done.delta("pi") / tick_len


#: The per-OSC indicator set.  Order is part of the observation layout
#: and must stay stable across a training session.
OSC_INDICATORS: List[Indicator] = [
    Indicator(
        "max_rpcs_in_flight", 16.0, lambda o, dt: float(o.window.capacity)
    ),
    Indicator("read_tput", 50.0 * MiB, _read_tput),
    Indicator("write_tput", 50.0 * MiB, _write_tput),
    Indicator("dirty_bytes", 32.0 * MiB, lambda o, dt: float(o.cache.dirty)),
    Indicator(
        "max_dirty_bytes", 32.0 * MiB, lambda o, dt: float(o.cache.max_dirty)
    ),
    Indicator("ping_latency", 0.05, lambda o, dt: o.ping_latency),
    Indicator("ack_ewma", 0.05, lambda o, dt: o.ack_ewma.value),
    Indicator("send_ewma", 0.05, lambda o, dt: o.send_ewma.value),
    Indicator("pt_ratio", 10.0, lambda o, dt: o.pt_ratio),
    Indicator(
        "io_rate_limit", 10_000.0, lambda o, dt: o.rate_bucket.rate
    ),
    Indicator("in_flight", 16.0, lambda o, dt: float(o.in_flight)),
]


#: Post-scaling clip bound.  Congestion can push the unbounded PIs
#: (ping latency, PT ratio, EWMAs) to O(100) after scaling; feeding such
#: outliers into a tanh MLP saturates the first layer and kills the
#: gradient signal, so frames are clipped to a sane dynamic range.
CLIP_BOUND = 8.0

#: Per-indicator scales as one vector, in OSC_INDICATORS order — the
#: array form that lets whole raw frames be packed in one shot.
_SCALES = np.array([ind.scale for ind in OSC_INDICATORS])


def indicator_scales() -> np.ndarray:
    """The per-OSC indicator scales as an (11,) vector (a copy)."""
    return _SCALES.copy()


def pack_osc_frames(
    raw: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Scale and clip raw PI values, any leading shape ``(..., 11)``.

    Elementwise identical to :func:`osc_frame`'s scalar path (each
    value divided by its indicator's scale, then clipped), but over an
    arbitrary block of OSCs at once — the vectorized fleet engine packs
    its whole ``(n_envs, n_clients, n_servers, 11)`` tick in one call.
    """
    raw = np.asarray(raw, dtype=np.float64)
    if raw.shape[-1] != len(OSC_INDICATORS):
        raise ValueError(
            f"last axis must have {len(OSC_INDICATORS)} indicators, "
            f"got shape {raw.shape}"
        )
    if out is None:
        out = np.empty_like(raw)
    np.divide(raw, _SCALES, out=out)
    np.clip(out, -CLIP_BOUND, CLIP_BOUND, out=out)
    return out


def _check_frame_out(out: np.ndarray, size: int) -> None:
    if out.size != size:
        raise ValueError(
            f"out buffer has {out.size} elements, expected {size}"
        )
    if not out.flags["C_CONTIGUOUS"] or out.dtype != np.float64:
        raise ValueError("out buffer must be a C-contiguous float64 array")


def osc_frame(
    osc: OSC, tick_length: float, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Sample all indicators of one OSC, scaled and clipped to O(1).

    ``out``, when given, receives the frame in place and is returned —
    the no-realloc convention of ``step(out=)``/``current_observation
    (out=)``, for the per-tick sampling hot path.
    """
    if out is None:
        out = np.empty(len(OSC_INDICATORS))
    else:
        _check_frame_out(out, len(OSC_INDICATORS))
    for j, ind in enumerate(OSC_INDICATORS):
        out[j] = ind.read(osc, tick_length)
    np.divide(out, _SCALES, out=out)
    np.clip(out, -CLIP_BOUND, CLIP_BOUND, out=out)
    return out


def client_frame(
    client: ClientNode, tick_length: float, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Concatenate OSC frames of a client in server order.

    With ``out=`` the whole frame is assembled in place (one row view
    per OSC), so per-tick monitoring never reallocates.
    """
    sids = sorted(client.oscs)
    width = len(OSC_INDICATORS)
    if out is None:
        out = np.empty(len(sids) * width)
    else:
        _check_frame_out(out, len(sids) * width)
    rows = out.reshape(len(sids), width)
    for row, sid in enumerate(sids):
        osc_frame(client.oscs[sid], tick_length, out=rows[row])
    return out


def frame_width(n_servers: int) -> int:
    """PIs per client — 11 per OSC (44 for the paper's four servers)."""
    return n_servers * len(OSC_INDICATORS)


def frame_labels(n_servers: int) -> List[str]:
    """Human-readable names matching :func:`client_frame` layout."""
    return [
        f"osc{j}.{ind.name}"
        for j in range(n_servers)
        for ind in OSC_INDICATORS
    ]
