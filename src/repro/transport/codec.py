"""Binary codecs for the worker command set and its replies.

The vectorized collection stack speaks a small request/response
vocabulary — ``reset`` / ``step`` / ``run_chunk`` / ``records`` /
``call`` / ``commit`` / ``snapshot`` / ``close`` plus the shard
handshake (``hello`` / ``attach``) — over any
:class:`~repro.transport.base.Transport`.  This module defines how
each message becomes payload bytes:

- a little JSON header (command name, env index, scalar fields, array
  descriptors), then
- the raw array buffers, concatenated in descriptor order.

NumPy data — observations, reward vectors and every
:class:`~repro.replaydb.records.PackedRecords` column — crosses the
wire as raw C-contiguous buffers described by ``(name, dtype, shape)``
descriptors, *not* pickles: byte-exact, allocation-light, and readable
by a peer that shares nothing but this codec.  Only the cold paths
keep a pickle escape hatch (``call`` replies can be arbitrary Python
objects, and exceptions travel whole when they can); those blobs are
flagged in the header and documented as trusted-peer-only, which the
worker topology guarantees (every shard is launched by the operator).

Wire layout of one payload::

    uint32 header_len | header JSON (UTF-8) | buffer 0 | buffer 1 | ...
"""

from __future__ import annotations

import json
import pickle
import struct
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.replaydb.records import PackedRecords
from repro.transport.framing import ProtocolError

__all__ = [
    "MSG_CMD",
    "MSG_OK",
    "MSG_ERR",
    "encode_sections",
    "decode_sections",
    "encode_command",
    "decode_command",
    "encode_reply",
    "decode_reply",
    "encode_error",
    "decode_error",
]

#: Message types of the worker command channel (distinct from the
#: serve-protocol range so a cross-wired connection fails loudly).
MSG_CMD = 0x20
MSG_OK = 0x21
MSG_ERR = 0x22

_HEAD_LEN = struct.Struct("<I")


# --------------------------------------------------------------------------
# Section layer: JSON header + raw buffers
# --------------------------------------------------------------------------


def encode_sections(
    meta: dict,
    arrays: Optional[Dict[str, np.ndarray]] = None,
    blobs: Optional[Dict[str, bytes]] = None,
) -> bytes:
    """Pack a JSON header plus named raw buffers into one payload.

    ``arrays`` travel as C-contiguous memory described by
    ``(name, dtype, shape)`` descriptors in the header; ``blobs`` as
    opaque byte strings.  Order is the descriptor order, so decode
    needs no per-buffer length prefixes.
    """
    header = dict(meta)
    buffers = []
    descs = []
    for name, arr in (arrays or {}).items():
        a = np.ascontiguousarray(arr)
        descs.append([name, a.dtype.str, list(a.shape)])
        buffers.append(a.tobytes())
    header["__arrays__"] = descs
    blob_descs = []
    for name, blob in (blobs or {}).items():
        blob_descs.append([name, len(blob)])
        buffers.append(blob)
    header["__blobs__"] = blob_descs
    head = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return b"".join([_HEAD_LEN.pack(len(head)), head] + buffers)


def decode_sections(
    payload: bytes,
) -> Tuple[dict, Dict[str, np.ndarray], Dict[str, bytes]]:
    """Inverse of :func:`encode_sections`: ``(meta, arrays, blobs)``.

    Decoded arrays are read-only views over the payload bytes (zero
    copy); callers that mutate must copy first.
    """
    if len(payload) < _HEAD_LEN.size:
        raise ProtocolError("section payload too short for a header")
    (head_len,) = _HEAD_LEN.unpack_from(payload, 0)
    end = _HEAD_LEN.size + head_len
    if end > len(payload):
        raise ProtocolError("section header overruns the payload")
    try:
        header = json.loads(payload[_HEAD_LEN.size : end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed section header: {exc}") from exc
    arrays: Dict[str, np.ndarray] = {}
    offset = end
    for name, dtype, shape in header.pop("__arrays__", []):
        dt = np.dtype(dtype)
        count = int(np.prod(shape)) if shape else 1
        nbytes = dt.itemsize * count
        if offset + nbytes > len(payload):
            raise ProtocolError(f"array section {name!r} overruns payload")
        arrays[name] = np.frombuffer(
            payload, dtype=dt, count=count, offset=offset
        ).reshape(shape)
        offset += nbytes
    blobs: Dict[str, bytes] = {}
    for name, nbytes in header.pop("__blobs__", []):
        if offset + nbytes > len(payload):
            raise ProtocolError(f"blob section {name!r} overruns payload")
        blobs[name] = payload[offset : offset + nbytes]
        offset += nbytes
    return header, arrays, blobs


def _put_packed(
    arrays: Dict[str, np.ndarray], packed: Optional[PackedRecords]
) -> bool:
    """Stage a :class:`PackedRecords` block as four raw array sections."""
    if packed is None:
        return False
    arrays["pr_ticks"] = packed.ticks
    arrays["pr_frames"] = packed.frames
    arrays["pr_actions"] = packed.actions
    arrays["pr_rewards"] = packed.rewards
    return True


def _take_packed(
    meta: dict, arrays: Dict[str, np.ndarray]
) -> Optional[PackedRecords]:
    """Rebuild the staged :class:`PackedRecords` block (or ``None``)."""
    if not meta.get("packed"):
        return None
    return PackedRecords(
        ticks=arrays["pr_ticks"],
        frames=arrays["pr_frames"],
        actions=arrays["pr_actions"],
        rewards=arrays["pr_rewards"],
    )


def _jsonable(obj: Any) -> bool:
    try:
        json.dumps(obj)
        return True
    except (TypeError, ValueError):
        return False


# --------------------------------------------------------------------------
# Commands (master -> worker)
# --------------------------------------------------------------------------


def encode_command(cmd: str, env: int, payload: Any = None) -> bytes:
    """Payload bytes for one worker command addressed to env ``env``.

    ``payload`` is the same object :func:`repro.env.worker.exec_env_cmd`
    takes, minus master-side-only pieces (the ``out=`` buffer never
    crosses a process boundary).
    """
    meta: dict = {"cmd": cmd, "env": int(env)}
    blobs: Dict[str, bytes] = {}
    if cmd == "reset":
        meta["want"] = bool(payload)
    elif cmd == "step":
        action, _out, since = payload
        meta["action"] = int(action)
        meta["since"] = None if since is None else int(since)
    elif cmd == "run_chunk":
        action, k, since, _out = payload
        meta["action"] = None if action is None else int(action)
        meta["k"] = int(k)
        meta["since"] = None if since is None else int(since)
    elif cmd == "records":
        meta["since"] = int(payload)
    elif cmd == "call":
        name, args, kwargs = payload
        meta["name"] = name
        if _jsonable([list(args), kwargs]):
            meta["args"] = list(args)
            meta["kwargs"] = kwargs
        else:
            # Cold path: env_method with non-JSON arguments (numpy
            # scalars, callables).  Trusted-peer pickle, flagged.
            blobs["call"] = pickle.dumps((tuple(args), kwargs))
    elif cmd in ("commit", "close", "snapshot", "hello", "attach"):
        if payload is not None:
            meta["data"] = payload
    else:
        raise ProtocolError(f"unknown worker command {cmd!r}")
    return encode_sections(meta, blobs=blobs)


def decode_command(payload: bytes) -> Tuple[str, int, Any]:
    """``(cmd, env, exec_payload)`` from command payload bytes."""
    meta, _arrays, blobs = decode_sections(payload)
    cmd = meta.get("cmd")
    env = int(meta.get("env", 0))
    if cmd == "reset":
        return cmd, env, bool(meta["want"])
    if cmd == "step":
        return cmd, env, (int(meta["action"]), None, meta["since"])
    if cmd == "run_chunk":
        return cmd, env, (meta["action"], int(meta["k"]), meta["since"], None)
    if cmd == "records":
        return cmd, env, int(meta["since"])
    if cmd == "call":
        if "call" in blobs:
            args, kwargs = pickle.loads(blobs["call"])
        else:
            args, kwargs = tuple(meta["args"]), meta["kwargs"]
        return cmd, env, (meta["name"], args, kwargs)
    if cmd in ("commit", "close", "snapshot", "hello", "attach"):
        return cmd, env, meta.get("data")
    raise ProtocolError(f"unknown worker command {cmd!r}")


# --------------------------------------------------------------------------
# Replies (worker -> master)
# --------------------------------------------------------------------------


def encode_reply(cmd: str, result: Any) -> bytes:
    """Payload bytes for the reply to one ``cmd``.

    The hot-path replies (``step`` / ``run_chunk`` / ``reset`` /
    ``records``) are fully binary: observations, reward vectors and
    :class:`PackedRecords` columns as raw buffers.  ``call`` replies
    fall back to pickle for arbitrary objects.
    """
    meta: dict = {"cmd": cmd}
    arrays: Dict[str, np.ndarray] = {}
    blobs: Dict[str, bytes] = {}
    if cmd == "reset":
        obs, packed = result
        arrays["obs"] = np.asarray(obs)
        meta["packed"] = _put_packed(arrays, packed)
    elif cmd == "step":
        obs, reward, info, packed = result
        arrays["obs"] = np.asarray(obs)
        arrays["reward"] = np.asarray([reward], dtype=np.float64)
        meta["packed"] = _put_packed(arrays, packed)
        if _jsonable(info):
            meta["info"] = info
        else:
            blobs["info"] = pickle.dumps(info)
    elif cmd == "run_chunk":
        rewards, obs, packed = result
        arrays["rewards"] = np.asarray(rewards, dtype=np.float64)
        arrays["obs"] = np.asarray(obs)
        meta["packed"] = _put_packed(arrays, packed)
    elif cmd == "records":
        meta["packed"] = _put_packed(arrays, result)
    elif cmd == "call":
        if isinstance(result, np.ndarray):
            arrays["value"] = result
            meta["kind"] = "array"
        elif _jsonable(result):
            meta["kind"] = "json"
            meta["value"] = result
        else:
            meta["kind"] = "pickle"
            blobs["value"] = pickle.dumps(result)
    elif cmd in ("commit", "close", "snapshot", "hello", "attach"):
        if result is not None:
            meta["data"] = result
    else:
        raise ProtocolError(f"unknown worker command {cmd!r}")
    return encode_sections(meta, arrays, blobs)


def decode_reply(payload: bytes) -> Tuple[str, Any]:
    """``(cmd, result)`` from reply payload bytes.

    Array data comes back as read-only views over the payload; the
    master copies observations into its own buffers anyway (the
    fan-in path), so no extra copies are added here.
    """
    meta, arrays, blobs = decode_sections(payload)
    cmd = meta.get("cmd")
    if cmd == "reset":
        return cmd, (arrays["obs"], _take_packed(meta, arrays))
    if cmd == "step":
        info = (
            pickle.loads(blobs["info"]) if "info" in blobs else meta["info"]
        )
        return cmd, (
            arrays["obs"],
            float(arrays["reward"][0]),
            info,
            _take_packed(meta, arrays),
        )
    if cmd == "run_chunk":
        return cmd, (
            arrays["rewards"],
            arrays["obs"],
            _take_packed(meta, arrays),
        )
    if cmd == "records":
        return cmd, _take_packed(meta, arrays)
    if cmd == "call":
        kind = meta.get("kind")
        if kind == "array":
            return cmd, arrays["value"]
        if kind == "pickle":
            return cmd, pickle.loads(blobs["value"])
        return cmd, meta.get("value")
    if cmd in ("commit", "close", "snapshot", "hello", "attach"):
        return cmd, meta.get("data")
    raise ProtocolError(f"unknown reply command {cmd!r}")


# --------------------------------------------------------------------------
# Errors (worker -> master)
# --------------------------------------------------------------------------


def encode_error(exc: BaseException, text: str, env: int) -> bytes:
    """Payload bytes for an error reply.

    ``exc`` rides whole when it pickles (the master re-raises it
    verbatim); ``text`` is the always-available fallback carrying type,
    message and worker traceback for the wrapper error.
    """
    meta = {"env": int(env), "text": text}
    blobs: Dict[str, bytes] = {}
    try:
        blob = pickle.dumps(exc)
        pickle.loads(blob)  # must survive the round trip, not just dump
        blobs["exc"] = blob
    except Exception:
        pass
    return encode_sections(meta, blobs=blobs)


def decode_error(payload: bytes) -> Tuple[int, str, Optional[BaseException]]:
    """``(env, text, exception-or-None)`` from an error payload."""
    meta, _arrays, blobs = decode_sections(payload)
    exc = None
    if "exc" in blobs:
        try:
            exc = pickle.loads(blobs["exc"])
        except Exception:  # pragma: no cover - defensive
            exc = None
    return int(meta.get("env", -1)), meta.get("text", ""), exc
