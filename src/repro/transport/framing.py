"""Length-prefixed message framing — the one framing implementation.

Every framed message is a 5-byte prefix (``uint8`` message type +
``uint32`` payload length, little-endian) followed by the payload.
This module is the single place that layout lives: the control-plane
protocol (:mod:`repro.serve.protocol`) and every
:class:`~repro.transport.base.Transport` backend (pipe, socket,
loopback) frame their bytes through it, so a framing bug cannot exist
in one path and not the others.

Two consumption styles, one format:

- :func:`encode_frame` + :class:`FrameDecoder` — synchronous,
  incremental: feed whatever chunks the medium delivers (partial
  frames, many coalesced frames, one byte at a time) and complete
  ``(type, payload)`` messages pop out in order;
- :func:`read_frame_async` — the :mod:`asyncio` stream form the serve
  daemon uses.

Both enforce :data:`MAX_PAYLOAD`: an oversized length prefix is a
:class:`ProtocolError` (a desynchronised or malicious peer), raised
*before* any attempt to buffer the claimed payload.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

__all__ = [
    "MAX_PAYLOAD",
    "PREFIX",
    "ProtocolError",
    "FrameDecoder",
    "encode_frame",
    "read_frame_async",
]

#: The frame prefix: message type, payload length (little-endian).
PREFIX = struct.Struct("<BI")

#: Hard cap on a single payload; anything larger is a framing error
#: (a desynchronised or malicious peer), not a legitimate message.
MAX_PAYLOAD = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """The peer sent bytes that do not parse as a protocol message."""


def encode_frame(
    msg_type: int, payload: bytes = b"", max_payload: int = MAX_PAYLOAD
) -> bytes:
    """One wire-ready framed message (prefix + payload)."""
    if len(payload) > max_payload:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds cap {max_payload}"
        )
    return PREFIX.pack(msg_type, len(payload)) + payload


class FrameDecoder:
    """Incremental frame parser over an arbitrary chunk stream.

    The medium (pipe message, socket ``recv``, in-process queue) may
    deliver bytes in any split: half a prefix, three frames at once, a
    payload spread over many reads.  :meth:`feed` buffers what arrived
    and returns every *complete* message, in order; an oversized length
    prefix raises :class:`ProtocolError` as soon as the prefix itself
    is readable.
    """

    def __init__(self, max_payload: int = MAX_PAYLOAD):
        self.max_payload = int(max_payload)
        self._buf = bytearray()

    @property
    def buffered(self) -> int:
        """Bytes held waiting for the rest of an incomplete frame."""
        return len(self._buf)

    @property
    def at_boundary(self) -> bool:
        """True when no partial frame is pending (a clean EOF point)."""
        return not self._buf

    def feed(self, data: bytes) -> List[Tuple[int, bytes]]:
        """Absorb ``data``; return all newly completed messages."""
        self._buf.extend(data)
        out: List[Tuple[int, bytes]] = []
        while len(self._buf) >= PREFIX.size:
            msg_type, length = PREFIX.unpack_from(self._buf, 0)
            if length > self.max_payload:
                raise ProtocolError(
                    f"framed payload of {length} bytes exceeds cap "
                    f"{self.max_payload}"
                )
            end = PREFIX.size + length
            if len(self._buf) < end:
                break
            out.append((msg_type, bytes(self._buf[PREFIX.size : end])))
            del self._buf[:end]
        return out


async def read_frame_async(
    reader, max_payload: int = MAX_PAYLOAD
) -> Tuple[int, bytes]:
    """Read one framed message from an :class:`asyncio.StreamReader`.

    ``asyncio.IncompleteReadError`` propagates on a peer that vanished
    mid-frame — callers treat it exactly like a disconnect.  An
    oversized length prefix raises :class:`ProtocolError` before the
    payload is read.
    """
    prefix = await reader.readexactly(PREFIX.size)
    msg_type, length = PREFIX.unpack(prefix)
    if length > max_payload:
        raise ProtocolError(
            f"framed payload of {length} bytes exceeds cap {max_payload}"
        )
    payload = await reader.readexactly(length) if length else b""
    return msg_type, payload
