"""The socket transport: framed messages over TCP.

The distribution medium: a collection shard on another box speaks
exactly the protocol a forked worker speaks over its pipe, carried by
:class:`SocketTransport` instead of
:class:`~repro.transport.pipe.PipeTransport`.  :class:`SocketListener`
is the accept side a shard host binds.

Close discipline (the drain-then-close rule): ``close()`` flushes by
virtue of blocking ``sendall`` writes, signals EOF with a write-side
shutdown, and only then closes the descriptor — so a peer mid-read
sees a clean end-of-stream at a frame boundary, never a reset.
"""

from __future__ import annotations

import socket
from typing import Optional, Tuple

from repro.transport.base import Listener, StreamTransport, TransportClosedError
from repro.transport.framing import MAX_PAYLOAD

__all__ = ["SocketTransport", "SocketListener", "parse_address"]

#: Bytes per ``recv`` on the read side.
_CHUNK = 1 << 16


def parse_address(address: str) -> Tuple[str, int]:
    """Split a ``host:port`` string (the CLI shard-address form)."""
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"shard address {address!r} is not of the form host:port"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(
            f"shard address {address!r} has a non-integer port"
        ) from None


class SocketTransport(StreamTransport):
    """Framed messages over one connected TCP socket."""

    def __init__(self, sock: socket.socket, max_payload: int = MAX_PAYLOAD):
        super().__init__(max_payload)
        self._sock = sock
        # Framed request/response traffic is latency-bound, and every
        # message is one buffered sendall: never Nagle-delay it.
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP test sockets
            pass

    @classmethod
    def connect(
        cls,
        address: str,
        timeout: Optional[float] = None,
        max_payload: int = MAX_PAYLOAD,
    ) -> "SocketTransport":
        """Dial ``host:port`` and return the connected transport.

        ``timeout`` bounds the connect; the established transport
        itself blocks indefinitely (workers answer when they answer).
        """
        host, port = parse_address(address)
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise TransportClosedError(
                f"cannot connect to shard {address}: {exc}"
            ) from exc
        sock.settimeout(None)
        return cls(sock, max_payload)

    def _write_bytes(self, data: bytes) -> None:
        """Ship raw bytes to the peer (may block)."""
        self._sock.sendall(data)

    def _read_chunk(self) -> bytes:
        """Next raw chunk from the peer; ``b""`` means EOF."""
        return self._sock.recv(_CHUNK)

    def _close_medium(self) -> None:
        """Tear down the underlying medium (called exactly once)."""
        try:
            # Drain-then-close: sends already hit the kernel buffer
            # (blocking sendall); shutting down the write side flushes
            # them to the peer as a clean EOF before the close.
            self._sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass
        self._sock.close()


class SocketListener(Listener):
    """A bound TCP listener yielding one :class:`SocketTransport` per
    accepted peer.  ``port=0`` binds an ephemeral port; read the real
    one back from :attr:`address` (or :attr:`port`)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        backlog: int = 8,
        max_payload: int = MAX_PAYLOAD,
    ):
        self._max_payload = max_payload
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(backlog)
        self._host = host
        self._port = int(self._sock.getsockname()[1])
        self._closed = False

    @property
    def port(self) -> int:
        """The bound port (resolved when constructed with ``port=0``)."""
        return self._port

    @property
    def address(self) -> str:
        """The ``host:port``-style address peers connect to."""
        return f"{self._host}:{self._port}"

    def accept(self) -> SocketTransport:
        """Block for the next inbound connection."""
        if self._closed:
            raise TransportClosedError("accept on a closed listener")
        try:
            sock, _peer = self._sock.accept()
        except OSError as exc:
            raise TransportClosedError(f"listener closed: {exc}") from exc
        return SocketTransport(sock, self._max_payload)

    def close(self) -> None:
        """Stop accepting (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._sock.close()
