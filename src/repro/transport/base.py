"""The transport abstraction: framed messages over any byte medium.

A :class:`Transport` moves whole framed messages — ``(msg_type,
payload)`` pairs in the :mod:`repro.transport.framing` layout —
between two peers, hiding what carries the bytes: a
``multiprocessing`` pipe to a forked child, a TCP socket to a remote
shard host, or an in-process queue pair in tests.  A :class:`Listener`
accepts inbound connections and yields one :class:`Transport` per
peer.

Every concrete transport here is a :class:`StreamTransport`: the
medium delivers arbitrary byte chunks and one shared
:class:`~repro.transport.framing.FrameDecoder` reassembles messages,
so partial reads, coalesced frames and oversized-frame rejection
behave identically on every backend — the property the framing tests
pin.

Close discipline: :meth:`Transport.close` is idempotent and
drain-then-close — buffered outbound bytes are flushed before the
underlying medium is torn down.  A peer that disappears *between*
frames surfaces as :class:`TransportClosedError` (a normal
disconnect); disappearing *mid-frame* is a
:class:`~repro.transport.framing.ProtocolError` (truncated message).
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Deque, Tuple

from repro.transport.framing import (
    MAX_PAYLOAD,
    FrameDecoder,
    ProtocolError,
    encode_frame,
)

__all__ = [
    "Transport",
    "Listener",
    "StreamTransport",
    "TransportClosedError",
]


class TransportClosedError(ConnectionError):
    """The peer (or this side) closed the transport; no more messages."""


class Transport(abc.ABC):
    """One bidirectional framed-message channel to a single peer."""

    @abc.abstractmethod
    def send(self, msg_type: int, payload: bytes = b"") -> None:
        """Frame and send one message (raises once closed)."""

    @abc.abstractmethod
    def recv(self) -> Tuple[int, bytes]:
        """Block for the next message; :class:`TransportClosedError`
        on a clean peer close, :class:`ProtocolError` mid-frame."""

    @abc.abstractmethod
    def close(self) -> None:
        """Drain buffered sends and release the medium (idempotent)."""

    @property
    @abc.abstractmethod
    def closed(self) -> bool:
        """True once :meth:`close` ran (or the peer vanished)."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Listener(abc.ABC):
    """Accepts inbound connections, one :class:`Transport` per peer."""

    @abc.abstractmethod
    def accept(self) -> Transport:
        """Block for the next inbound connection."""

    @abc.abstractmethod
    def close(self) -> None:
        """Stop accepting (idempotent)."""

    @property
    @abc.abstractmethod
    def address(self) -> str:
        """The ``host:port``-style address peers connect to."""

    def __enter__(self) -> "Listener":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class StreamTransport(Transport):
    """Shared chunk-stream machinery behind every concrete transport.

    Subclasses implement three medium primitives — ``_write_bytes``
    (ship raw bytes), ``_read_chunk`` (return the next chunk, ``b""``
    on EOF), ``_close_medium`` — and inherit identical framing,
    buffering, close-idempotence and truncation semantics.
    """

    def __init__(self, max_payload: int = MAX_PAYLOAD):
        self._decoder = FrameDecoder(max_payload)
        self._ready: Deque[Tuple[int, bytes]] = deque()
        self._closed = False

    # -- medium primitives (subclass responsibility) --------------------
    @abc.abstractmethod
    def _write_bytes(self, data: bytes) -> None:
        """Ship raw bytes to the peer (may block)."""

    @abc.abstractmethod
    def _read_chunk(self) -> bytes:
        """Next raw chunk from the peer; ``b""`` means EOF."""

    @abc.abstractmethod
    def _close_medium(self) -> None:
        """Tear down the underlying medium (called exactly once)."""

    # -- the Transport surface ------------------------------------------
    def send(self, msg_type: int, payload: bytes = b"") -> None:
        """Frame and send one message (raises once closed)."""
        if self._closed:
            raise TransportClosedError("send on a closed transport")
        frame = encode_frame(msg_type, payload, self._decoder.max_payload)
        try:
            self._write_bytes(frame)
        except (BrokenPipeError, ConnectionError, EOFError, OSError) as exc:
            self._closed = True
            raise TransportClosedError(
                f"peer went away during send: {exc}"
            ) from exc

    def recv(self) -> Tuple[int, bytes]:
        """Block for the next message; :class:`TransportClosedError`
        on a clean peer close, :class:`ProtocolError` mid-frame."""
        while not self._ready:
            if self._closed:
                raise TransportClosedError("recv on a closed transport")
            try:
                chunk = self._read_chunk()
            except (ConnectionError, EOFError, OSError):
                chunk = b""
            if not chunk:
                self._closed = True
                if not self._decoder.at_boundary:
                    raise ProtocolError(
                        f"peer closed mid-frame with "
                        f"{self._decoder.buffered} byte(s) of an "
                        f"incomplete message buffered"
                    )
                raise TransportClosedError("peer closed the transport")
            self._ready.extend(self._decoder.feed(chunk))
        return self._ready.popleft()

    def close(self) -> None:
        """Drain buffered sends and release the medium (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._close_medium()
        except OSError:  # pragma: no cover - teardown best-effort
            pass

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran (or the peer vanished)."""
        return self._closed
