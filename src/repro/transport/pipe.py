"""The pipe transport: framed messages over ``multiprocessing`` pipes.

This wraps the fork backend's historical medium — one
``multiprocessing.Pipe`` per worker — behind the
:class:`~repro.transport.base.Transport` interface, so the same worker
loop that serves a forked child over a pipe serves a remote shard host
over a socket.  Behavior of the pipe path is unchanged: one OS message
per frame on the send side, with the stream decoder tolerating any
split on the receive side (a property test ships frames one byte per
pipe message).
"""

from __future__ import annotations

import multiprocessing
from typing import Optional, Tuple

from repro.transport.base import StreamTransport
from repro.transport.framing import MAX_PAYLOAD

__all__ = ["PipeTransport", "pipe_pair"]


class PipeTransport(StreamTransport):
    """Framed messages over one end of a ``multiprocessing.Pipe``.

    ``conn`` is a ``multiprocessing.connection.Connection``; each
    framed message normally rides in one ``send_bytes`` OS message,
    but the receive side reassembles from arbitrary chunk splits like
    every other :class:`~repro.transport.base.StreamTransport`.
    """

    def __init__(self, conn, max_payload: int = MAX_PAYLOAD):
        super().__init__(max_payload)
        self._conn = conn

    def _write_bytes(self, data: bytes) -> None:
        """Ship raw bytes to the peer (may block)."""
        self._conn.send_bytes(data)

    def _read_chunk(self) -> bytes:
        """Next raw chunk from the peer; ``b""`` means EOF."""
        try:
            return self._conn.recv_bytes()
        except EOFError:
            return b""

    def _close_medium(self) -> None:
        """Tear down the underlying medium (called exactly once)."""
        self._conn.close()


def pipe_pair(
    context: Optional[multiprocessing.context.BaseContext] = None,
) -> Tuple[PipeTransport, PipeTransport]:
    """A connected in-process transport pair over a real OS pipe.

    The two ends are what a master/worker pair would hold after a
    fork — useful for exercising the pipe path without a child
    process.
    """
    ctx = context if context is not None else multiprocessing
    a, b = ctx.Pipe()
    return PipeTransport(a), PipeTransport(b)
