"""The loopback transport: an in-process framed channel for tests.

A connected pair of queues, no OS resources: the cheapest way to put
the full framing/codec stack under a microscope (byte-split property
tests, protocol unit tests, in-thread shard hosts) with semantics
identical to the pipe and socket transports — because all three share
:class:`~repro.transport.base.StreamTransport`.
"""

from __future__ import annotations

import queue
from typing import Tuple

from repro.transport.base import StreamTransport
from repro.transport.framing import MAX_PAYLOAD

__all__ = ["LoopbackTransport", "loopback_pair"]

#: The EOF sentinel a closing side enqueues for its peer.
_EOF = None


class LoopbackTransport(StreamTransport):
    """One end of an in-process transport pair (see
    :func:`loopback_pair`).  Thread-safe: the two ends may live on
    different threads, like a real master/worker split."""

    def __init__(self, rx: "queue.SimpleQueue", tx: "queue.SimpleQueue",
                 max_payload: int = MAX_PAYLOAD):
        super().__init__(max_payload)
        self._rx = rx
        self._tx = tx
        self._eof_seen = False

    def _write_bytes(self, data: bytes) -> None:
        """Ship raw bytes to the peer (may block)."""
        self._tx.put(bytes(data))

    def _read_chunk(self) -> bytes:
        """Next raw chunk from the peer; ``b""`` means EOF."""
        if self._eof_seen:
            return b""
        item = self._rx.get()
        if item is _EOF:
            self._eof_seen = True
            return b""
        return item

    def _close_medium(self) -> None:
        """Tear down the underlying medium (called exactly once)."""
        self._tx.put(_EOF)


def loopback_pair(
    max_payload: int = MAX_PAYLOAD,
) -> Tuple[LoopbackTransport, LoopbackTransport]:
    """A connected in-process transport pair (no OS resources)."""
    ab: "queue.SimpleQueue" = queue.SimpleQueue()
    ba: "queue.SimpleQueue" = queue.SimpleQueue()
    return (
        LoopbackTransport(rx=ba, tx=ab, max_payload=max_payload),
        LoopbackTransport(rx=ab, tx=ba, max_payload=max_payload),
    )
