"""Framed-message transport layer for distributed collection.

One framing format (:mod:`repro.transport.framing`), one message
abstraction (:mod:`repro.transport.base`), three media:

- :class:`PipeTransport` — ``multiprocessing`` pipes to forked
  collection workers (the historical fork-backend path, unchanged
  behavior);
- :class:`SocketTransport` / :class:`SocketListener` — TCP to remote
  shard hosts (``repro shard-host``), making the worker protocol
  host-portable;
- :class:`LoopbackTransport` — an in-process queue pair for tests.

On top of the byte layer, :mod:`repro.transport.codec` defines the
binary request/response vocabulary of the vectorized worker protocol
(``reset`` / ``step`` / ``run_chunk`` / records fan-in / shard
handshake), with NumPy payloads as raw buffers rather than pickles.
The serve control-plane protocol (:mod:`repro.serve.protocol`) frames
its messages through the same :mod:`~repro.transport.framing` module,
so the length-prefix layout and the oversize cap live in exactly one
place.
"""

from repro.transport.base import (
    Listener,
    StreamTransport,
    Transport,
    TransportClosedError,
)
from repro.transport.codec import (
    MSG_CMD,
    MSG_ERR,
    MSG_OK,
    decode_command,
    decode_error,
    decode_reply,
    decode_sections,
    encode_command,
    encode_error,
    encode_reply,
    encode_sections,
)
# PREFIX (the struct.Struct of the 5-byte frame prefix) stays a
# framing-module detail: its repr is instance-specific, so it is not
# part of the indexed package surface.
from repro.transport.framing import (
    MAX_PAYLOAD,
    FrameDecoder,
    ProtocolError,
    encode_frame,
    read_frame_async,
)
from repro.transport.loopback import LoopbackTransport, loopback_pair
from repro.transport.pipe import PipeTransport, pipe_pair
from repro.transport.tcp import SocketListener, SocketTransport, parse_address

__all__ = [
    "FrameDecoder",
    "Listener",
    "LoopbackTransport",
    "MAX_PAYLOAD",
    "MSG_CMD",
    "MSG_ERR",
    "MSG_OK",
    "PipeTransport",
    "ProtocolError",
    "SocketListener",
    "SocketTransport",
    "StreamTransport",
    "Transport",
    "TransportClosedError",
    "decode_command",
    "decode_error",
    "decode_reply",
    "decode_sections",
    "encode_command",
    "encode_error",
    "encode_frame",
    "encode_reply",
    "encode_sections",
    "loopback_pair",
    "parse_address",
    "pipe_pair",
    "read_frame_async",
]
