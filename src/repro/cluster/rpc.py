"""RPC request/reply records exchanged between OSCs and servers.

Plain dataclasses — the network layer treats them as opaque payloads with
a wire size; the server inspects kind/offset/size for scheduling.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

# Fixed protocol overhead per message on the wire, independent of payload.
RPC_HEADER_BYTES = 256


class RequestKind(enum.Enum):
    """I/O operation class carried by an RPC."""

    READ = "read"
    WRITE = "write"
    PING = "ping"
    META = "meta"  # stat/create/delete — small, latency-bound ops


_request_ids = itertools.count()


@dataclass
class Request:
    """One RPC from an OSC to its server.

    ``obj_id``/``offset``/``size`` describe the storage extent touched;
    the scheduler uses them for elevator sorting and contiguity merging.
    Timestamps are filled in as the request moves through the system and
    feed the secondary performance indicators (Ack/Send EWMA, PT ratio).
    """

    kind: RequestKind
    obj_id: int
    offset: int
    size: int
    client_id: int
    server_id: int
    req_id: int = field(default_factory=lambda: next(_request_ids))
    send_time: float = -1.0  # when the OSC put it on the wire
    arrive_time: float = -1.0  # when the server received it
    dequeue_time: float = -1.0  # when the server started service

    @property
    def wire_size(self) -> int:
        """Bytes occupying the client→server direction.

        Writes carry their payload; reads/pings/metadata are header-only.
        """
        if self.kind is RequestKind.WRITE:
            return RPC_HEADER_BYTES + self.size
        return RPC_HEADER_BYTES

    @property
    def end_offset(self) -> int:
        return self.offset + self.size


@dataclass
class Reply:
    """Server's response to a :class:`Request`."""

    request: Request
    complete_time: float  # when the disk finished servicing the request
    process_time: float  # dequeue -> disk completion (the paper's PT)

    @property
    def wire_size(self) -> int:
        """Bytes occupying the server→client direction (reads carry data)."""
        if self.request.kind is RequestKind.READ:
            return RPC_HEADER_BYTES + self.request.size
        return RPC_HEADER_BYTES
