"""Request-level tracing: per-RPC latency records and percentiles.

The paper tunes for aggregate throughput but §6 proposes latency as a
co-objective; validating that needs request-level visibility.  The
tracer hooks the client's reply path and records, per completed data
RPC: kind, size, queueing time at the server, service (process) time
and end-to-end latency.  Percentile summaries feed the latency
analyses in the ablation benches and the multi-objective example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.rpc import Reply, RequestKind


@dataclass(frozen=True)
class RequestTraceRecord:
    """One completed RPC, timestamped along its path."""

    kind: str
    client_id: int
    server_id: int
    size: int
    send_time: float
    complete_time: float
    process_time: float

    @property
    def latency(self) -> float:
        """End-to-end: client send to client receipt of the reply."""
        return self.complete_time - self.send_time


@dataclass
class LatencySummary:
    """Percentile summary over a set of trace records."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    max: float

    @classmethod
    def from_latencies(cls, lats: np.ndarray) -> "LatencySummary":
        if lats.size == 0:
            raise ValueError("no samples to summarise")
        return cls(
            count=int(lats.size),
            mean=float(lats.mean()),
            p50=float(np.percentile(lats, 50)),
            p90=float(np.percentile(lats, 90)),
            p99=float(np.percentile(lats, 99)),
            max=float(lats.max()),
        )


class RequestTracer:
    """Records every completed data RPC on a cluster.

    Wraps each OSC's ``on_reply`` so installation is one call and the
    hot path stays a plain Python function call.  ``detach`` restores
    the original handlers.
    """

    def __init__(self, cluster: Cluster, max_records: int = 1_000_000):
        if max_records <= 0:
            raise ValueError(f"max_records must be > 0, got {max_records}")
        self.cluster = cluster
        self.max_records = int(max_records)
        self.records: List[RequestTraceRecord] = []
        self.dropped = 0
        self._originals: Dict[tuple, object] = {}
        self._attached = False

    # -- lifecycle ---------------------------------------------------------
    def attach(self) -> "RequestTracer":
        if self._attached:
            raise RuntimeError("tracer already attached")
        for client in self.cluster.clients:
            for osc in client.oscs.values():
                key = (client.client_id, osc.server_id)
                original = osc.on_reply
                self._originals[key] = original

                def hooked(reply: Reply, _orig=original) -> None:
                    self._record(reply)
                    _orig(reply)

                osc.on_reply = hooked  # type: ignore[method-assign]
        self._attached = True
        return self

    def detach(self) -> None:
        if not self._attached:
            return
        for client in self.cluster.clients:
            for osc in client.oscs.values():
                key = (client.client_id, osc.server_id)
                osc.on_reply = self._originals[key]  # type: ignore[method-assign]
        self._originals.clear()
        self._attached = False

    def __enter__(self) -> "RequestTracer":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- recording ----------------------------------------------------------
    def _record(self, reply: Reply) -> None:
        req = reply.request
        if req.kind is RequestKind.PING:
            return
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(
            RequestTraceRecord(
                kind=req.kind.value,
                client_id=req.client_id,
                server_id=req.server_id,
                size=req.size,
                send_time=req.send_time,
                complete_time=self.cluster.sim.now,
                process_time=reply.process_time,
            )
        )

    # -- analysis ------------------------------------------------------------
    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def latencies(self, kind: Optional[str] = None) -> np.ndarray:
        recs: Iterable[RequestTraceRecord] = self.records
        if kind is not None:
            recs = (r for r in self.records if r.kind == kind)
        return np.array([r.latency for r in recs])

    def summary(self, kind: Optional[str] = None) -> LatencySummary:
        return LatencySummary.from_latencies(self.latencies(kind))

    def per_server_counts(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for r in self.records:
            out[r.server_id] = out.get(r.server_id, 0) + 1
        return out
