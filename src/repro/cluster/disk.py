"""Storage-device service models.

The evaluation hardware in the paper pairs each OSS with one 7200-RPM
HGST Travelstar Z7K500 (113 MB/s sequential read, 106 MB/s sequential
write).  The mechanisms that make CAPES's tuning matter all live here:

- **Seek + rotation dominate small random I/O.**  A random 32 KB request
  costs ~12 ms of positioning and ~0.3 ms of transfer.
- **Elevator scheduling rewards deep queues.**  Sorting a batch of k
  uniformly random targets shrinks the average inter-request seek
  distance roughly like 1/(k+1), so a deeper server queue (reachable via
  a larger client congestion window) lowers per-request service time —
  with diminishing returns, since rotational latency is not helped by
  sorting.
- **Contiguity merging rewards sequential streams.**  Back-to-back
  requests on the same object with touching extents coalesce into a
  single positioning operation.

This asymmetry is exactly why the paper sees write-heavy random
workloads gain the most from window tuning (§4.3): writes arrive
asynchronously from the client cache and can pile into deep, sortable
queues, while synchronous reads never queue deeply.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.cluster.rpc import Request, RequestKind
from repro.util.units import GiB, MiB, mb_per_s
from repro.util.validation import check_nonnegative, check_positive

#: A planned disk operation: the request and the busy time the disk
#: spends on it (seconds).  Requests complete in plan order.
PlannedOp = Tuple[Request, float]


@dataclass
class DiskStats:
    """Cumulative device counters (monotone; rates derived by callers)."""

    bytes_read: int = 0
    bytes_written: int = 0
    ops: int = 0
    seeks: int = 0
    busy_time: float = 0.0


class DiskModel(ABC):
    """Interface every device model implements.

    ``plan_batch`` consumes a snapshot of queued requests and returns the
    service order with per-request busy durations; the server node then
    holds the device busy for each duration in turn.  The model owns the
    head-position state, so planning mutates it.
    """

    def __init__(self) -> None:
        self.stats = DiskStats()

    @abstractmethod
    def plan_batch(self, requests: Sequence[Request]) -> List[PlannedOp]:
        """Order ``requests`` for service and price each one."""

    def _account(self, req: Request, duration: float, seeked: bool) -> None:
        self.stats.ops += 1
        self.stats.busy_time += duration
        if seeked:
            self.stats.seeks += 1
        if req.kind is RequestKind.READ:
            self.stats.bytes_read += req.size
        elif req.kind is RequestKind.WRITE:
            self.stats.bytes_written += req.size


class HDDModel(DiskModel):
    """Rotating disk with elevator sorting and contiguity merging.

    Parameters (defaults match the paper's measured hardware):

    seq_read_mbps / seq_write_mbps:
        Media transfer rate for reads / writes, MB/s.
    min_seek_ms / max_seek_ms:
        Track-to-track and full-stroke seek times; seeks scale with the
        square root of the LBA distance in between (a standard
        approximation of arm acceleration profiles).
    rpm:
        Spindle speed; the average rotational latency is half a rotation.
    capacity_bytes:
        Size of the LBA space objects are hashed into.
    meta_ms:
        Fixed service time of metadata operations (stat/create/delete),
        which are dominated by journal and dentry updates, not transfer.
    """

    def __init__(
        self,
        seq_read_mbps: float = 113.0,
        seq_write_mbps: float = 106.0,
        min_seek_ms: float = 0.5,
        max_seek_ms: float = 15.0,
        rpm: float = 7200.0,
        capacity_bytes: int = 500 * GiB,
        meta_ms: float = 2.0,
    ):
        super().__init__()
        check_positive("seq_read_mbps", seq_read_mbps)
        check_positive("seq_write_mbps", seq_write_mbps)
        check_nonnegative("min_seek_ms", min_seek_ms)
        check_positive("rpm", rpm)
        check_positive("capacity_bytes", capacity_bytes)
        if max_seek_ms < min_seek_ms:
            raise ValueError("max_seek_ms must be >= min_seek_ms")
        self.read_bw = mb_per_s(seq_read_mbps)
        self.write_bw = mb_per_s(seq_write_mbps)
        self.min_seek = min_seek_ms / 1e3
        self.max_seek = max_seek_ms / 1e3
        self.rot_latency = 0.5 * 60.0 / rpm  # half a rotation, seconds
        self.capacity = int(capacity_bytes)
        self.meta_time = meta_ms / 1e3
        self._head = 0  # current LBA of the head

    # -- address mapping -------------------------------------------------
    def lba_of(self, obj_id: int, offset: int) -> int:
        """Deterministically scatter objects across the LBA space.

        Knuth multiplicative hashing spreads object bases; offsets within
        an object are laid out contiguously (mod capacity), so intra-file
        sequential access is sequential on the platter.
        """
        base = (obj_id * 2654435761) % self.capacity
        return (base + offset) % self.capacity

    def _seek_time(self, distance: int) -> float:
        if distance == 0:
            return 0.0
        frac = min(1.0, distance / self.capacity)
        return self.min_seek + (self.max_seek - self.min_seek) * math.sqrt(frac)

    def _transfer_time(self, kind: RequestKind, size: int) -> float:
        if kind is RequestKind.META or kind is RequestKind.PING:
            return 0.0
        bw = self.read_bw if kind is RequestKind.READ else self.write_bw
        return size / bw

    # -- planning ----------------------------------------------------------
    def plan_batch(self, requests: Sequence[Request]) -> List[PlannedOp]:
        """Elevator-sort the batch by LBA, merge contiguous extents, price.

        Metadata/ping requests carry no extent; they are serviced first at
        fixed cost (they hit the journal, not the data area).
        """
        data_reqs = []
        plan: List[PlannedOp] = []
        for req in requests:
            if req.kind in (RequestKind.META, RequestKind.PING):
                dur = self.meta_time if req.kind is RequestKind.META else 0.0
                plan.append((req, dur))
                self._account(req, dur, seeked=False)
            else:
                data_reqs.append(req)

        # SCAN: serve in ascending LBA order starting from the head, then
        # wrap to the lowest remaining LBA (one directional sweep).
        keyed = sorted(
            ((self.lba_of(r.obj_id, r.offset), r) for r in data_reqs),
            key=lambda kr: kr[0],
        )
        ahead = [kr for kr in keyed if kr[0] >= self._head]
        behind = [kr for kr in keyed if kr[0] < self._head]
        sweep = ahead + behind

        i = 0
        while i < len(sweep):
            lba, req = sweep[i]
            distance = abs(lba - self._head)
            seek = self._seek_time(distance)
            rot = self.rot_latency if distance > 0 else 0.0
            dur = seek + rot + self._transfer_time(req.kind, req.size)
            plan.append((req, dur))
            self._account(req, dur, seeked=distance > 0)
            self._head = (lba + req.size) % self.capacity
            # Merge the contiguous run that follows: same object, same
            # kind, extent starting exactly where this one ended.
            j = i + 1
            prev = req
            while j < len(sweep):
                nlba, nreq = sweep[j]
                contiguous = (
                    nreq.obj_id == prev.obj_id
                    and nreq.kind == prev.kind
                    and nreq.offset == prev.end_offset
                )
                if not contiguous:
                    break
                ndur = self._transfer_time(nreq.kind, nreq.size)
                plan.append((nreq, ndur))
                self._account(nreq, ndur, seeked=False)
                self._head = (nlba + nreq.size) % self.capacity
                prev = nreq
                j += 1
            i = j
        return plan


class SSDModel(DiskModel):
    """Flash device: constant per-op latency, no positional effects.

    Included for the device-dependence ablation: on SSD-backed servers
    queue depth buys almost nothing, so a tuner should learn a different
    (nearly flat) policy.  Defaults approximate the Intel 330 used for
    the OS disks in the paper's testbed.
    """

    def __init__(
        self,
        read_mbps: float = 500.0,
        write_mbps: float = 450.0,
        op_latency_ms: float = 0.08,
        meta_ms: float = 0.2,
    ):
        super().__init__()
        check_positive("read_mbps", read_mbps)
        check_positive("write_mbps", write_mbps)
        check_nonnegative("op_latency_ms", op_latency_ms)
        self.read_bw = mb_per_s(read_mbps)
        self.write_bw = mb_per_s(write_mbps)
        self.op_latency = op_latency_ms / 1e3
        self.meta_time = meta_ms / 1e3

    def plan_batch(self, requests: Sequence[Request]) -> List[PlannedOp]:
        plan: List[PlannedOp] = []
        for req in requests:
            if req.kind is RequestKind.META:
                dur = self.meta_time
            elif req.kind is RequestKind.PING:
                dur = 0.0
            elif req.kind is RequestKind.READ:
                dur = self.op_latency + req.size / self.read_bw
            else:
                dur = self.op_latency + req.size / self.write_bw
            plan.append((req, dur))
            self._account(req, dur, seeked=False)
        return plan
