"""File striping: how one logical file spreads across the servers.

The paper uses Lustre's stripe count of four (all four servers) with a
1 MB stripe size, so every client's large I/O fans out to every server.
:class:`StripedFileSystem` performs the extent → (server, chunk) split
and drives the client's OSCs; :class:`FileLayout` is the pure mapping
(kept separate so it can be property-tested without a simulator).
"""

from __future__ import annotations

from typing import Generator, List, Tuple

from repro.cluster.client import ClientNode
from repro.sim.process import AllOf
from repro.util.units import MiB
from repro.util.validation import check_positive

#: One stripe-aligned piece of a logical extent.
Chunk = Tuple[int, int, int]  # (server_index, offset, size)


class FileLayout:
    """Pure striping arithmetic (round-robin, Lustre RAID-0 layout)."""

    def __init__(self, n_servers: int, stripe_size: int = MiB):
        check_positive("n_servers", n_servers)
        check_positive("stripe_size", stripe_size)
        self.n_servers = int(n_servers)
        self.stripe_size = int(stripe_size)

    def server_of(self, offset: int) -> int:
        """Which server stores the byte at ``offset``."""
        return (offset // self.stripe_size) % self.n_servers

    def split(self, offset: int, size: int) -> List[Chunk]:
        """Split extent ``[offset, offset+size)`` at stripe boundaries."""
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        if size <= 0:
            raise ValueError(f"size must be > 0, got {size}")
        chunks: List[Chunk] = []
        pos = offset
        remaining = size
        while remaining > 0:
            stripe_end = (pos // self.stripe_size + 1) * self.stripe_size
            take = min(remaining, stripe_end - pos)
            chunks.append((self.server_of(pos), pos, take))
            pos += take
            remaining -= take
        return chunks


class StripedFileSystem:
    """Per-client filesystem facade over the OSCs.

    All methods are simulation generators: application processes drive
    them with ``yield from``.  Reads fan chunks out to the involved OSCs
    concurrently and wait for all; writes reserve cache space chunk by
    chunk (back-pressure applies in offset order, like page-cache
    dirtying); metadata operations go to the metadata server (server 0,
    standing in for Lustre's MDS).
    """

    def __init__(self, client: ClientNode, layout: FileLayout):
        self.client = client
        self.layout = layout
        server_ids = sorted(client.oscs)
        if len(server_ids) != layout.n_servers:
            raise ValueError(
                f"layout expects {layout.n_servers} servers; client has "
                f"{len(server_ids)} OSCs"
            )
        self._server_ids = server_ids  # index in layout -> server id

    def _osc(self, server_index: int):
        return self.client.oscs[self._server_ids[server_index]]

    # -- data ops -----------------------------------------------------------
    def read(self, obj_id: int, offset: int, size: int) -> Generator:
        """Read an extent; completes when every chunk has arrived."""
        chunks = self.layout.split(offset, size)
        if len(chunks) == 1:
            sidx, off, sz = chunks[0]
            yield from self._osc(sidx).read(obj_id, off, sz)
            return size
        procs = [
            self.client.sim.spawn(
                self._osc(sidx).read(obj_id, off, sz),
                name=f"read.{obj_id}.{off}",
            )
            for sidx, off, sz in chunks
        ]
        yield AllOf(self.client.sim, procs)
        return size

    def write(self, obj_id: int, offset: int, size: int) -> Generator:
        """Write an extent; completes once all chunks are cache-resident."""
        for sidx, off, sz in self.layout.split(offset, size):
            yield from self._osc(sidx).write(obj_id, off, sz)
        return size

    # -- metadata ops --------------------------------------------------------
    def create(self, obj_id: int) -> Generator:
        yield from self._osc(0).meta(obj_id)

    def delete(self, obj_id: int) -> Generator:
        yield from self._osc(0).meta(obj_id)

    def stat(self, obj_id: int) -> Generator:
        yield from self._osc(0).meta(obj_id)
