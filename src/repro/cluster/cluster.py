"""Top-level cluster assembly.

:class:`ClusterConfig` captures the testbed of §4.2 (four servers, five
clients, gigabit fabric with a ~1:1 network-to-storage bandwidth ratio,
7200-RPM disks) as defaults, scaled down easily for fast experiments.
:class:`Cluster` wires servers, clients, fabric and metrics onto one
simulator and exposes the *tuning surface* CAPES manipulates — setting
``max_rpcs_in_flight`` and the I/O rate limit uniformly across clients,
exactly as the paper does ("All clients use the same parameter values
for all connections").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Literal, Optional

from repro.cluster.client import ClientNode
from repro.cluster.disk import DiskModel, HDDModel, SSDModel
from repro.cluster.filesystem import FileLayout, StripedFileSystem
from repro.cluster.metrics import MetricRegistry
from repro.cluster.network import Fabric
from repro.cluster.server import ServerNode
from repro.sim.engine import Simulator
from repro.util.units import MiB
from repro.util.validation import check_positive


@dataclass
class ClusterConfig:
    """Everything needed to build a cluster; defaults follow §4.2."""

    n_servers: int = 4
    n_clients: int = 5
    stripe_size: int = MiB
    disk_kind: Literal["hdd", "ssd"] = "hdd"
    nic_mbps: float = 117.0
    net_latency_s: float = 0.0002
    # Client-side tunables (defaults = untuned Lustre baseline).
    max_rpcs_in_flight: int = 8
    io_rate_limit: float = 10_000.0
    rate_burst: float = 64.0
    max_dirty_bytes: int = 32 * MiB
    # Server knobs.
    batch_max: int = 16
    collapse_threshold: int = 24
    collapse_coeff_ms: float = 0.18
    # HDD parameters (ignored for SSD).
    seq_read_mbps: float = 113.0
    seq_write_mbps: float = 106.0
    min_seek_ms: float = 0.5
    max_seek_ms: float = 15.0
    rpm: float = 7200.0
    meta_ms: float = 2.0

    def __post_init__(self) -> None:
        check_positive("n_servers", self.n_servers)
        check_positive("n_clients", self.n_clients)
        check_positive("max_rpcs_in_flight", self.max_rpcs_in_flight)
        check_positive("io_rate_limit", self.io_rate_limit)

    def make_disk(self) -> DiskModel:
        if self.disk_kind == "hdd":
            return HDDModel(
                seq_read_mbps=self.seq_read_mbps,
                seq_write_mbps=self.seq_write_mbps,
                min_seek_ms=self.min_seek_ms,
                max_seek_ms=self.max_seek_ms,
                rpm=self.rpm,
                meta_ms=self.meta_ms,
            )
        if self.disk_kind == "ssd":
            return SSDModel()
        raise ValueError(f"unknown disk_kind {self.disk_kind!r}")


class Cluster:
    """The assembled target system: the 'environment' in RL terms."""

    def __init__(self, sim: Simulator, config: Optional[ClusterConfig] = None):
        self.sim = sim
        self.config = config or ClusterConfig()
        cfg = self.config
        self.metrics = MetricRegistry()
        self.fabric = Fabric(sim, nic_mbps=cfg.nic_mbps, latency_s=cfg.net_latency_s)
        self.servers: List[ServerNode] = [
            ServerNode(
                sim,
                sid,
                cfg.make_disk(),
                self.fabric,
                self.metrics,
                batch_max=cfg.batch_max,
                collapse_threshold=cfg.collapse_threshold,
                collapse_coeff_ms=cfg.collapse_coeff_ms,
            )
            for sid in range(cfg.n_servers)
        ]
        self.clients: List[ClientNode] = [
            ClientNode(
                sim,
                cid,
                self.servers,
                self.fabric,
                self.metrics,
                window_capacity=cfg.max_rpcs_in_flight,
                io_rate_limit=cfg.io_rate_limit,
                rate_burst=cfg.rate_burst,
                max_dirty_bytes=cfg.max_dirty_bytes,
            )
            for cid in range(cfg.n_clients)
        ]
        self.layout = FileLayout(cfg.n_servers, stripe_size=cfg.stripe_size)
        self.filesystems: Dict[int, StripedFileSystem] = {
            c.client_id: StripedFileSystem(c, self.layout) for c in self.clients
        }

    # -- tuning surface --------------------------------------------------
    def set_max_rpcs_in_flight(self, value: int) -> None:
        """Apply the congestion-window parameter to every client."""
        for c in self.clients:
            c.set_max_rpcs_in_flight(value)

    def set_io_rate_limit(self, value: float) -> None:
        """Apply the I/O rate limit (requests/s) to every client."""
        for c in self.clients:
            c.set_io_rate_limit(value)

    def get_parameter(self, name: str) -> float:
        if name == "max_rpcs_in_flight":
            return float(self.clients[0].max_rpcs_in_flight)
        if name == "io_rate_limit":
            return float(self.clients[0].io_rate_limit)
        raise KeyError(f"unknown tunable parameter {name!r}")

    def set_parameter(self, name: str, value: float) -> None:
        if name == "max_rpcs_in_flight":
            self.set_max_rpcs_in_flight(int(round(value)))
        elif name == "io_rate_limit":
            self.set_io_rate_limit(float(value))
        else:
            raise KeyError(f"unknown tunable parameter {name!r}")

    # -- aggregate measurements -------------------------------------------
    def total_bytes_read(self) -> float:
        return self.metrics.value("cluster.bytes_read")

    def total_bytes_written(self) -> float:
        return self.metrics.value("cluster.bytes_written")

    def total_bytes(self) -> float:
        return self.total_bytes_read() + self.total_bytes_written()

    def fs(self, client_id: int) -> StripedFileSystem:
        """Filesystem facade for one client (what workloads drive)."""
        return self.filesystems[client_id]
