"""Cluster-side metric counters and per-tick rate derivation.

Monitoring agents (:mod:`repro.telemetry`) read *rates* once per sampling
tick; the cluster maintains *cumulative* counters.  :class:`Counter`
supports delta extraction against a remembered mark so each agent can
derive its own per-tick rates without the cluster knowing about ticks —
this mirrors the paper's advice (§3.1) that accumulative statuses should
be converted into rates before entering the DNN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


class Counter:
    """Monotone cumulative counter with per-reader marks."""

    __slots__ = ("_value", "_marks")

    def __init__(self) -> None:
        self._value = 0.0
        self._marks: Dict[str, float] = {}

    @property
    def value(self) -> float:
        return self._value

    def add(self, amount: float) -> None:
        if amount < 0:
            raise ValueError(f"counters are monotone; got add({amount})")
        self._value += amount

    def delta(self, reader: str) -> float:
        """Change since this reader's last call (first call: since 0)."""
        last = self._marks.get(reader, 0.0)
        self._marks[reader] = self._value
        return self._value - last

    def peek_delta(self, reader: str) -> float:
        """Like :meth:`delta` but without advancing the mark."""
        return self._value - self._marks.get(reader, 0.0)


class MetricRegistry:
    """Flat namespace of counters, created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = Counter()
            self._counters[name] = c
        return c

    def add(self, name: str, amount: float) -> None:
        self.counter(name).add(amount)

    def value(self, name: str) -> float:
        return self.counter(name).value

    def names(self):
        return sorted(self._counters)

    def snapshot(self) -> Dict[str, float]:
        """Point-in-time copy of every counter value."""
        return {name: c.value for name, c in self._counters.items()}
