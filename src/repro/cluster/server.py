"""Object Storage Server (OSS) node.

One worker loop drains the inbound RPC queue in batches, hands each
batch to the disk model's elevator planner, holds the disk busy for each
planned duration, and sends replies back over the fabric.  Write-through
semantics per the paper (§4.2): a write reply is only sent once the data
has hit the disk — the server never buffers dirty data.

Congestion collapse (§2 "a common curse among network and storage
researchers") is modelled as a per-request processing overhead that grows
linearly once the inbound queue exceeds ``collapse_threshold``:
memory-pressure, lock-contention and request-management costs all scale
with the number of outstanding requests.  This is the mechanism that
makes blindly maxing the congestion window *hurt*, giving the tuning
problem the interior optimum CAPES must find.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.cluster.disk import DiskModel
from repro.cluster.metrics import MetricRegistry
from repro.cluster.network import Fabric
from repro.cluster.rpc import Reply, Request, RequestKind
from repro.sim.engine import Simulator, Timeout
from repro.sim.resources import Store
from repro.util.validation import check_nonnegative, check_positive

#: Signature for handing a reply to the destination client object once
#: the fabric has delivered it.
ReplySink = Callable[[Reply], None]


class ServerNode:
    """A single OSS: inbound queue + elevator-scheduled disk worker."""

    def __init__(
        self,
        sim: Simulator,
        server_id: int,
        disk: DiskModel,
        fabric: Fabric,
        metrics: MetricRegistry,
        batch_max: int = 16,
        collapse_threshold: int = 24,
        collapse_coeff_ms: float = 0.18,
    ):
        check_positive("batch_max", batch_max)
        check_nonnegative("collapse_threshold", collapse_threshold)
        check_nonnegative("collapse_coeff_ms", collapse_coeff_ms)
        self.sim = sim
        self.server_id = server_id
        self.node_id = f"server-{server_id}"
        self.disk = disk
        self.fabric = fabric
        self.metrics = metrics
        self.batch_max = int(batch_max)
        self.collapse_threshold = int(collapse_threshold)
        self.collapse_coeff = collapse_coeff_ms / 1e3
        self.queue: Store = Store(sim)
        self._reply_sinks: dict[int, ReplySink] = {}
        self._in_service = 0
        self._min_process_time: Optional[float] = None
        fabric.register(self.node_id)
        sim.spawn(self._worker(), name=f"{self.node_id}.worker")

    # -- wiring ----------------------------------------------------------
    def register_client(self, client_id: int, sink: ReplySink) -> None:
        """Tell the server how to hand a delivered reply to a client."""
        self._reply_sinks[client_id] = sink

    # -- ingress -----------------------------------------------------------
    def deliver(self, request: Request) -> None:
        """Called by the client's fabric-send callback on RPC arrival."""
        request.arrive_time = self.sim.now
        self.metrics.add(f"server.{self.server_id}.rpc_in", 1)
        if request.kind is RequestKind.PING:
            # Pings are answered by the RPC service threads directly and
            # never touch the disk queue (like Lustre's OBD_PING).
            self._send_reply(Reply(request, self.sim.now, 0.0))
            return
        self.queue.put(request)

    @property
    def queue_depth(self) -> int:
        """Requests queued plus requests inside the current batch."""
        return len(self.queue) + self._in_service

    # -- service loop --------------------------------------------------------
    def _worker(self):
        while True:
            first: Request = yield self.queue.get()
            batch: List[Request] = [first]
            while len(batch) < self.batch_max and len(self.queue) > 0:
                more = yield self.queue.get()
                batch.append(more)
            self._in_service = len(batch)
            plan = self.disk.plan_batch(batch)
            for req, dur in plan:
                req.dequeue_time = self.sim.now
                overhead = self._collapse_overhead()
                yield Timeout(dur + overhead)
                self._in_service -= 1
                pt = self.sim.now - req.dequeue_time
                self._track_process_time(pt)
                self._complete(req, pt)

    def _collapse_overhead(self) -> float:
        excess = self.queue_depth - self.collapse_threshold
        return self.collapse_coeff * excess if excess > 0 else 0.0

    def _track_process_time(self, pt: float) -> None:
        if pt <= 0:
            return
        if self._min_process_time is None or pt < self._min_process_time:
            self._min_process_time = pt

    @property
    def min_process_time(self) -> Optional[float]:
        """Shortest data-request service time seen (PT-ratio denominator)."""
        return self._min_process_time

    def _complete(self, req: Request, process_time: float) -> None:
        if req.kind is RequestKind.READ:
            self.metrics.add(f"server.{self.server_id}.bytes_read", req.size)
        elif req.kind is RequestKind.WRITE:
            self.metrics.add(f"server.{self.server_id}.bytes_written", req.size)
        self._send_reply(Reply(req, self.sim.now, process_time))

    def _send_reply(self, reply: Reply) -> None:
        cid = reply.request.client_id
        sink = self._reply_sinks.get(cid)
        if sink is None:
            raise KeyError(
                f"server {self.server_id} has no reply sink for client {cid}"
            )
        ev = self.fabric.send(
            self.node_id, f"client-{cid}", reply.wire_size, reply
        )
        ev.add_callback(lambda e: sink(e.value))
