"""Background network noise (§4.2).

"It is worth noting that the whole evaluation system is not located on
an isolated network ... we have observed network traffic interference
from time to time, such as the routine network scanning of the IT
department and machine status queries from the cluster monitoring
system.  We did not isolate the whole system because we consider this
kind of noise as beneficial to the evaluation."

:class:`NoiseTraffic` reproduces that interference: an external node
attached to the fabric sends Poisson-arriving probe bursts (small
scanning packets) and occasional bulk transfers at random targets.
The traffic consumes real link capacity, so PIs and rewards pick up
genuine jitter — "a tuning system [that] works only within a perfect
environment is not pragmatically interesting".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.cluster import Cluster
from repro.sim.engine import Timeout
from repro.util.rng import ensure_rng
from repro.util.units import KiB, MiB
from repro.util.validation import check_nonnegative, check_positive


@dataclass
class NoiseConfig:
    """Intensity knobs for the interference generator.

    ``probe_rate`` is per second across the whole cluster; bulk
    transfers model monitoring systems shipping logs/metrics.
    """

    probe_rate: float = 2.0
    probe_bytes: int = 2 * KiB
    bulk_rate: float = 0.05
    bulk_bytes: int = 8 * MiB

    def __post_init__(self) -> None:
        check_nonnegative("probe_rate", self.probe_rate)
        check_positive("probe_bytes", self.probe_bytes)
        check_nonnegative("bulk_rate", self.bulk_rate)
        check_positive("bulk_bytes", self.bulk_bytes)


class NoiseTraffic:
    """External interference source attached to the cluster fabric."""

    NODE_ID = "it-department"

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[NoiseConfig] = None,
        seed=None,
    ):
        self.cluster = cluster
        self.config = config or NoiseConfig()
        self.rng = ensure_rng(seed)
        self.probes_sent = 0
        self.bulk_sent = 0
        cluster.fabric.register(self.NODE_ID)
        self._targets = [s.node_id for s in cluster.servers] + [
            c.node_id for c in cluster.clients
        ]
        sim = cluster.sim
        if self.config.probe_rate > 0:
            sim.spawn(self._probe_loop(), name="noise.probes")
        if self.config.bulk_rate > 0:
            sim.spawn(self._bulk_loop(), name="noise.bulk")

    def _pick_target(self) -> str:
        return self._targets[int(self.rng.integers(len(self._targets)))]

    def _probe_loop(self):
        """Network-scan style traffic: small packets, Poisson arrivals."""
        cfg = self.config
        while True:
            yield Timeout(float(self.rng.exponential(1.0 / cfg.probe_rate)))
            self.cluster.fabric.send(
                self.NODE_ID, self._pick_target(), cfg.probe_bytes, None
            )
            self.probes_sent += 1

    def _bulk_loop(self):
        """Monitoring-system style traffic: rare large transfers."""
        cfg = self.config
        while True:
            yield Timeout(float(self.rng.exponential(1.0 / cfg.bulk_rate)))
            self.cluster.fabric.send(
                self.NODE_ID, self._pick_target(), cfg.bulk_bytes, None
            )
            self.bulk_sent += 1
