"""Client node: Object Storage Clients, write cache, tunable knobs.

Each client maintains one :class:`OSC` per server it talks to (§4.1 of
the paper: four servers, stripe count four, so four OSCs per client).
The two tunables CAPES adjusts live here:

- ``max_rpcs_in_flight`` — per-OSC congestion window, a
  :class:`~repro.sim.resources.Resource` whose capacity is resized at
  runtime by control actions;
- the **I/O rate limit** — a client-wide
  :class:`~repro.sim.resources.TokenBucket` (requests/second) that every
  outgoing data RPC must pass.

Writes are asynchronous: they land in a per-OSC write-back cache
(bounded by ``max_dirty_bytes``) and a flusher pipeline pushes them to
the server subject to rate limit and window.  Reads and metadata
operations are synchronous RPCs.  This asymmetry — writes can fill deep
server queues, synchronous reads cannot — is what makes congestion-window
tuning matter far more for write-heavy workloads (Figure 2).

Each OSC also maintains the paper's secondary performance indicators:
Ack EWMA (gaps between replies), Send EWMA (gaps between the send times
of replied requests) and the Process-Time ratio (current PT / minimum PT
seen), the three congestion signals CAPES patched into the Lustre client.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Generator, Optional, Tuple

from repro.cluster.metrics import Counter, MetricRegistry
from repro.cluster.network import Fabric
from repro.cluster.rpc import Reply, Request, RequestKind
from repro.sim.engine import Event, Simulator
from repro.sim.resources import Resource, Store, TokenBucket
from repro.util.ewma import EWMA
from repro.util.units import MiB
from repro.util.validation import check_positive

#: EWMA weight for the Ack/Send gap indicators; matches the fast-moving
#: congestion trackers in ASCAR, the paper's predecessor system.
GAP_EWMA_ALPHA = 0.125


class WriteCache:
    """Bounded dirty-byte accounting with FIFO blocking reservations."""

    def __init__(self, sim: Simulator, max_dirty_bytes: int):
        check_positive("max_dirty_bytes", max_dirty_bytes)
        self.sim = sim
        self.max_dirty = int(max_dirty_bytes)
        self.dirty = 0
        self._waiters: Deque[Tuple[int, Event]] = deque()

    def reserve(self, size: int) -> Event:
        """Claim ``size`` dirty bytes; blocks (FIFO) while the cache is full."""
        if size <= 0:
            raise ValueError(f"write size must be > 0, got {size}")
        if size > self.max_dirty:
            raise ValueError(
                f"single write of {size} B exceeds cache capacity "
                f"{self.max_dirty} B; split it first"
            )
        ev = self.sim.event()
        if not self._waiters and self.dirty + size <= self.max_dirty:
            self.dirty += size
            ev.succeed()
        else:
            self._waiters.append((size, ev))
        return ev

    def commit(self, size: int) -> None:
        """Mark ``size`` bytes clean (flushed to stable storage)."""
        if size > self.dirty:
            raise ValueError(f"commit({size}) exceeds dirty bytes {self.dirty}")
        self.dirty -= size
        while self._waiters and self.dirty + self._waiters[0][0] <= self.max_dirty:
            sz, ev = self._waiters.popleft()
            self.dirty += sz
            ev.succeed()


class OSC:
    """Object Storage Client: the client's endpoint for one server."""

    def __init__(
        self,
        sim: Simulator,
        client_id: int,
        server: "object",  # ServerNode; duck-typed to avoid import cycle
        fabric: Fabric,
        metrics: MetricRegistry,
        rate_bucket: TokenBucket,
        window_capacity: int = 8,
        max_dirty_bytes: int = 32 * MiB,
    ):
        self.sim = sim
        self.client_id = client_id
        self.server = server
        self.server_id = server.server_id
        self.node_id = f"client-{client_id}"
        self.fabric = fabric
        self.metrics = metrics
        self.rate_bucket = rate_bucket
        self.window = Resource(sim, capacity=window_capacity)
        self.cache = WriteCache(sim, max_dirty_bytes)
        self._flush_queue: Store = Store(sim)
        self._pending: Dict[int, Event] = {}

        # Secondary performance indicators (paper §4.1, items 7-9).
        self.ack_ewma = EWMA(GAP_EWMA_ALPHA)
        self.send_ewma = EWMA(GAP_EWMA_ALPHA)
        self._last_reply_time: Optional[float] = None
        self._last_replied_send: Optional[float] = None
        self._min_pt: Optional[float] = None
        self._last_pt: float = 0.0

        # Completion counters; monitoring agents read per-tick deltas.
        self.read_bytes_done = Counter()
        self.write_bytes_done = Counter()
        self.rpcs_sent = Counter()

        sim.spawn(self._flusher(), name=f"{self.node_id}->s{self.server_id}.flush")

    # -- public I/O API (used by the striped filesystem) -----------------
    def read(self, obj_id: int, offset: int, size: int) -> Generator:
        """Synchronous read; completes when the data has arrived."""
        reply = yield from self._data_rpc(RequestKind.READ, obj_id, offset, size)
        self.read_bytes_done.add(size)
        self.metrics.add("cluster.bytes_read", size)
        self.metrics.add(f"client.{self.client_id}.bytes_read", size)
        return reply

    def write(self, obj_id: int, offset: int, size: int) -> Generator:
        """Write-back write; completes once the cache accepted the bytes."""
        yield self.cache.reserve(size)
        self._flush_queue.put((obj_id, offset, size))
        return None

    def meta(self, obj_id: int) -> Generator:
        """Synchronous metadata operation (stat/create/delete)."""
        reply = yield from self._data_rpc(RequestKind.META, obj_id, 0, 0)
        self.metrics.add(f"client.{self.client_id}.meta_ops", 1)
        return reply

    def flush_barrier(self) -> Generator:
        """Wait until every currently dirty byte has been committed."""
        while self.cache.dirty > 0 or len(self._flush_queue) > 0:
            yield self.sim.timeout(0.01)

    # -- flusher pipeline --------------------------------------------------
    def _flusher(self):
        while True:
            chunk = yield self._flush_queue.get()
            yield self.rate_bucket.acquire(1.0)
            yield self.window.acquire()
            self.sim.spawn(
                self._flush_one(*chunk),
                name=f"{self.node_id}->s{self.server_id}.wr",
            )

    def _flush_one(self, obj_id: int, offset: int, size: int):
        try:
            reply = yield from self._rpc_exchange(
                RequestKind.WRITE, obj_id, offset, size
            )
        finally:
            self.window.release()
        self.cache.commit(size)
        self.write_bytes_done.add(size)
        self.metrics.add("cluster.bytes_written", size)
        self.metrics.add(f"client.{self.client_id}.bytes_written", size)
        return reply

    # -- shared RPC plumbing -----------------------------------------------
    def _data_rpc(self, kind: RequestKind, obj_id: int, offset: int, size: int):
        yield self.rate_bucket.acquire(1.0)
        yield self.window.acquire()
        try:
            reply = yield from self._rpc_exchange(kind, obj_id, offset, size)
        finally:
            self.window.release()
        return reply

    def _rpc_exchange(self, kind: RequestKind, obj_id: int, offset: int, size: int):
        req = Request(
            kind=kind,
            obj_id=obj_id,
            offset=offset,
            size=size,
            client_id=self.client_id,
            server_id=self.server_id,
        )
        req.send_time = self.sim.now
        self.rpcs_sent.add(1)
        done = self.sim.event()
        self._pending[req.req_id] = done
        sent = self.fabric.send(
            self.node_id, self.server.node_id, req.wire_size, req
        )
        sent.add_callback(lambda e: self.server.deliver(e.value))
        reply: Reply = yield done
        return reply

    def on_reply(self, reply: Reply) -> None:
        """Fabric delivery callback: update PIs, wake the waiter."""
        now = self.sim.now
        if self._last_reply_time is not None:
            self.ack_ewma.update(now - self._last_reply_time)
        self._last_reply_time = now
        st = reply.request.send_time
        if self._last_replied_send is not None:
            self.send_ewma.update(st - self._last_replied_send)
        self._last_replied_send = st
        pt = reply.process_time
        if pt > 0:
            self._last_pt = pt
            if self._min_pt is None or pt < self._min_pt:
                self._min_pt = pt
        waiter = self._pending.pop(reply.request.req_id, None)
        if waiter is None:
            raise KeyError(f"reply for unknown request {reply.request.req_id}")
        waiter.succeed(reply)

    # -- indicators -----------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return self.window.in_use

    @property
    def pt_ratio(self) -> float:
        """Current process time / shortest process time seen so far."""
        if self._min_pt is None or self._min_pt <= 0:
            return 1.0
        return self._last_pt / self._min_pt

    @property
    def ping_latency(self) -> float:
        """RTT estimate including current wire backlog (the ping PI)."""
        return self.fabric.ping_rtt_estimate(self.node_id, self.server.node_id)


class ClientNode:
    """One compute/application node with an OSC per server."""

    def __init__(
        self,
        sim: Simulator,
        client_id: int,
        servers,
        fabric: Fabric,
        metrics: MetricRegistry,
        window_capacity: int = 8,
        io_rate_limit: float = 10_000.0,
        rate_burst: float = 64.0,
        max_dirty_bytes: int = 32 * MiB,
    ):
        self.sim = sim
        self.client_id = client_id
        self.node_id = f"client-{client_id}"
        self.metrics = metrics
        fabric.register(self.node_id)
        self.rate_bucket = TokenBucket(sim, rate=io_rate_limit, capacity=rate_burst)
        self._window_capacity = int(window_capacity)
        self.oscs: Dict[int, OSC] = {}
        for server in servers:
            osc = OSC(
                sim,
                client_id,
                server,
                fabric,
                metrics,
                self.rate_bucket,
                window_capacity=window_capacity,
                max_dirty_bytes=max_dirty_bytes,
            )
            self.oscs[server.server_id] = osc
            server.register_client(client_id, self._on_reply)

    def _on_reply(self, reply: Reply) -> None:
        self.oscs[reply.request.server_id].on_reply(reply)

    # -- tunable parameters (the paper's two knobs) ------------------------
    @property
    def max_rpcs_in_flight(self) -> int:
        return self._window_capacity

    def set_max_rpcs_in_flight(self, value: int) -> None:
        check_positive("max_rpcs_in_flight", value)
        self._window_capacity = int(value)
        for osc in self.oscs.values():
            osc.window.set_capacity(int(value))

    @property
    def io_rate_limit(self) -> float:
        return self.rate_bucket.rate

    def set_io_rate_limit(self, value: float) -> None:
        check_positive("io_rate_limit", value)
        self.rate_bucket.set_rate(float(value))

    # -- convenience ----------------------------------------------------------
    def flush_barrier(self) -> Generator:
        """Wait until all OSC write caches have fully drained."""
        for osc in self.oscs.values():
            yield from osc.flush_barrier()
