"""Lustre-like distributed storage cluster model.

This package is the paper's *target system*, rebuilt as a discrete-event
simulation (see DESIGN.md §2 for the substitution argument).  It models
the specific mechanisms the CAPES evaluation exercises:

- **Object Storage Servers (OSS)** with a rotating-disk service model:
  seek + rotational + transfer time, an elevator scheduler that sorts and
  merges queued requests (deeper queues ⇒ cheaper per-request service,
  with diminishing returns), and a congestion-collapse regime when the
  inbound queue grows past the server's comfortable depth.
- **Object Storage Clients (OSC)**, one per client⇄server pair, each with
  a ``max_rpcs_in_flight`` congestion window (the paper's first tunable),
  a client-wide token-bucket I/O rate limit (the second tunable), and a
  write-back page cache with a dirty-byte cap.
- **A shared network fabric** of serial full-duplex links: messages incur
  serialisation delay at NIC bandwidth plus propagation latency, and the
  aggregate fabric throughput is capped, mirroring the evaluation
  system's ~500 MB/s gigabit aggregate.
- **File striping** (stripe count = number of servers, 1 MB stripes by
  default) so every client talks to every server in parallel, exactly as
  Lustre distributes load.

The top-level entry point is :class:`~repro.cluster.cluster.Cluster`,
built from a :class:`~repro.cluster.cluster.ClusterConfig`.
"""

from repro.cluster.client import ClientNode, OSC, WriteCache
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.disk import DiskModel, HDDModel, SSDModel
from repro.cluster.filesystem import FileLayout, StripedFileSystem
from repro.cluster.metrics import Counter, MetricRegistry
from repro.cluster.network import Fabric, Link
from repro.cluster.noise import NoiseConfig, NoiseTraffic
from repro.cluster.rpc import Reply, Request, RequestKind
from repro.cluster.server import ServerNode
from repro.cluster.trace import LatencySummary, RequestTracer, RequestTraceRecord

__all__ = [
    "NoiseConfig",
    "NoiseTraffic",
    "RequestTracer",
    "RequestTraceRecord",
    "LatencySummary",
    "Cluster",
    "ClusterConfig",
    "ClientNode",
    "OSC",
    "WriteCache",
    "DiskModel",
    "HDDModel",
    "SSDModel",
    "FileLayout",
    "StripedFileSystem",
    "Counter",
    "MetricRegistry",
    "Fabric",
    "Link",
    "Request",
    "Reply",
    "RequestKind",
    "ServerNode",
]
