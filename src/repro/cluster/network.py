"""Network fabric: serial NIC links with propagation latency.

Each node owns a full-duplex NIC modelled as two independent serial
links (egress and ingress).  A message transmission:

1. occupies the sender's egress link for ``size / bandwidth`` seconds
   (serialisation), queuing FIFO behind earlier messages;
2. propagates for a fixed ``latency``;
3. occupies the receiver's ingress link for its serialisation time —
   this is where *incast* congestion appears when five clients push
   writes at four servers simultaneously, the dominant network effect in
   the paper's write-heavy experiments;
4. is delivered.

Per-link serialisation automatically caps aggregate fabric throughput at
the sum of NIC rates, matching the testbed's measured ~500 MB/s without
a separate global limiter.  Queueing delay at the ingress links is what
the Ack-EWMA performance indicator picks up as congestion builds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.sim.engine import Event, Simulator
from repro.util.units import mb_per_s
from repro.util.validation import check_nonnegative, check_positive


@dataclass
class LinkStats:
    """Cumulative per-link counters."""

    messages: int = 0
    bytes: int = 0
    queue_delay: float = 0.0  # total time spent waiting for the wire
    busy_time: float = 0.0


class Link:
    """A serial transmission line with FIFO queueing.

    Bookkeeping is a single ``busy_until`` timestamp — no process or
    queue object needed, which keeps the per-message event count low
    (important: the cluster pushes ~10³ messages per simulated second).
    """

    def __init__(self, sim: Simulator, bandwidth: float, name: str = "link"):
        check_positive("bandwidth", bandwidth)
        self.sim = sim
        self.bandwidth = float(bandwidth)
        self.name = name
        self._busy_until = 0.0
        self.stats = LinkStats()

    @property
    def queue_depth_seconds(self) -> float:
        """How far ahead of now the link is already committed."""
        return max(0.0, self._busy_until - self.sim.now)

    def reserve(self, size: int) -> float:
        """Book ``size`` bytes onto the wire; return the completion time."""
        check_nonnegative("size", size)
        now = self.sim.now
        start = max(now, self._busy_until)
        ser = size / self.bandwidth
        self.stats.messages += 1
        self.stats.bytes += size
        self.stats.queue_delay += start - now
        self.stats.busy_time += ser
        self._busy_until = start + ser
        return self._busy_until


class Fabric:
    """All NICs plus the propagation delay between any two nodes.

    ``register(node_id)`` creates the node's link pair; ``send`` moves a
    message from one node to another and returns the delivery event whose
    value is the payload.
    """

    def __init__(
        self,
        sim: Simulator,
        nic_mbps: float = 117.0,
        latency_s: float = 0.0002,
    ):
        check_nonnegative("latency_s", latency_s)
        self.sim = sim
        self.nic_bw = mb_per_s(nic_mbps)
        self.latency = float(latency_s)
        self._egress: Dict[Any, Link] = {}
        self._ingress: Dict[Any, Link] = {}

    def register(self, node_id: Any) -> None:
        if node_id in self._egress:
            raise ValueError(f"node {node_id!r} already registered")
        self._egress[node_id] = Link(self.sim, self.nic_bw, f"{node_id}.out")
        self._ingress[node_id] = Link(self.sim, self.nic_bw, f"{node_id}.in")

    def egress_link(self, node_id: Any) -> Link:
        return self._egress[node_id]

    def ingress_link(self, node_id: Any) -> Link:
        return self._ingress[node_id]

    def links(self) -> List[Link]:
        """Every registered link (egress then ingress, insertion order).

        The mutation surface fabric-wide perturbations act on — e.g.
        :class:`repro.scenarios.events.NetworkCongestionWindow` scales
        each link's bandwidth for a bounded window.
        """
        return list(self._egress.values()) + list(self._ingress.values())

    def ping_rtt_estimate(self, src: Any, dst: Any, probe_bytes: int = 256) -> float:
        """Instantaneous RTT estimate for a small probe, *including* the
        current queue backlogs — this is the 'ping latency' PI."""
        out_q = self._egress[src].queue_depth_seconds
        in_q = self._ingress[dst].queue_depth_seconds
        back_out = self._egress[dst].queue_depth_seconds
        back_in = self._ingress[src].queue_depth_seconds
        ser = 4 * probe_bytes / self.nic_bw
        return out_q + in_q + back_out + back_in + 2 * self.latency + ser

    def send(self, src: Any, dst: Any, size: int, payload: Any) -> Event:
        """Transmit ``size`` bytes of ``payload`` from ``src`` to ``dst``.

        Returns an event that fires with ``payload`` on delivery.
        """
        if src not in self._egress:
            raise KeyError(f"unregistered sender {src!r}")
        if dst not in self._ingress:
            raise KeyError(f"unregistered receiver {dst!r}")
        delivered = self.sim.event()
        tx_done = self._egress[src].reserve(size)
        ingress = self._ingress[dst]

        def at_receiver() -> None:
            rx_done = ingress.reserve(size)

            def deliver() -> None:
                delivered.succeed(payload)

            self.sim.call_at(rx_done, deliver)

        self.sim.call_at(tx_done + self.latency, at_receiver)
        return delivered
