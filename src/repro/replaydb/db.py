"""Durable replay store: SQLite with write-ahead logging (§4.1).

"The Replay DB is a SQLite database using Write-Ahead-Logging for
optimal concurrent write/read performance."  Observations and actions
live in two tables indexed by tick, exactly as §3.5 describes; rewards
are stored with the observations (the objective value measured over the
tick).  :class:`ReplayDB` wraps the SQLite store together with the
in-memory :class:`~repro.replaydb.cache.ReplayCache`; writers go through
the façade so both layers stay consistent, and training reads only ever
hit the cache.

An in-memory database (``path=":memory:"``) is the default for
simulation runs; pass a real path to persist across sessions, which is
how Figure 4's multi-session experiment reloads its history.  Pass
``path=None`` (or the :data:`CACHE_ONLY` sentinel) to skip SQLite
entirely and run on the cache alone — an in-memory SQLite database
buys no durability over the cache, only per-write overhead, so the
vectorized fan-in store defaults to this mode.
"""

from __future__ import annotations

import sqlite3
from typing import Iterable, Optional

import numpy as np

from repro.replaydb.cache import ReplayCache
from repro.replaydb.records import TickRecord

#: ``path`` sentinel for a cache-only store (no SQLite layer at all).
#: ``None`` means the same thing; the named constant reads better at
#: call sites that thread the path through several layers.
CACHE_ONLY = "cache-only"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS observations (
    tick   INTEGER PRIMARY KEY,
    frame  BLOB NOT NULL,
    reward REAL NOT NULL DEFAULT 0.0
);
CREATE TABLE IF NOT EXISTS actions (
    tick   INTEGER PRIMARY KEY,
    action INTEGER NOT NULL
);
"""


class ReplayDB:
    """SQLite-backed replay database with a NumPy read cache."""

    def __init__(
        self,
        frame_width: int,
        path: Optional[str] = ":memory:",
        cache_capacity: int = 250_000,
    ):
        self.frame_width = int(frame_width)
        if path is None or path == CACHE_ONLY:
            # Cache-only store: no SQLite layer.  Durability is not
            # wanted here (the fan-in DB of a vectorized run is rebuilt
            # from scratch every session), so the per-write SQL cost
            # would be pure overhead.
            self.path = None
            self._conn = None
        else:
            self.path = path
            self._conn = sqlite3.connect(path)
            # WAL needs a real file; in-memory databases silently keep
            # their default journal, which is fine for simulation runs.
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
        self.cache = ReplayCache(frame_width, capacity=cache_capacity)
        if self._conn is not None:
            self._load_existing()

    # -- persistence ------------------------------------------------------
    def _load_existing(self) -> None:
        """Warm the cache from whatever the database already holds."""
        rows = self._conn.execute(
            "SELECT o.tick, o.frame, o.reward, a.action FROM observations o "
            "LEFT JOIN actions a ON a.tick = o.tick ORDER BY o.tick"
        ).fetchall()
        for tick, blob, reward, action in rows:
            frame = np.frombuffer(blob, dtype=np.float64)
            if frame.shape != (self.frame_width,):
                raise ValueError(
                    f"stored frame at tick {tick} has width {frame.shape}, "
                    f"database was created with a different PI layout"
                )
            self.cache.put(
                TickRecord(
                    tick=tick,
                    frame=frame.copy(),
                    action=-1 if action is None else int(action),
                    reward=float(reward),
                )
            )

    # -- writer API (used by the Interface Daemon) -------------------------
    def put_observation(self, tick: int, frame: np.ndarray, reward: float = 0.0) -> None:
        """Store one tick's PI frame (+ objective), durably and cached."""
        frame = np.ascontiguousarray(frame, dtype=np.float64)
        if self._conn is not None:
            self._conn.execute(
                "INSERT OR REPLACE INTO observations (tick, frame, reward) "
                "VALUES (?, ?, ?)",
                (int(tick), frame.tobytes(), float(reward)),
            )
        self.cache.put(TickRecord(tick=int(tick), frame=frame, reward=float(reward)))

    def put_action(self, tick: int, action: int) -> None:
        """Store the action index taken at ``tick``."""
        if self._conn is not None:
            self._conn.execute(
                "INSERT OR REPLACE INTO actions (tick, action) VALUES (?, ?)",
                (int(tick), int(action)),
            )
        if self.cache.has(int(tick)):
            self.cache.set_action(int(tick), int(action))

    def put_many(
        self,
        ticks: np.ndarray,
        frames: np.ndarray,
        rewards: np.ndarray,
        actions: Optional[np.ndarray] = None,
    ) -> None:
        """Bulk write: ``executemany`` + one commit, then one cache put.

        Record-for-record equivalent to a ``put_observation`` /
        ``put_action`` loop over the same data (``actions[i] < 0`` means
        no action at that tick, matching ``TickRecord``), but with one
        SQL statement per table, one transaction commit per batch, and
        one vectorized cache assignment — the write shape the vectorized
        collection fan-in needs.  The commit also makes each chunk
        boundary durable, which the per-record writers never did.
        """
        ticks = np.asarray(ticks, dtype=np.int64)
        frames = np.ascontiguousarray(frames, dtype=np.float64)
        rewards = np.asarray(rewards, dtype=np.float64)
        if actions is None:
            actions = np.full(ticks.shape[0], -1, dtype=np.int64)
        else:
            actions = np.asarray(actions, dtype=np.int64)
        if ticks.shape[0] == 0:
            return
        if self._conn is not None:
            self._conn.executemany(
                "INSERT OR REPLACE INTO observations (tick, frame, reward) "
                "VALUES (?, ?, ?)",
                [
                    (int(t), f.tobytes(), float(r))
                    for t, f, r in zip(ticks, frames, rewards)
                ],
            )
            acted = actions >= 0
            if np.any(acted):
                self._conn.executemany(
                    "INSERT OR REPLACE INTO actions (tick, action) "
                    "VALUES (?, ?)",
                    [
                        (int(t), int(a))
                        for t, a in zip(ticks[acted], actions[acted])
                    ],
                )
            self._conn.commit()
        self.cache.put_many(ticks, frames, rewards, actions)

    def set_reward(self, tick: int, reward: float) -> None:
        """Attach the objective measured over ``tick``."""
        if self._conn is not None:
            self._conn.execute(
                "UPDATE observations SET reward = ? WHERE tick = ?",
                (float(reward), int(tick)),
            )
        if self.cache.has(int(tick)):
            self.cache.set_reward(int(tick), float(reward))

    def clear(self) -> None:
        """Drop every stored record, durably and in the cache.

        The reset fence for shared fan-in stores: a reused
        :class:`~repro.env.vector.VectorEnv` must not sample stale
        cross-episode transitions.
        """
        if self._conn is not None:
            self._conn.execute("DELETE FROM observations")
            self._conn.execute("DELETE FROM actions")
            self._conn.commit()
        self.cache.clear()

    def commit(self) -> None:
        """Flush the durable layer (no-op for cache-only stores)."""
        if self._conn is not None:
            self._conn.commit()

    def close(self) -> None:
        """Commit and release the SQLite handle (idempotent)."""
        if self._conn is not None:
            self._conn.commit()
            self._conn.close()
            self._conn = None

    # -- reader API -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cache)

    def record_count(self) -> int:
        """Durable row count (Table 2's 'number of records').

        A cache-only store has no durable layer; it reports the cache
        occupancy, which is the same count a SQLite-backed store would
        hold after the same writes.
        """
        if self._conn is None:
            return len(self.cache)
        (n,) = self._conn.execute("SELECT COUNT(*) FROM observations").fetchone()
        return int(n)

    def on_disk_bytes(self) -> int:
        """Approximate database size (page_count × page_size)."""
        if self._conn is None:
            return 0
        (pages,) = self._conn.execute("PRAGMA page_count").fetchone()
        (size,) = self._conn.execute("PRAGMA page_size").fetchone()
        return int(pages) * int(size)

    def in_memory_bytes(self) -> int:
        """Resident size of the NumPy cache (Table 2's in-memory row)."""
        return self.cache.nbytes()

    def __enter__(self) -> "ReplayDB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
