"""Record types stored in and sampled from the replay database."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass
class TickRecord:
    """Everything the system learned about one sampling tick.

    ``frame`` is the cluster-wide PI vector (all clients concatenated in
    client order); ``action`` is the action index taken at this tick
    (-1 when no action was recorded, e.g. monitoring-only operation);
    ``reward`` is the objective value measured over this tick.
    """

    tick: int
    frame: np.ndarray
    action: int = -1
    reward: float = 0.0


@dataclass
class PackedRecords:
    """Column-packed tick records for bulk transport and bulk writes.

    The array form of a ``List[TickRecord]``: one ``(k, frame_width)``
    float64 frame block plus tick/action/reward vectors, ticks strictly
    ascending.  This is what crosses worker pipes on the vectorized
    collection hot path — pickling four NumPy arrays costs one buffer
    copy each, where a list of k records costs k object round-trips —
    and what :meth:`~repro.replaydb.db.ReplayDB.put_many` ingests.
    """

    ticks: np.ndarray  # (k,) int64, strictly ascending
    frames: np.ndarray  # (k, frame_width) float64
    actions: np.ndarray  # (k,) int64, -1 = no action recorded
    rewards: np.ndarray  # (k,) float64

    def __len__(self) -> int:
        return int(self.ticks.shape[0])

    def validate(self) -> "PackedRecords":
        """Check internal consistency; returns ``self`` (chainable).

        The torn-read guard for batches that crossed a process
        boundary: every column must describe the same k records
        (aligned lengths, matching frame block), ticks must be strictly
        ascending and non-negative, and frames/rewards finite.  Raises
        ``ValueError`` on any violation.
        """
        k = len(self)
        if self.frames.ndim != 2 or self.frames.shape[0] != k:
            raise ValueError(
                f"frames block {self.frames.shape} does not match "
                f"{k} ticks"
            )
        if self.actions.shape != (k,) or self.rewards.shape != (k,):
            raise ValueError(
                f"actions/rewards shapes {self.actions.shape}/"
                f"{self.rewards.shape} do not match {k} ticks"
            )
        if k:
            if int(self.ticks[0]) < 0 or np.any(np.diff(self.ticks) <= 0):
                raise ValueError(
                    "ticks must be non-negative and strictly ascending"
                )
            if not np.all(np.isfinite(self.frames)) or not np.all(
                np.isfinite(self.rewards)
            ):
                raise ValueError("non-finite frame or reward in batch")
        return self

    @classmethod
    def empty(cls, frame_width: int) -> "PackedRecords":
        return cls(
            ticks=np.empty(0, dtype=np.int64),
            frames=np.empty((0, int(frame_width)), dtype=np.float64),
            actions=np.empty(0, dtype=np.int64),
            rewards=np.empty(0, dtype=np.float64),
        )

    @classmethod
    def from_records(
        cls, records: Sequence[TickRecord], frame_width: int
    ) -> "PackedRecords":
        if not records:
            return cls.empty(frame_width)
        return cls(
            ticks=np.array([r.tick for r in records], dtype=np.int64),
            frames=np.ascontiguousarray(
                [r.frame for r in records], dtype=np.float64
            ),
            actions=np.array([r.action for r in records], dtype=np.int64),
            rewards=np.array([r.reward for r in records], dtype=np.float64),
        )

    def to_records(self) -> List[TickRecord]:
        """Unpack into per-tick :class:`TickRecord` objects (copies)."""
        return [
            TickRecord(
                tick=int(self.ticks[i]),
                frame=self.frames[i].copy(),
                action=int(self.actions[i]),
                reward=float(self.rewards[i]),
            )
            for i in range(len(self))
        ]


@dataclass
class Transition:
    """One training sample w_t = (s_t, s_{t+1}, a_t, r_t) — §3.5.

    ``s_t`` / ``s_next`` are stacked observations (S ticks × features,
    flattened); ``reward`` is the objective measured at t+1, i.e. the
    immediate consequence of acting at t.
    """

    tick: int
    s_t: np.ndarray
    s_next: np.ndarray
    action: int
    reward: float


@dataclass
class Minibatch:
    """Vectorised batch of transitions ready for the DNN trainer."""

    s_t: np.ndarray  # (n, obs_dim)
    s_next: np.ndarray  # (n, obs_dim)
    actions: np.ndarray  # (n,) int64
    rewards: np.ndarray  # (n,) float64

    def __len__(self) -> int:
        return self.s_t.shape[0]
