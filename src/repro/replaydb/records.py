"""Record types stored in and sampled from the replay database."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class TickRecord:
    """Everything the system learned about one sampling tick.

    ``frame`` is the cluster-wide PI vector (all clients concatenated in
    client order); ``action`` is the action index taken at this tick
    (-1 when no action was recorded, e.g. monitoring-only operation);
    ``reward`` is the objective value measured over this tick.
    """

    tick: int
    frame: np.ndarray
    action: int = -1
    reward: float = 0.0


@dataclass
class Transition:
    """One training sample w_t = (s_t, s_{t+1}, a_t, r_t) — §3.5.

    ``s_t`` / ``s_next`` are stacked observations (S ticks × features,
    flattened); ``reward`` is the objective measured at t+1, i.e. the
    immediate consequence of acting at t.
    """

    tick: int
    s_t: np.ndarray
    s_next: np.ndarray
    action: int
    reward: float


@dataclass
class Minibatch:
    """Vectorised batch of transitions ready for the DNN trainer."""

    s_t: np.ndarray  # (n, obs_dim)
    s_next: np.ndarray  # (n, obs_dim)
    actions: np.ndarray  # (n,) int64
    rewards: np.ndarray  # (n,) float64

    def __len__(self) -> int:
        return self.s_t.shape[0]
