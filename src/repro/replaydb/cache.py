"""In-memory replay cache: NumPy ring over per-tick records.

Training never touches SQLite on the hot path — the DQN trainer samples
from this cache, which stores frames, actions and rewards in
preallocated arrays (one row per tick).  The paper sizes the cache to
hold the whole database ("the node that the Replay DB runs on should
have plenty of RAM, ideally to keep the whole database in memory");
here the capacity is explicit and eviction is oldest-first.

Ticks may arrive with gaps (dropped monitoring messages).  The cache is
indexed by tick number, not by arrival order, and tracks a validity
mask so the sampler can honour the missing-entry tolerance.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.replaydb.records import PackedRecords, TickRecord
from repro.util.validation import check_positive


class ReplayCache:
    """Tick-indexed ring of (frame, action, reward) rows."""

    def __init__(self, frame_width: int, capacity: int = 250_000):
        check_positive("frame_width", frame_width)
        check_positive("capacity", capacity)
        self.frame_width = int(frame_width)
        self.capacity = int(capacity)
        self._frames = np.zeros((capacity, frame_width), dtype=np.float64)
        self._actions = np.full(capacity, -1, dtype=np.int64)
        self._rewards = np.zeros(capacity, dtype=np.float64)
        # Which tick each slot holds (-1 = never written).  This is the
        # single source of occupancy truth: after the ring wraps, a
        # tick that was never stored (dropped on the monitoring network)
        # must not resolve to the stale record its slot still holds.
        self._ticks = np.full(capacity, -1, dtype=np.int64)
        self._min_tick: Optional[int] = None
        self._max_tick: Optional[int] = None
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def min_tick(self) -> Optional[int]:
        """Oldest retained tick, or None when empty."""
        return self._min_tick

    @property
    def max_tick(self) -> Optional[int]:
        """Newest stored tick, or None when empty."""
        return self._max_tick

    def _slot(self, tick: int) -> int:
        return tick % self.capacity

    def put(self, record: TickRecord) -> None:
        """Insert or update the row for ``record.tick``.

        Ticks older than ``max_tick - capacity`` are rejected — they
        would alias a newer slot in the ring.
        """
        frame = np.asarray(record.frame, dtype=np.float64)
        if frame.shape != (self.frame_width,):
            raise ValueError(
                f"frame shape {frame.shape} != ({self.frame_width},)"
            )
        tick = int(record.tick)
        if tick < 0:
            raise ValueError(f"tick must be >= 0, got {tick}")
        if self._max_tick is not None and tick <= self._max_tick - self.capacity:
            raise ValueError(
                f"tick {tick} too old for ring of capacity {self.capacity} "
                f"(newest is {self._max_tick})"
            )
        slot = self._slot(tick)
        if self._ticks[slot] < 0:
            self._count += 1
        self._frames[slot] = frame
        self._actions[slot] = record.action
        self._rewards[slot] = record.reward
        self._ticks[slot] = tick
        if self._max_tick is None or tick > self._max_tick:
            self._max_tick = tick
        if self._min_tick is None or tick < self._min_tick:
            self._min_tick = tick
        # Evicted region: any slot between old min and the ring horizon.
        horizon = self._max_tick - self.capacity + 1
        if self._min_tick is not None and self._min_tick < horizon:
            self._min_tick = horizon

    def put_many(
        self,
        ticks: np.ndarray,
        frames: np.ndarray,
        rewards: np.ndarray,
        actions: Optional[np.ndarray] = None,
    ) -> None:
        """Bulk :meth:`put`: one array assignment instead of k calls.

        Same signature as :meth:`ReplayDB.put_many` (``actions`` last
        and optional, ``-1`` = no action) so the two bulk writers can
        never be called with swapped columns.  Equivalent
        record-for-record to ``for r in …: put(r)``.  The vectorized
        fast path requires strictly ascending ticks spanning less than
        one ring capacity (the shape every fan-in batch has); anything
        irregular falls back to the per-record loop, which also
        enforces the too-old rejection with its usual message.
        """
        ticks = np.asarray(ticks, dtype=np.int64)
        frames = np.asarray(frames, dtype=np.float64)
        rewards = np.asarray(rewards, dtype=np.float64)
        if actions is None:
            actions = np.full(ticks.shape[0], -1, dtype=np.int64)
        else:
            actions = np.asarray(actions, dtype=np.int64)
        k = ticks.shape[0]
        if frames.shape != (k, self.frame_width):
            raise ValueError(
                f"frames shape {frames.shape} != ({k}, {self.frame_width})"
            )
        if actions.shape != (k,) or rewards.shape != (k,):
            raise ValueError(
                f"actions/rewards must have shape ({k},), got "
                f"{actions.shape}/{rewards.shape}"
            )
        if k == 0:
            return
        irregular = (
            np.any(np.diff(ticks) <= 0)
            or int(ticks[-1]) - int(ticks[0]) >= self.capacity
            or int(ticks[0]) < 0
            or (
                self._max_tick is not None
                and int(ticks[0]) <= self._max_tick - self.capacity
            )
        )
        if irregular:
            for i in range(k):
                self.put(
                    TickRecord(
                        tick=int(ticks[i]),
                        frame=frames[i],
                        action=int(actions[i]),
                        reward=float(rewards[i]),
                    )
                )
            return
        slots = ticks % self.capacity
        self._count += int(np.count_nonzero(self._ticks[slots] < 0))
        self._frames[slots] = frames
        self._actions[slots] = actions
        self._rewards[slots] = rewards
        self._ticks[slots] = ticks
        if self._max_tick is None or int(ticks[-1]) > self._max_tick:
            self._max_tick = int(ticks[-1])
        if self._min_tick is None or int(ticks[0]) < self._min_tick:
            self._min_tick = int(ticks[0])
        horizon = self._max_tick - self.capacity + 1
        if self._min_tick < horizon:
            self._min_tick = horizon

    def records_between(self, first_tick: int, last_tick: int) -> PackedRecords:
        """Stored records with ``first_tick <= tick <= last_tick``, packed.

        Ticks come back strictly ascending; ticks never stored (dropped
        monitoring messages) are simply absent.  Arrays are copies, safe
        to ship across process boundaries.
        """
        if self._max_tick is None or last_tick < first_tick:
            return PackedRecords.empty(self.frame_width)
        lo = max(int(first_tick), self._min_tick or 0, 0)
        hi = min(int(last_tick), self._max_tick)
        if hi < lo:
            return PackedRecords.empty(self.frame_width)
        ticks = np.arange(lo, hi + 1, dtype=np.int64)
        slots = ticks % self.capacity
        present = self._ticks[slots] == ticks
        ticks, slots = ticks[present], slots[present]
        # Fancy indexing already materializes fresh arrays, detached
        # from the ring storage.
        return PackedRecords(
            ticks=ticks,
            frames=self._frames[slots],
            actions=self._actions[slots],
            rewards=self._rewards[slots],
        )

    def clear(self) -> None:
        """Drop every record in place (the arrays stay allocated).

        Samplers holding a reference to this cache see it empty rather
        than dangling — the fence :class:`~repro.env.vector.VectorEnv`
        applies on reset so a reused fleet cannot serve transitions
        from a previous episode.
        """
        self._ticks.fill(-1)
        self._actions.fill(-1)
        self._min_tick = None
        self._max_tick = None
        self._count = 0

    def set_action(self, tick: int, action: int) -> None:
        """Attach the action taken at ``tick`` (arrives separately)."""
        if not self.has(int(tick)):
            raise KeyError(f"no frame stored for tick {tick}")
        self._actions[self._slot(int(tick))] = int(action)

    def set_reward(self, tick: int, reward: float) -> None:
        """Attach the objective measured over ``tick``."""
        if not self.has(int(tick)):
            raise KeyError(f"no frame stored for tick {tick}")
        self._rewards[self._slot(int(tick))] = float(reward)

    def has(self, tick: int) -> bool:
        """Whether a record for exactly ``tick`` is stored."""
        if tick < 0 or self._max_tick is None:
            return False
        if tick > self._max_tick or tick <= self._max_tick - self.capacity:
            return False
        # The slot must hold *this* tick's record: once the ring wraps,
        # a dropped tick's slot still carries the record from one
        # capacity earlier, which must read as missing, not stale.
        return bool(self._ticks[self._slot(tick)] == tick)

    def get(self, tick: int) -> TickRecord:
        """The stored record for ``tick`` (a copy); KeyError if absent."""
        if not self.has(tick):
            raise KeyError(f"tick {tick} not in cache")
        slot = self._slot(tick)
        return TickRecord(
            tick=tick,
            frame=self._frames[slot].copy(),
            action=int(self._actions[slot]),
            reward=float(self._rewards[slot]),
        )

    def window(self, first_tick: int, n_ticks: int) -> tuple[np.ndarray, np.ndarray]:
        """Frames for ``[first_tick, first_tick + n_ticks)`` plus validity.

        Missing ticks come back as zero rows with ``valid=False`` — the
        observation builder decides whether the gap budget allows using
        the window (missing-entry tolerance).
        """
        if n_ticks <= 0:
            raise ValueError(f"n_ticks must be > 0, got {n_ticks}")
        frames = np.zeros((n_ticks, self.frame_width), dtype=np.float64)
        valid = np.zeros(n_ticks, dtype=bool)
        for i, tick in enumerate(range(first_tick, first_tick + n_ticks)):
            if self.has(tick):
                frames[i] = self._frames[self._slot(tick)]
                valid[i] = True
        return frames, valid

    def nbytes(self) -> int:
        """Resident memory of the cache arrays (Table 2's in-memory size)."""
        return (
            self._frames.nbytes
            + self._actions.nbytes
            + self._rewards.nbytes
            + self._ticks.nbytes
        )
