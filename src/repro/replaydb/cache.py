"""In-memory replay cache: NumPy ring over per-tick records.

Training never touches SQLite on the hot path — the DQN trainer samples
from this cache, which stores frames, actions and rewards in
preallocated arrays (one row per tick).  The paper sizes the cache to
hold the whole database ("the node that the Replay DB runs on should
have plenty of RAM, ideally to keep the whole database in memory");
here the capacity is explicit and eviction is oldest-first.

Ticks may arrive with gaps (dropped monitoring messages).  The cache is
indexed by tick number, not by arrival order, and tracks a validity
mask so the sampler can honour the missing-entry tolerance.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.replaydb.records import TickRecord
from repro.util.validation import check_positive


class ReplayCache:
    """Tick-indexed ring of (frame, action, reward) rows."""

    def __init__(self, frame_width: int, capacity: int = 250_000):
        check_positive("frame_width", frame_width)
        check_positive("capacity", capacity)
        self.frame_width = int(frame_width)
        self.capacity = int(capacity)
        self._frames = np.zeros((capacity, frame_width), dtype=np.float64)
        self._actions = np.full(capacity, -1, dtype=np.int64)
        self._rewards = np.zeros(capacity, dtype=np.float64)
        # Which tick each slot holds (-1 = never written).  This is the
        # single source of occupancy truth: after the ring wraps, a
        # tick that was never stored (dropped on the monitoring network)
        # must not resolve to the stale record its slot still holds.
        self._ticks = np.full(capacity, -1, dtype=np.int64)
        self._min_tick: Optional[int] = None
        self._max_tick: Optional[int] = None
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def min_tick(self) -> Optional[int]:
        return self._min_tick

    @property
    def max_tick(self) -> Optional[int]:
        return self._max_tick

    def _slot(self, tick: int) -> int:
        return tick % self.capacity

    def put(self, record: TickRecord) -> None:
        """Insert or update the row for ``record.tick``.

        Ticks older than ``max_tick - capacity`` are rejected — they
        would alias a newer slot in the ring.
        """
        frame = np.asarray(record.frame, dtype=np.float64)
        if frame.shape != (self.frame_width,):
            raise ValueError(
                f"frame shape {frame.shape} != ({self.frame_width},)"
            )
        tick = int(record.tick)
        if tick < 0:
            raise ValueError(f"tick must be >= 0, got {tick}")
        if self._max_tick is not None and tick <= self._max_tick - self.capacity:
            raise ValueError(
                f"tick {tick} too old for ring of capacity {self.capacity} "
                f"(newest is {self._max_tick})"
            )
        slot = self._slot(tick)
        if self._ticks[slot] < 0:
            self._count += 1
        self._frames[slot] = frame
        self._actions[slot] = record.action
        self._rewards[slot] = record.reward
        self._ticks[slot] = tick
        if self._max_tick is None or tick > self._max_tick:
            self._max_tick = tick
        if self._min_tick is None or tick < self._min_tick:
            self._min_tick = tick
        # Evicted region: any slot between old min and the ring horizon.
        horizon = self._max_tick - self.capacity + 1
        if self._min_tick is not None and self._min_tick < horizon:
            self._min_tick = horizon

    def set_action(self, tick: int, action: int) -> None:
        """Attach the action taken at ``tick`` (arrives separately)."""
        if not self.has(int(tick)):
            raise KeyError(f"no frame stored for tick {tick}")
        self._actions[self._slot(int(tick))] = int(action)

    def set_reward(self, tick: int, reward: float) -> None:
        if not self.has(int(tick)):
            raise KeyError(f"no frame stored for tick {tick}")
        self._rewards[self._slot(int(tick))] = float(reward)

    def has(self, tick: int) -> bool:
        if tick < 0 or self._max_tick is None:
            return False
        if tick > self._max_tick or tick <= self._max_tick - self.capacity:
            return False
        # The slot must hold *this* tick's record: once the ring wraps,
        # a dropped tick's slot still carries the record from one
        # capacity earlier, which must read as missing, not stale.
        return bool(self._ticks[self._slot(tick)] == tick)

    def get(self, tick: int) -> TickRecord:
        if not self.has(tick):
            raise KeyError(f"tick {tick} not in cache")
        slot = self._slot(tick)
        return TickRecord(
            tick=tick,
            frame=self._frames[slot].copy(),
            action=int(self._actions[slot]),
            reward=float(self._rewards[slot]),
        )

    def window(self, first_tick: int, n_ticks: int) -> tuple[np.ndarray, np.ndarray]:
        """Frames for ``[first_tick, first_tick + n_ticks)`` plus validity.

        Missing ticks come back as zero rows with ``valid=False`` — the
        observation builder decides whether the gap budget allows using
        the window (missing-entry tolerance).
        """
        if n_ticks <= 0:
            raise ValueError(f"n_ticks must be > 0, got {n_ticks}")
        frames = np.zeros((n_ticks, self.frame_width), dtype=np.float64)
        valid = np.zeros(n_ticks, dtype=bool)
        for i, tick in enumerate(range(first_tick, first_tick + n_ticks)):
            if self.has(tick):
                frames[i] = self._frames[self._slot(tick)]
                valid[i] = True
        return frames, valid

    def nbytes(self) -> int:
        """Resident memory of the cache arrays (Table 2's in-memory size)."""
        return (
            self._frames.nbytes
            + self._actions.nbytes
            + self._rewards.nbytes
            + self._ticks.nbytes
        )
