"""Prioritized experience replay (Schaul et al., 2016).

A §6-style extension ("new deep learning techniques ... need [to] be
systematically evaluated and added to CAPES"): instead of Algorithm 1's
uniform timestamps, transitions are drawn with probability proportional
to their last-seen TD error raised to ``alpha``, with importance-
sampling weights correcting the induced bias.  Falls back to uniform
behaviour at ``alpha = 0``.

Implementation: priorities live in a flat array parallel to the replay
cache's tick range; sampling normalises over currently *eligible* ticks
(completeness rules identical to the uniform sampler, reusing its
transition construction).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.replaydb.cache import ReplayCache
from repro.replaydb.records import Minibatch
from repro.replaydb.sampler import MinibatchSampler, SamplerStarvedError
from repro.util.validation import check_in_range, check_positive


class PrioritizedMinibatch(Minibatch):
    """Minibatch plus the sampled ticks and IS weights."""

    def __init__(self, base: Minibatch, ticks: np.ndarray, weights: np.ndarray):
        super().__init__(
            s_t=base.s_t,
            s_next=base.s_next,
            actions=base.actions,
            rewards=base.rewards,
        )
        self.ticks = ticks
        self.weights = weights


class PrioritizedSampler(MinibatchSampler):
    """TD-error-proportional sampling over the replay cache."""

    def __init__(
        self,
        cache: ReplayCache,
        obs_ticks: int = 10,
        missing_tolerance: float = 0.20,
        alpha: float = 0.6,
        beta: float = 0.4,
        epsilon_priority: float = 1e-3,
        seed=None,
    ):
        super().__init__(
            cache,
            obs_ticks=obs_ticks,
            missing_tolerance=missing_tolerance,
            seed=seed,
        )
        check_in_range("alpha", alpha, 0.0, 1.0)
        check_in_range("beta", beta, 0.0, 1.0)
        check_positive("epsilon_priority", epsilon_priority)
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.epsilon_priority = float(epsilon_priority)
        # priority per tick slot; each tick is frozen at the max
        # priority in force when it first becomes eligible (Schaul's
        # max-at-insertion), so later TD spikes on other transitions
        # cannot retroactively inflate it.
        self._priorities: dict[int, float] = {}
        self._max_priority = 1.0
        self._frozen_next = 0  # first tick not yet assigned a priority

    # -- priority maintenance ---------------------------------------------
    def _freeze_new_ticks(self) -> None:
        """Assign the current max priority to newly eligible ticks."""
        rng_range = self.eligible_range()
        if rng_range is None:
            return
        first, last = rng_range
        for t in range(max(first, self._frozen_next), last + 1):
            self._priorities.setdefault(t, self._max_priority)
        self._frozen_next = max(self._frozen_next, last + 1)

    def priority_of(self, tick: int) -> float:
        """Current sampling priority of ``tick`` (max for unseen ticks)."""
        self._freeze_new_ticks()
        return self._priorities.get(tick, self._max_priority)

    def update_priorities(self, ticks: np.ndarray, td_errors: np.ndarray) -> None:
        """Feed back |TD error| for the transitions just trained on."""
        self._freeze_new_ticks()
        ticks = np.asarray(ticks)
        td = np.abs(np.asarray(td_errors, dtype=np.float64))
        if ticks.shape != td.shape:
            raise ValueError(
                f"ticks {ticks.shape} and td_errors {td.shape} mismatch"
            )
        for t, e in zip(ticks, td):
            p = float(e) + self.epsilon_priority
            self._priorities[int(t)] = p
            if p > self._max_priority:
                self._max_priority = p

    # -- sampling -------------------------------------------------------------
    def sample_minibatch(
        self, n: int, max_attempts: int = 200
    ) -> PrioritizedMinibatch:
        check_positive("n", n)
        rng_range = self.eligible_range()
        if rng_range is None:
            raise SamplerStarvedError(
                "replay DB does not yet span one full observation window"
            )
        first, last = rng_range
        self._freeze_new_ticks()
        candidates = np.arange(first, last + 1)
        prios = np.array(
            [
                self._priorities.get(int(t), self._max_priority)
                for t in candidates
            ],
            dtype=np.float64,
        )
        probs = prios**self.alpha
        total = probs.sum()
        if total <= 0:
            raise SamplerStarvedError("all priorities are zero")
        probs /= total

        collected = []
        ticks: List[int] = []
        attempts = 0
        while len(collected) < n:
            attempts += 1
            if attempts > max_attempts:
                raise SamplerStarvedError(
                    f"could not fill a prioritized minibatch of {n}"
                )
            draw = self.rng.choice(
                candidates, size=n - len(collected), p=probs
            )
            for t in draw:
                tr = self.transition_at(int(t))
                if tr is not None:
                    collected.append(tr)
                    ticks.append(int(t))
        collected = collected[:n]
        ticks_arr = np.array(ticks[:n])

        # Importance-sampling weights, normalised to max 1.
        idx = ticks_arr - first
        p_sel = probs[idx]
        weights = (len(candidates) * p_sel) ** (-self.beta)
        weights /= weights.max()

        base = Minibatch(
            s_t=np.stack([t.s_t for t in collected]),
            s_next=np.stack([t.s_next for t in collected]),
            actions=np.array([t.action for t in collected], dtype=np.int64),
            rewards=np.array([t.reward for t in collected], dtype=np.float64),
        )
        return PrioritizedMinibatch(base, ticks_arr, weights)
