"""Algorithm 1: minibatch construction from the replay database.

Reproduces the paper's sampler faithfully:

1. uniformly generate candidate timestamps;
2. for each, check that the Replay DB "contains enough data" at that
   timestamp — here, that the stacked observation windows for s_t and
   s_{t+1} are present, allowing up to ``missing_tolerance`` of their
   frames to be absent (Table 1: 20 %), and that an action was recorded
   at t;
3. keep collecting until the batch holds exactly n samples.

Missing frames inside an accepted window are filled by carrying the
most recent earlier frame forward (a sensible imputation for slowly
varying system state), or zeros when nothing precedes them.

The reward of a transition at tick t is the objective measured at
t+1 — "we can measure the change of I/O throughput at the next second
to use it as the reward" (§3.2).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.replaydb.cache import ReplayCache
from repro.replaydb.records import Minibatch, Transition
from repro.util.rng import ensure_rng
from repro.util.validation import check_in_range, check_positive


class SamplerStarvedError(RuntimeError):
    """Raised when the DB cannot possibly satisfy a batch request."""


def _impute_forward(frames: np.ndarray, valid: np.ndarray) -> np.ndarray:
    """Carry the last valid row forward over gaps (in place on a copy)."""
    out = frames.copy()
    last: Optional[np.ndarray] = None
    for i in range(out.shape[0]):
        if valid[i]:
            last = out[i]
        elif last is not None:
            out[i] = last
    return out


class MinibatchSampler:
    """Uniform-timestamp transition sampler over a :class:`ReplayCache`."""

    def __init__(
        self,
        cache: ReplayCache,
        obs_ticks: int = 10,
        missing_tolerance: float = 0.20,
        seed=None,
    ):
        check_positive("obs_ticks", obs_ticks)
        check_in_range("missing_tolerance", missing_tolerance, 0.0, 1.0)
        self.cache = cache
        self.obs_ticks = int(obs_ticks)
        self.missing_tolerance = float(missing_tolerance)
        self.rng = ensure_rng(seed)

    @property
    def obs_dim(self) -> int:
        """Flattened observation size (S ticks × frame width)."""
        return self.obs_ticks * self.cache.frame_width

    # -- single transitions ------------------------------------------------
    def observation_at(self, tick: int) -> Optional[np.ndarray]:
        """Stacked observation s_t ending at ``tick``, or None if the
        window misses more frames than tolerated."""
        first = tick - self.obs_ticks + 1
        if first < 0:
            return None
        frames, valid = self.cache.window(first, self.obs_ticks)
        missing = int((~valid).sum())
        if missing > self.missing_tolerance * self.obs_ticks:
            return None
        if missing:
            frames = _impute_forward(frames, valid)
        return frames.reshape(-1)

    def transition_at(self, tick: int) -> Optional[Transition]:
        """Build w_t = (s_t, s_{t+1}, a_t, r_{t+1}) or None if incomplete."""
        if not self.cache.has(tick) or not self.cache.has(tick + 1):
            return None
        rec = self.cache.get(tick)
        if rec.action < 0:
            return None  # no action recorded at t (monitoring-only tick)
        s_t = self.observation_at(tick)
        if s_t is None:
            return None
        s_next = self.observation_at(tick + 1)
        if s_next is None:
            return None
        reward = self.cache.get(tick + 1).reward
        return Transition(
            tick=tick, s_t=s_t, s_next=s_next, action=rec.action, reward=reward
        )

    # -- Algorithm 1 -----------------------------------------------------------
    def eligible_range(self) -> Optional[tuple[int, int]]:
        """Inclusive tick range candidates are drawn from, or None."""
        lo, hi = self.cache.min_tick, self.cache.max_tick
        if lo is None or hi is None:
            return None
        first = max(lo + self.obs_ticks - 1, 0)
        last = hi - 1  # t+1 must exist
        if last < first:
            return None
        return first, last

    def sample_minibatch(self, n: int, max_attempts: int = 200) -> Minibatch:
        """ConstructMinibatch(n) — keep drawing until n samples collected."""
        check_positive("n", n)
        rng_range = self.eligible_range()
        if rng_range is None:
            raise SamplerStarvedError(
                "replay DB does not yet span one full observation window"
            )
        first, last = rng_range
        collected: list[Transition] = []
        needed = n
        attempts = 0
        while needed > 0:
            attempts += 1
            if attempts > max_attempts:
                raise SamplerStarvedError(
                    f"could not fill a minibatch of {n} after {max_attempts} "
                    f"rounds; too many incomplete timestamps"
                )
            ticks = self.rng.integers(first, last + 1, size=needed)
            for t in ticks:
                tr = self.transition_at(int(t))
                if tr is not None:
                    collected.append(tr)
            needed = n - len(collected)
        collected = collected[:n]
        return Minibatch(
            s_t=np.stack([t.s_t for t in collected]),
            s_next=np.stack([t.s_next for t in collected]),
            actions=np.array([t.action for t in collected], dtype=np.int64),
            rewards=np.array([t.reward for t in collected], dtype=np.float64),
        )
