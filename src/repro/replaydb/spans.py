"""Block-strided tick spaces and the sampler that understands them.

A shared fan-in replay store assigns each experience source a *block*
of the tick space: source ``i`` writes its local tick ``t`` at global
tick ``i * stride + t`` (see :class:`~repro.env.vector.VectorEnv`).
Two consumers need to reason about that layout without holding the
fleet itself:

- :class:`TickSpans` tracks the per-block sampling frontier (the
  highest tick ingested per block) and turns it into candidate spans —
  the bookkeeping both the master's fan-in loop and a decoupled
  trainer process (:mod:`repro.train`) maintain over their own caches;
- :class:`StridedMinibatchSampler` runs Algorithm 1 over such a space:
  uniform over all stored transitions, never starved by the empty gulf
  between blocks.

``stride=None`` degrades to a single unstrided block, so one code path
serves both the vectorized fleet and a single environment's feed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.replaydb.sampler import MinibatchSampler, SamplerStarvedError
from repro.util.validation import check_positive


class TickSpans:
    """Per-block sampling frontier over a (possibly strided) tick space.

    Tracks, for each block, the highest global tick ingested so far
    (``-1`` = empty).  Writers call :meth:`observe` with each ingested
    batch's ticks; samplers ask :meth:`candidate_spans` which global
    ticks are eligible transition timestamps.  ``stride=None`` means a
    single unbounded block (plain, unstrided tick space).

    Sharded fleets add one more dimension: blocks are partitioned into
    contiguous runs, one per shard host, described by ``shard_sizes``
    (``[K_0, K_1, ...]``, summing to ``n_blocks``).  Shard ``s``'s
    local slot ``i`` is global block ``shard_offset(s) + i`` — the
    stride layout itself never changes, so samplers are oblivious to
    sharding; the topology only feeds per-shard bookkeeping
    (:meth:`shard_tops`) and session snapshots.
    """

    def __init__(
        self,
        n_blocks: int = 1,
        stride: Optional[int] = None,
        shard_sizes: Optional[Sequence[int]] = None,
    ):
        check_positive("n_blocks", n_blocks)
        if stride is not None:
            check_positive("stride", stride)
        self.n_blocks = int(n_blocks)
        self.stride = None if stride is None else int(stride)
        self._tops = [-1] * self.n_blocks
        self.shard_sizes: Optional[List[int]] = None
        if shard_sizes is not None:
            sizes = [int(k) for k in shard_sizes]
            for k in sizes:
                check_positive("shard size", k)
            if sum(sizes) != self.n_blocks:
                raise ValueError(
                    f"shard_sizes {sizes} sum to {sum(sizes)}, but the "
                    f"frontier tracks {self.n_blocks} block(s)"
                )
            self.shard_sizes = sizes

    @property
    def tick_stride(self) -> Optional[int]:
        """Alias for :attr:`stride` (the VectorEnv attribute name)."""
        return self.stride

    @property
    def n_shards(self) -> int:
        """How many shards partition the blocks (1 when unsharded)."""
        return 1 if self.shard_sizes is None else len(self.shard_sizes)

    def shard_offset(self, shard: int) -> int:
        """The first global block shard ``shard`` owns."""
        if self.shard_sizes is None:
            if shard != 0:
                raise IndexError(
                    f"unsharded frontier has only shard 0, got {shard}"
                )
            return 0
        if not 0 <= shard < len(self.shard_sizes):
            raise IndexError(
                f"shard {shard} out of range 0..{len(self.shard_sizes) - 1}"
            )
        return sum(self.shard_sizes[:shard])

    def shard_of(self, block: int) -> int:
        """Which shard hosts global block ``block``."""
        if not 0 <= block < self.n_blocks:
            raise IndexError(
                f"block {block} out of range 0..{self.n_blocks - 1}"
            )
        if self.shard_sizes is None:
            return 0
        edge = 0
        for s, k in enumerate(self.shard_sizes):
            edge += k
            if block < edge:
                return s
        raise AssertionError("unreachable")  # pragma: no cover

    def global_slot(self, shard: int, local: int) -> int:
        """Global block index of shard ``shard``'s local slot ``local``."""
        offset = self.shard_offset(shard)
        size = (
            self.n_blocks
            if self.shard_sizes is None
            else self.shard_sizes[shard]
        )
        if not 0 <= local < size:
            raise IndexError(
                f"slot {local} out of range 0..{size - 1} on shard {shard}"
            )
        return offset + local

    def shard_tops(self, shard: int) -> List[int]:
        """Frontier of the blocks shard ``shard`` owns (a list copy)."""
        offset = self.shard_offset(shard)
        size = (
            self.n_blocks
            if self.shard_sizes is None
            else self.shard_sizes[shard]
        )
        return list(self._tops[offset : offset + size])

    @classmethod
    def from_tops(
        cls,
        stride: Optional[int],
        tops: Sequence[int],
        shard_sizes: Optional[Sequence[int]] = None,
    ) -> "TickSpans":
        """A frontier with explicit per-block tops (mostly for tests)."""
        spans = cls(
            n_blocks=max(1, len(tops)),
            stride=stride,
            shard_sizes=shard_sizes,
        )
        for i, top in enumerate(tops):
            spans._tops[i] = int(top)
        return spans

    def reset(self) -> None:
        """Forget every block's progress (fan-in store was cleared)."""
        self._tops = [-1] * self.n_blocks

    def top(self, block: int) -> int:
        """Highest local tick ingested for ``block`` (-1 = none)."""
        return self._tops[block]

    def tops(self) -> List[int]:
        """Per-block frontier as a list copy."""
        return list(self._tops)

    def observe_top(self, block: int, local_top: int) -> None:
        """Raise ``block``'s frontier to ``local_top`` if it is higher."""
        if local_top > self._tops[block]:
            self._tops[block] = int(local_top)

    def observe(self, global_ticks: np.ndarray) -> None:
        """Fold a batch of *global* ticks into the per-block frontier.

        Used by consumers that only see the ingested batches (e.g. the
        trainer worker), not the per-source bookkeeping the master
        keeps.  Ticks map to blocks by ``tick // stride``; with
        ``stride=None`` everything is block 0.
        """
        if len(global_ticks) == 0:
            return
        ticks = np.asarray(global_ticks, dtype=np.int64)
        if self.stride is None:
            self.observe_top(0, int(ticks.max()))
            return
        blocks = ticks // self.stride
        for b in np.unique(blocks):
            block = int(b)
            if block >= self.n_blocks:
                raise ValueError(
                    f"tick {int(ticks[blocks == b].max())} lands in block "
                    f"{block}, but this frontier tracks {self.n_blocks} "
                    f"block(s) of stride {self.stride}"
                )
            local_top = int(ticks[blocks == b].max()) - block * self.stride
            self.observe_top(block, local_top)

    def candidate_spans(self, obs_ticks: int) -> List[tuple]:
        """Inclusive global-tick spans of eligible transition timestamps.

        A timestamp ``t`` is eligible when a full ``obs_ticks``
        observation window can end at ``t`` and ``t + 1`` exists within
        the same block (the Algorithm 1 sampler never stacks frames
        across blocks).  One ``(first, last)`` pair per non-empty block.
        """
        spans = []
        stride = self.stride or 0
        for i, top in enumerate(self._tops):
            first = obs_ticks - 1
            last = top - 1  # t+1 must exist
            if last >= first:
                spans.append((i * stride + first, i * stride + last))
        return spans


class StridedMinibatchSampler(MinibatchSampler):
    """Algorithm 1 over a block-strided shared replay DB.

    The base sampler draws candidate timestamps uniformly from
    ``[min_tick, max_tick]`` — over a blocked tick space that range is
    almost entirely empty, so rejection sampling would starve.  This
    subclass draws a uniform index over the concatenated candidate
    spans of every non-empty block instead, which stays uniform over
    all stored transitions even when one block has run ahead (e.g.
    after a checkpoint measurement on the reference cluster).

    ``spans`` is the :class:`TickSpans` frontier the store's writer
    maintains — the sampler re-reads it on every draw, so records that
    land between draws (chunked fan-in, a feeding trainer) become
    eligible immediately.
    """

    def __init__(
        self,
        cache,
        spans: TickSpans,
        obs_ticks: int = 10,
        missing_tolerance: float = 0.20,
        seed=None,
    ):
        super().__init__(
            cache,
            obs_ticks=obs_ticks,
            missing_tolerance=missing_tolerance,
            seed=seed,
        )
        self.spans = spans

    def sample_minibatch(self, n: int, max_attempts: int = 200):
        """ConstructMinibatch(n), uniform over all blocks' transitions."""
        check_positive("n", n)
        spans = self.spans.candidate_spans(self.obs_ticks)
        if not spans:
            raise SamplerStarvedError(
                "shared replay DB does not yet span one full observation "
                "window in any environment"
            )
        from repro.replaydb.records import Minibatch, Transition

        lengths = np.array([last - first + 1 for first, last in spans])
        cum = np.cumsum(lengths)
        collected: list[Transition] = []
        needed = n
        attempts = 0
        while needed > 0:
            attempts += 1
            if attempts > max_attempts:
                raise SamplerStarvedError(
                    f"could not fill a minibatch of {n} after "
                    f"{max_attempts} rounds; too many incomplete timestamps"
                )
            # Uniform over the concatenation of all candidate spans.
            flat = self.rng.integers(0, int(cum[-1]), size=needed)
            for idx in flat:
                b = int(np.searchsorted(cum, idx, side="right"))
                offset_in_block = int(idx) - (int(cum[b - 1]) if b else 0)
                t = spans[b][0] + offset_in_block
                tr = self.transition_at(t)
                if tr is not None:
                    collected.append(tr)
            needed = n - len(collected)
        collected = collected[:n]
        return Minibatch(
            s_t=np.stack([t.s_t for t in collected]),
            s_next=np.stack([t.s_next for t in collected]),
            actions=np.array([t.action for t in collected], dtype=np.int64),
            rewards=np.array([t.reward for t in collected], dtype=np.float64),
        )
