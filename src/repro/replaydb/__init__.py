"""Experience-replay database (§3.5).

The paper keeps system status and actions "in two tables that are
indexed by t" in a SQLite database with write-ahead logging, cached
in memory as NumPy arrays for training speed (artifact appendix A.2.3:
"the cache data is stored in a memory-efficient manner using NumPy
arrays").  This package reproduces that split:

- :mod:`db` — the durable SQLite store (stdlib ``sqlite3``, WAL mode);
- :mod:`cache` — the in-memory ring of frames/actions/rewards that
  training actually reads;
- :mod:`sampler` — Algorithm 1: uniform-timestamp minibatch
  construction with per-observation completeness checking and the 20 %
  missing-entry tolerance of Table 1;
- :mod:`spans` — block-strided tick spaces: the
  :class:`~repro.replaydb.spans.TickSpans` sampling frontier shared by
  the fan-in writer and any concurrent reader, and the
  :class:`~repro.replaydb.spans.StridedMinibatchSampler` that samples
  uniformly across blocks.

:class:`~repro.replaydb.db.ReplayDB` is the façade combining all three.
"""

from repro.replaydb.cache import ReplayCache
from repro.replaydb.prioritized import PrioritizedMinibatch, PrioritizedSampler
from repro.replaydb.db import CACHE_ONLY, ReplayDB
from repro.replaydb.records import PackedRecords, TickRecord, Transition
from repro.replaydb.sampler import MinibatchSampler
from repro.replaydb.spans import StridedMinibatchSampler, TickSpans

__all__ = [
    "CACHE_ONLY",
    "PrioritizedSampler",
    "PrioritizedMinibatch",
    "PackedRecords",
    "ReplayDB",
    "ReplayCache",
    "MinibatchSampler",
    "StridedMinibatchSampler",
    "TickRecord",
    "TickSpans",
    "Transition",
]
