"""Sequencing workloads over time with phase-change notifications.

§3.6: "the Interface Daemon has a controlling program that has access to
the scheduling of the workload.  Whenever a new workload is started on
the system, the Interface Daemon notifies the DRL Engine to bump up ε to
0.2".  :class:`WorkloadSchedule` is that controlling program: it starts
and stops workloads at configured times and invokes registered listeners
at every phase boundary.  The CAPES session subscribes its ε schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.sim.engine import Simulator, Timeout
from repro.workloads.base import Workload

#: Listener invoked as ``fn(phase)`` whenever a new phase begins.
PhaseListener = Callable[["WorkloadPhase"], None]


@dataclass
class WorkloadPhase:
    """One entry in the schedule: run ``workload`` for ``duration`` s."""

    workload: Workload
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"phase duration must be > 0, got {self.duration}")


class WorkloadSchedule:
    """Runs phases back to back, optionally looping forever."""

    def __init__(
        self,
        sim: Simulator,
        phases: Sequence[WorkloadPhase],
        loop: bool = False,
    ):
        if not phases:
            raise ValueError("schedule needs at least one phase")
        self.sim = sim
        self.phases: List[WorkloadPhase] = list(phases)
        self.loop = loop
        self._listeners: List[PhaseListener] = []
        self._current: Optional[WorkloadPhase] = None
        self._started = False

    @property
    def current_phase(self) -> Optional[WorkloadPhase]:
        return self._current

    def on_phase_change(self, fn: PhaseListener) -> None:
        """Register a listener called at the start of every phase."""
        self._listeners.append(fn)

    def start(self) -> None:
        if self._started:
            raise RuntimeError("schedule already started")
        self._started = True
        self.sim.spawn(self._runner(), name="workload-schedule")

    def _runner(self):
        while True:
            for phase in self.phases:
                self._current = phase
                for fn in self._listeners:
                    fn(phase)
                phase.workload.start()
                yield Timeout(phase.duration)
                phase.workload.stop()
            if not self.loop:
                break
        self._current = None
