"""Trace-replay workload: drive the cluster from a recorded op stream.

The paper's appendix recommends exploiting job information when
workloads are scheduled; real deployments often have I/O traces rather
than synthetic generators.  :class:`TraceReplay` replays a list of
:class:`TraceOp` records (or a simple CSV) with either original timing
("open loop") or as-fast-as-possible ("closed loop"), splitting the
stream round-robin across clients.

:func:`synthesize_trace` builds bursty, phase-switching traces — the
dynamic-workload scenario CAPES targets ("it can run continuously to
adapt to dynamically changing workloads") that static tuners handle
poorly.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Generator, Iterable, List, Optional, Sequence, Union

from repro.cluster.cluster import Cluster
from repro.sim.engine import Timeout
from repro.sim.errors import Interrupted
from repro.util.rng import ensure_rng
from repro.util.units import KiB, MiB
from repro.util.validation import check_nonnegative, check_positive
from repro.workloads.base import Workload

#: Operations a trace can carry.
_OPS = ("read", "write", "stat", "create", "delete")


@dataclass(frozen=True)
class TraceOp:
    """One trace record: do ``op`` at ``time`` on ``obj_id``."""

    time: float
    op: str
    obj_id: int
    offset: int = 0
    size: int = 0

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown trace op {self.op!r}; use one of {_OPS}")
        check_nonnegative("time", self.time)
        check_nonnegative("offset", self.offset)
        if self.op in ("read", "write"):
            check_positive("size", self.size)


def load_trace_csv(path: Union[str, Path]) -> List[TraceOp]:
    """Load ``time,op,obj_id,offset,size`` rows (header optional)."""
    ops: List[TraceOp] = []
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        for row in reader:
            if not row or row[0].strip().lower() == "time":
                continue
            time_s, op, obj_id, offset, size = (x.strip() for x in row[:5])
            ops.append(
                TraceOp(
                    time=float(time_s),
                    op=op.lower(),
                    obj_id=int(obj_id),
                    offset=int(offset),
                    size=int(size),
                )
            )
    if not ops:
        raise ValueError(f"trace {path} contains no operations")
    return sorted(ops, key=lambda o: o.time)


def save_trace_csv(path: Union[str, Path], ops: Sequence[TraceOp]) -> None:
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time", "op", "obj_id", "offset", "size"])
        for op in ops:
            writer.writerow([op.time, op.op, op.obj_id, op.offset, op.size])


def synthesize_trace(
    duration: float,
    ops_per_second: float = 50.0,
    phase_length: float = 60.0,
    io_size: int = 32 * KiB,
    file_size: int = 512 * MiB,
    n_files: int = 32,
    seed=0,
) -> List[TraceOp]:
    """Bursty trace alternating read-heavy and write-heavy phases.

    Poisson arrivals; each ``phase_length`` window flips the dominant
    op direction (90/10 split), producing the workload drift that
    motivates continuous tuning.
    """
    check_positive("duration", duration)
    check_positive("ops_per_second", ops_per_second)
    check_positive("phase_length", phase_length)
    rng = ensure_rng(seed)
    ops: List[TraceOp] = []
    t = 0.0
    slots = max(1, file_size // io_size)
    while t < duration:
        t += float(rng.exponential(1.0 / ops_per_second))
        if t >= duration:
            break
        phase = int(t // phase_length) % 2
        read_fraction = 0.9 if phase == 0 else 0.1
        obj = 700_000 + int(rng.integers(n_files))
        offset = int(rng.integers(slots)) * io_size
        if rng.random() < 0.02:
            op = str(rng.choice(["stat", "create", "delete"]))
            ops.append(TraceOp(time=t, op=op, obj_id=obj))
        elif rng.random() < read_fraction:
            ops.append(TraceOp(t, "read", obj, offset, io_size))
        else:
            ops.append(TraceOp(t, "write", obj, offset, io_size))
    if not ops:
        raise ValueError("duration/rate too small: empty trace")
    return ops


class TraceReplay(Workload):
    """Replays a trace, sharded round-robin across clients.

    ``paced=True`` honours the trace timestamps (open loop: a slow
    system falls behind and queues build — realistic under overload);
    ``paced=False`` issues each client's next op as soon as the
    previous completes (closed loop).  ``loop=True`` restarts the trace
    when exhausted so sessions of any length stay loaded.
    """

    name = "trace_replay"

    def __init__(
        self,
        cluster: Cluster,
        trace: Iterable[TraceOp],
        paced: bool = True,
        loop: bool = True,
        seed: Optional[int] = 0,
    ):
        super().__init__(cluster, instances_per_client=1, seed=seed)
        self.trace: List[TraceOp] = sorted(trace, key=lambda o: o.time)
        if not self.trace:
            raise ValueError("empty trace")
        self.paced = bool(paced)
        self.loop = bool(loop)
        self.replayed = 0

    def _shard(self, client_id: int) -> List[TraceOp]:
        n = len(self.cluster.clients)
        return [op for i, op in enumerate(self.trace) if i % n == client_id]

    def _issue(self, fs, op: TraceOp) -> Generator:
        if op.op == "read":
            yield from fs.read(op.obj_id, op.offset, op.size)
            self._did_read(op.size)
        elif op.op == "write":
            yield from fs.write(op.obj_id, op.offset, op.size)
            self._did_write(op.size)
        elif op.op == "stat":
            yield from fs.stat(op.obj_id)
            self._did_meta()
        elif op.op == "create":
            yield from fs.create(op.obj_id)
            self._did_meta()
        else:  # delete
            yield from fs.delete(op.obj_id)
            self._did_meta()
        self.replayed += 1

    def instance(self, client_id: int, instance_id: int, rng) -> Generator:
        fs = self.cluster.fs(client_id)
        shard = self._shard(client_id)
        if not shard:
            return
        span = self.trace[-1].time
        epoch = 0.0
        try:
            while True:
                for op in shard:
                    if self.paced:
                        target = epoch + op.time
                        delay = target - self.sim.now
                        if delay > 0:
                            yield Timeout(delay)
                    yield from self._issue(fs, op)
                if not self.loop:
                    return
                epoch = self.sim.now if not self.paced else epoch + span
        except Interrupted:
            return
