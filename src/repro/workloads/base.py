"""Workload base class: per-client application processes + accounting.

A workload instance owns a set of generator functions ("instances" in
Filebench terminology) that it spawns onto the simulator, one group per
client.  Subclasses implement :meth:`instance` — an infinite loop of
I/O operations against the client's striped filesystem.  Instances run
until the simulation stops; workloads are driven, never drained.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.cluster.cluster import Cluster
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.util.rng import derive_rng, ensure_rng


@dataclass
class WorkloadStats:
    """Operation counters aggregated across all instances."""

    reads: int = 0
    writes: int = 0
    metas: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    @property
    def ops(self) -> int:
        return self.reads + self.writes + self.metas


class Workload(abc.ABC):
    """Base for all synthetic workloads.

    Parameters
    ----------
    cluster:
        Target cluster; instances drive ``cluster.fs(client_id)``.
    instances_per_client:
        Number of concurrent application loops per client.
    seed:
        Seed for the workload's RNG tree; each instance derives an
        independent child stream so per-instance behaviour is stable
        regardless of scheduling order.
    """

    name: str = "workload"

    def __init__(
        self,
        cluster: Cluster,
        instances_per_client: int = 1,
        seed: Optional[int] = 0,
    ):
        if instances_per_client <= 0:
            raise ValueError(
                f"instances_per_client must be > 0, got {instances_per_client}"
            )
        self.cluster = cluster
        self.sim: Simulator = cluster.sim
        self.instances_per_client = int(instances_per_client)
        self._root_rng = ensure_rng(seed)
        self.stats = WorkloadStats()
        self._procs: List[Process] = []
        self._started = False
        self._paused_clients: set = set()

    @abc.abstractmethod
    def instance(self, client_id: int, instance_id: int, rng) -> Generator:
        """One application loop (a simulation generator, usually infinite)."""

    def _spawn_instance(
        self, client_id: int, instance_id: int, parent_rng, suffix: str
    ) -> Process:
        """One instance, stream-derived and name-tagged consistently.

        Every spawn path (start, churn rejoin, load surge) goes through
        here, so the ``.c{id}.`` tag :meth:`pause_client` matches on and
        the ``derive_rng`` key shape can never drift apart.
        """
        rng = derive_rng(parent_rng, self.name, client_id, instance_id)
        proc = self.sim.spawn(
            self.instance(client_id, instance_id, rng),
            name=f"{self.name}.c{client_id}.{suffix}",
        )
        self._procs.append(proc)
        return proc

    def start(self) -> None:
        """Spawn every instance on every client."""
        if self._started:
            raise RuntimeError(f"workload {self.name!r} already started")
        self._started = True
        for client in self.cluster.clients:
            for k in range(self.instances_per_client):
                self._spawn_instance(
                    client.client_id, k, self._root_rng, f"i{k}"
                )

    def stop(self) -> None:
        """Interrupt all still-running instances (phase change)."""
        for p in self._procs:
            if p.is_alive:
                p.interrupt(cause="workload-stop")
        self._procs.clear()
        self._started = False
        # A restart respawns every client, so churn state resets too.
        self._paused_clients.clear()

    # -- scenario surface (repro.scenarios perturbs through these) -------
    def client_paused(self, client_id: int) -> bool:
        """Whether :meth:`pause_client` currently holds this client.

        Tracked synchronously — interrupts only *deliver* when the
        simulation next runs, so liveness of the instance processes
        cannot answer "is this client already churned?" at apply time.
        """
        return client_id in self._paused_clients

    def pause_client(self, client_id: int) -> int:
        """Interrupt this client's instances (churn: the client leaves).

        The client node itself stays in the cluster — its write cache
        drains and its monitoring agent keeps sampling — only the
        application loops stop.  Returns how many were interrupted;
        pausing an already-paused client is a no-op returning 0.
        """
        if client_id in self._paused_clients:
            return 0
        self._paused_clients.add(client_id)
        tag = f".c{client_id}."
        paused = 0
        for p in self._procs:
            if p.is_alive and tag in (p.name or ""):
                p.interrupt(cause="client-churn")
                paused += 1
        return paused

    def resume_client(self, client_id: int, rng) -> None:
        """Respawn this client's instances (churn: the client rejoins).

        The rejoining application is a new process, not a resumed one,
        so instance streams derive from the caller-supplied ``rng``
        (a scenario event's private stream), keeping churn runs a pure
        function of the environment seed.
        """
        self._paused_clients.discard(client_id)
        for k in range(self.instances_per_client):
            self._spawn_instance(client_id, k, rng, f"i{k}")

    def surge(self, extra_per_client: int, rng) -> List[Process]:
        """Spawn ``extra_per_client`` additional instances on every
        *present* client (a load spike) and return them for later
        interruption.

        Surge instance ids continue after the base ids, so per-instance
        objects stay distinct from the steady-state working set.
        Clients currently churned out by :meth:`pause_client` are
        skipped — an absent client cannot host new application loops.
        """
        if extra_per_client <= 0:
            raise ValueError(
                f"extra_per_client must be > 0, got {extra_per_client}"
            )
        procs: List[Process] = []
        for client in self.cluster.clients:
            if client.client_id in self._paused_clients:
                continue
            for j in range(extra_per_client):
                k = self.instances_per_client + j
                procs.append(
                    self._spawn_instance(client.client_id, k, rng, f"s{j}")
                )
        return procs

    @property
    def total_instances(self) -> int:
        return self.instances_per_client * len(self.cluster.clients)

    # -- accounting helpers for subclasses -------------------------------
    def _did_read(self, nbytes: int) -> None:
        self.stats.reads += 1
        self.stats.bytes_read += nbytes

    def _did_write(self, nbytes: int) -> None:
        self.stats.writes += 1
        self.stats.bytes_written += nbytes

    def _did_meta(self) -> None:
        self.stats.metas += 1
