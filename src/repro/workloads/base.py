"""Workload base class: per-client application processes + accounting.

A workload instance owns a set of generator functions ("instances" in
Filebench terminology) that it spawns onto the simulator, one group per
client.  Subclasses implement :meth:`instance` — an infinite loop of
I/O operations against the client's striped filesystem.  Instances run
until the simulation stops; workloads are driven, never drained.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.cluster.cluster import Cluster
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.util.rng import derive_rng, ensure_rng


@dataclass
class WorkloadStats:
    """Operation counters aggregated across all instances."""

    reads: int = 0
    writes: int = 0
    metas: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    @property
    def ops(self) -> int:
        return self.reads + self.writes + self.metas


class Workload(abc.ABC):
    """Base for all synthetic workloads.

    Parameters
    ----------
    cluster:
        Target cluster; instances drive ``cluster.fs(client_id)``.
    instances_per_client:
        Number of concurrent application loops per client.
    seed:
        Seed for the workload's RNG tree; each instance derives an
        independent child stream so per-instance behaviour is stable
        regardless of scheduling order.
    """

    name: str = "workload"

    def __init__(
        self,
        cluster: Cluster,
        instances_per_client: int = 1,
        seed: Optional[int] = 0,
    ):
        if instances_per_client <= 0:
            raise ValueError(
                f"instances_per_client must be > 0, got {instances_per_client}"
            )
        self.cluster = cluster
        self.sim: Simulator = cluster.sim
        self.instances_per_client = int(instances_per_client)
        self._root_rng = ensure_rng(seed)
        self.stats = WorkloadStats()
        self._procs: List[Process] = []
        self._started = False

    @abc.abstractmethod
    def instance(self, client_id: int, instance_id: int, rng) -> Generator:
        """One application loop (a simulation generator, usually infinite)."""

    def start(self) -> None:
        """Spawn every instance on every client."""
        if self._started:
            raise RuntimeError(f"workload {self.name!r} already started")
        self._started = True
        for client in self.cluster.clients:
            for k in range(self.instances_per_client):
                rng = derive_rng(
                    self._root_rng, self.name, client.client_id, k
                )
                gen = self.instance(client.client_id, k, rng)
                self._procs.append(
                    self.sim.spawn(
                        gen, name=f"{self.name}.c{client.client_id}.i{k}"
                    )
                )

    def stop(self) -> None:
        """Interrupt all still-running instances (phase change)."""
        for p in self._procs:
            if p.is_alive:
                p.interrupt(cause="workload-stop")
        self._procs.clear()
        self._started = False

    @property
    def total_instances(self) -> int:
        return self.instances_per_client * len(self.cluster.clients)

    # -- accounting helpers for subclasses -------------------------------
    def _did_read(self, nbytes: int) -> None:
        self.stats.reads += 1
        self.stats.bytes_read += nbytes

    def _did_write(self, nbytes: int) -> None:
        self.stats.writes += 1
        self.stats.bytes_written += nbytes

    def _did_meta(self) -> None:
        self.stats.metas += 1
