"""Five-stream concurrent sequential write (Figure 3, second workload).

"Each instance does sequential write with 1 MB write size.  This
benchmark simulates both HPC checkpoint and video surveillance
workloads."  Five instances per client, each appending 1 MB records to
its own stream file forever (wrapping at a configurable extent so the
LBA space stays bounded).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.cluster.cluster import Cluster
from repro.sim.errors import Interrupted
from repro.util.units import GiB, MiB
from repro.util.validation import check_positive
from repro.workloads.base import Workload


class SequentialWrite(Workload):
    """Concurrent append streams with fixed record size."""

    name = "seqwrite"

    def __init__(
        self,
        cluster: Cluster,
        record_size: int = MiB,
        stream_extent: int = 8 * GiB,
        instances_per_client: int = 5,
        seed: Optional[int] = 0,
    ):
        super().__init__(cluster, instances_per_client, seed)
        check_positive("record_size", record_size)
        check_positive("stream_extent", stream_extent)
        if record_size > stream_extent:
            raise ValueError("record_size cannot exceed stream_extent")
        self.record_size = int(record_size)
        self.stream_extent = int(stream_extent)

    def _obj_id(self, client_id: int, instance_id: int) -> int:
        return 900_000 + client_id * 100 + instance_id

    def instance(self, client_id: int, instance_id: int, rng) -> Generator:
        fs = self.cluster.fs(client_id)
        obj = self._obj_id(client_id, instance_id)
        offset = 0
        try:
            while True:
                yield from fs.write(obj, offset, self.record_size)
                self._did_write(self.record_size)
                offset += self.record_size
                if offset + self.record_size > self.stream_extent:
                    offset = 0  # wrap: keeps streams bounded but sequential
        except Interrupted:
            return
