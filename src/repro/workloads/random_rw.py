"""Random read/write workload with a fixed read:write ratio.

The paper's Figure 2 sweep: "each client has five threads doing the same
random read and write with a fixed ratio", ratios 9:1 through 1:9.  Each
instance owns one large private file and issues fixed-size I/O at
uniformly random aligned offsets; the op kind is drawn Bernoulli from
the ratio.  Writes land in the client cache (asynchronous), reads are
synchronous — the asymmetry that makes congestion-window tuning matter
for the write-heavy end of the sweep.
"""

from __future__ import annotations

from typing import Generator, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.sim.errors import Interrupted
from repro.util.units import GiB, KiB
from repro.util.validation import check_positive
from repro.workloads.base import Workload


class RandomReadWrite(Workload):
    """Fixed-ratio random I/O threads (Figure 2 workloads)."""

    name = "random_rw"

    def __init__(
        self,
        cluster: Cluster,
        read_fraction: float,
        io_size: int = 32 * KiB,
        file_size: int = 4 * GiB,
        instances_per_client: int = 5,
        think_time: float = 0.0,
        seed: Optional[int] = 0,
    ):
        super().__init__(cluster, instances_per_client, seed)
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError(
                f"read_fraction must be in [0, 1], got {read_fraction}"
            )
        check_positive("io_size", io_size)
        check_positive("file_size", file_size)
        if io_size > file_size:
            raise ValueError("io_size cannot exceed file_size")
        self.read_fraction = float(read_fraction)
        self.io_size = int(io_size)
        self.file_size = int(file_size)
        self.think_time = float(think_time)

    @classmethod
    def from_ratio(
        cls, cluster: Cluster, read_parts: int, write_parts: int, **kw
    ) -> "RandomReadWrite":
        """Construct from the paper's R:W notation, e.g. ``(1, 9)`` for 1:9."""
        total = read_parts + write_parts
        if total <= 0 or read_parts < 0 or write_parts < 0:
            raise ValueError(f"bad ratio {read_parts}:{write_parts}")
        wl = cls(cluster, read_fraction=read_parts / total, **kw)
        wl.name = f"random_rw_{read_parts}to{write_parts}"
        return wl

    def _obj_id(self, client_id: int, instance_id: int) -> int:
        # Stable unique object per instance; offset 1000 keeps ids clear
        # of the small ids tests use for scratch files.
        return 1000 + client_id * 100 + instance_id

    def instance(self, client_id: int, instance_id: int, rng) -> Generator:
        fs = self.cluster.fs(client_id)
        obj = self._obj_id(client_id, instance_id)
        n_slots = self.file_size // self.io_size
        try:
            while True:
                offset = int(rng.integers(0, n_slots)) * self.io_size
                if rng.random() < self.read_fraction:
                    yield from fs.read(obj, offset, self.io_size)
                    self._did_read(self.io_size)
                else:
                    yield from fs.write(obj, offset, self.io_size)
                    self._did_write(self.io_size)
                if self.think_time > 0:
                    yield self.sim.timeout(self.think_time)
        except Interrupted:
            return
