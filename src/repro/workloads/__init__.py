"""Filebench-style synthetic workload generators (§4.3 of the paper).

Three workload families drive the simulated cluster:

- :class:`~repro.workloads.random_rw.RandomReadWrite` — per-client
  threads doing fixed-ratio random reads and writes (the paper sweeps
  9:1, 4:1, 1:1, 1:4, 1:9 read:write ratios);
- :class:`~repro.workloads.fileserver.FileServer` — the Filebench
  "fileserver" personality: create/append/whole-file-read/delete/stat
  loops over a prepopulated file set, 32 instances per client;
- :class:`~repro.workloads.seqwrite.SequentialWrite` — five concurrent
  1 MB-write streams per client (HPC checkpoint / video surveillance).

All workloads subclass :class:`~repro.workloads.base.Workload`, which
handles spawning per-client application processes onto the simulator and
exposes operation counters.  :class:`~repro.workloads.schedule.WorkloadSchedule`
sequences multiple workloads over time and notifies listeners at phase
changes — the hook CAPES uses to bump the exploration rate ε to 0.2
whenever a new workload starts (§3.6).
"""

from repro.workloads.base import Workload, WorkloadStats
from repro.workloads.fileserver import FileServer
from repro.workloads.random_rw import RandomReadWrite
from repro.workloads.replay import (
    TraceOp,
    TraceReplay,
    load_trace_csv,
    save_trace_csv,
    synthesize_trace,
)
from repro.workloads.schedule import WorkloadPhase, WorkloadSchedule
from repro.workloads.seqwrite import SequentialWrite

__all__ = [
    "TraceOp",
    "TraceReplay",
    "load_trace_csv",
    "save_trace_csv",
    "synthesize_trace",
    "Workload",
    "WorkloadStats",
    "RandomReadWrite",
    "FileServer",
    "SequentialWrite",
    "WorkloadPhase",
    "WorkloadSchedule",
]
