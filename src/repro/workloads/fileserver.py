"""Filebench "fileserver" personality (Figure 3 / Figure 4 workload).

Each instance loops over the five-operation cycle §4.3 lists:

1. create a file and write it out,
2. open another file and append a random amount (mean = whole-file
   size),
3. open a randomly picked file and read it back in full,
4. delete a random file,
5. stat a random file.

The paper runs 32 instances per client with 100 MB whole-file
operations; the default here scales the file size down (the simulated
cluster can be driven at any size) while keeping the op mix and the
create/append/read/delete/stat structure identical.  Large operations
are chunked so the write cache and stripes see realistic request sizes.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.cluster.cluster import Cluster
from repro.sim.errors import Interrupted
from repro.util.units import KiB, MiB
from repro.util.validation import check_positive
from repro.workloads.base import Workload


class FileServer(Workload):
    """Busy-fileserver op mix: data + metadata competition."""

    name = "fileserver"

    def __init__(
        self,
        cluster: Cluster,
        file_size: int = 4 * MiB,
        io_size: int = 256 * KiB,
        fileset_size: int = 16,
        instances_per_client: int = 32,
        seed: Optional[int] = 0,
    ):
        super().__init__(cluster, instances_per_client, seed)
        check_positive("file_size", file_size)
        check_positive("io_size", io_size)
        check_positive("fileset_size", fileset_size)
        if io_size > file_size:
            raise ValueError("io_size cannot exceed file_size")
        self.file_size = int(file_size)
        self.io_size = int(io_size)
        self.fileset_size = int(fileset_size)

    def _obj_id(self, client_id: int, slot: int) -> int:
        return 500_000 + client_id * 10_000 + slot

    def _chunked(self, fs, op, obj: int, total: int) -> Generator:
        """Issue ``total`` bytes as a run of io_size requests."""
        pos = 0
        while pos < total:
            sz = min(self.io_size, total - pos)
            yield from op(obj, pos, sz)
            pos += sz

    def instance(self, client_id: int, instance_id: int, rng) -> Generator:
        fs = self.cluster.fs(client_id)
        try:
            while True:
                # 1. create a file and write it out in full
                slot = int(rng.integers(0, self.fileset_size))
                obj = self._obj_id(client_id, slot)
                yield from fs.create(obj)
                self._did_meta()
                yield from self._chunked(fs, fs.write, obj, self.file_size)
                self._did_write(self.file_size)

                # 2. append a random amount to another file (mean = file_size)
                slot2 = int(rng.integers(0, self.fileset_size))
                obj2 = self._obj_id(client_id, slot2)
                append = int(
                    min(4 * self.file_size, max(self.io_size, rng.exponential(self.file_size)))
                )
                yield from self._chunked(fs, fs.write, obj2, append)
                self._did_write(append)

                # 3. read a random file in full
                slot3 = int(rng.integers(0, self.fileset_size))
                obj3 = self._obj_id(client_id, slot3)
                yield from self._chunked(fs, fs.read, obj3, self.file_size)
                self._did_read(self.file_size)

                # 4. delete a random file
                slot4 = int(rng.integers(0, self.fileset_size))
                yield from fs.delete(self._obj_id(client_id, slot4))
                self._did_meta()

                # 5. stat a random file
                slot5 = int(rng.integers(0, self.fileset_size))
                yield from fs.stat(self._obj_id(client_id, slot5))
                self._did_meta()
        except Interrupted:
            return
