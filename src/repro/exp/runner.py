"""Parallel experiment orchestration.

:class:`ExperimentRunner` takes a list of :class:`ExperimentSpec`\\ s and
executes each in isolation — serially, or fanned out across worker
processes — streaming one JSONL artifact line per completed run and
aggregating the results through :mod:`repro.stats`.

Design notes:

- Workers rebuild everything from the spec, so a run's result depends
  only on its spec: the same grid executed with ``jobs=1`` and
  ``jobs=N`` yields byte-identical per-seed results, and separate
  invocations agree too (seed derivation in :mod:`repro.util.rng` is
  hash-salt free, so worker start method does not matter; ``fork`` is
  merely preferred because it avoids re-import cost).
- Artifacts are JSONL, one self-contained line per run (spec included)
  appended as each run finishes, so a sweep that dies half-way keeps
  everything it already measured.  Each ``run()`` starts a fresh
  ``runs.jsonl`` — one sweep per file.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.exp.spec import ExperimentSpec
from repro.exp.tuners import RunResult
from repro.stats import bootstrap_ci, compare_measurements
from repro.util.validation import check_positive


def execute_spec(spec: ExperimentSpec) -> RunResult:
    """Run one experiment end to end (the worker entry point)."""
    env = spec.build_env()
    try:
        tuner = spec.build_tuner()
        return tuner.run(env, spec.budget)
    finally:
        env.close()


def _timed_execute(spec: ExperimentSpec) -> tuple:
    """Execute and time inside the worker, so recorded durations are
    pure run time (no pool queue wait)."""
    t0 = time.perf_counter()
    result = execute_spec(spec)
    return result, time.perf_counter() - t0


@dataclass
class RunRecord:
    """One completed run: its spec, its result, and how long it took."""

    index: int
    spec: ExperimentSpec
    result: RunResult
    duration_s: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form (one runs.jsonl line)."""
        return {
            "index": self.index,
            "spec": self.spec.to_dict(),
            "result": self.result.to_dict(),
            "duration_s": self.duration_s,
        }


@dataclass
class ScenarioSummary:
    """Aggregate over the seeds of one (scenario, tuner) cell."""

    scenario: str
    tuner: str
    n_seeds: int
    baseline_mean: float
    tuned_mean: float
    #: Bootstrap CI over the per-seed tuned means (repro.stats).
    tuned_ci_low: float
    tuned_ci_high: float
    #: Median of per-seed percent gains — the paper's headline statistic.
    median_percent: float
    #: Welch test over the pooled per-tick samples.
    p_value: float
    significant: bool


class ExperimentResults:
    """The outcome of a sweep, with stats helpers attached."""

    def __init__(self, records: List[RunRecord]):
        self.records = sorted(records, key=lambda r: r.index)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self.records)

    @property
    def results(self) -> List[RunResult]:
        """Bare per-run results, in completion order."""
        return [r.result for r in self.records]

    def summarize(self) -> List[ScenarioSummary]:
        """One row per (scenario, tuner), aggregated across seeds."""
        groups: Dict[tuple, List[RunResult]] = {}
        order: List[tuple] = []
        for rec in self.records:
            key = (rec.result.scenario, rec.result.tuner)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(rec.result)

        rows = []
        for scenario, tuner in order:
            results = groups[(scenario, tuner)]
            finals = [r.final for r in results]
            seed_means = np.array(
                [float(np.mean(p.tuned_rewards)) for p in finals]
            )
            percents = [p.comparison().percent for p in finals]
            pooled_base = np.concatenate([p.baseline_rewards for p in finals])
            pooled_tuned = np.concatenate([p.tuned_rewards for p in finals])
            # No trimming on the pooled series: concatenation boundaries
            # would masquerade as changepoints.
            cmp = compare_measurements(pooled_base, pooled_tuned, trim=False)
            if len(seed_means) >= 2:
                ci = bootstrap_ci(seed_means, seed=0)
                low, high = ci.low, ci.high
            else:
                low = high = float(seed_means[0])
            rows.append(
                ScenarioSummary(
                    scenario=scenario,
                    tuner=tuner,
                    n_seeds=len(results),
                    baseline_mean=cmp.baseline.mean,
                    tuned_mean=cmp.tuned.mean,
                    tuned_ci_low=low,
                    tuned_ci_high=high,
                    median_percent=float(np.median(percents)),
                    p_value=cmp.p_value,
                    significant=cmp.significant,
                )
            )
        return rows

    def format_table(self, unit_scale: float = 1.0, unit: str = "") -> str:
        """Paper-style report: one line per (scenario, tuner) cell.

        ``unit`` labels the baseline/tuned columns (the gain column is
        always a percentage; ``*`` marks Welch-test significance).
        """
        base_label = f"baseline{unit}"
        tuned_label = f"tuned{unit}"
        w = max(10, len(base_label), len(tuned_label))
        lines = [
            f"{'scenario':>14} {'tuner':>12} {'seeds':>5} "
            f"{base_label:>{w}} {tuned_label:>{w}} {'gain':>8}"
        ]
        for s in self.summarize():
            lines.append(
                f"{s.scenario:>14} {s.tuner:>12} {s.n_seeds:>5} "
                f"{s.baseline_mean * unit_scale:>{w}.1f} "
                f"{s.tuned_mean * unit_scale:>{w}.1f} "
                f"{s.median_percent:>+7.1f}%"
                f"{'*' if s.significant else ' '}"
            )
        return "\n".join(lines)


class ExperimentRunner:
    """Fan a grid of specs out over worker processes and collect results.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` (default) runs serially in-process.
    artifacts_dir:
        If set, every completed run appends one JSON line to
        ``<artifacts_dir>/runs.jsonl`` as soon as it finishes.
    """

    def __init__(
        self,
        jobs: int = 1,
        artifacts_dir: Optional[Union[str, Path]] = None,
    ):
        check_positive("jobs", jobs)
        self.jobs = int(jobs)
        self.artifacts_dir = Path(artifacts_dir) if artifacts_dir else None

    # -- artifact streaming ---------------------------------------------
    def _artifact_path(self) -> Optional[Path]:
        if self.artifacts_dir is None:
            return None
        self.artifacts_dir.mkdir(parents=True, exist_ok=True)
        path = self.artifacts_dir / "runs.jsonl"
        # One sweep per file: a leftover stream from a previous sweep
        # would interleave under duplicate indices on reload.
        path.unlink(missing_ok=True)
        return path

    @staticmethod
    def _append_jsonl(path: Optional[Path], record: RunRecord) -> None:
        if path is None:
            return
        with path.open("a") as fh:
            fh.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")

    # -- execution ------------------------------------------------------
    def run(self, specs: Sequence[ExperimentSpec]) -> ExperimentResults:
        """Execute every spec (serially or across worker processes);
        results are byte-identical either way."""
        specs = list(specs)
        if not specs:
            return ExperimentResults([])
        path = self._artifact_path()
        if self.jobs == 1 or len(specs) == 1:
            return self._run_serial(specs, path)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context()
        return self._run_pool(specs, path, context)

    def _run_serial(
        self, specs: List[ExperimentSpec], path: Optional[Path]
    ) -> ExperimentResults:
        records = []
        for i, spec in enumerate(specs):
            result, duration = _timed_execute(spec)
            record = RunRecord(i, spec, result, duration)
            self._append_jsonl(path, record)
            records.append(record)
        return ExperimentResults(records)

    def _run_pool(
        self,
        specs: List[ExperimentSpec],
        path: Optional[Path],
        context,
    ) -> ExperimentResults:
        records = []
        workers = min(self.jobs, len(specs))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            started = {}
            pending = set()
            for i, spec in enumerate(specs):
                fut = pool.submit(_timed_execute, spec)
                started[fut] = (i, spec)
                pending.add(fut)
            # Stream artifacts as runs finish, not when the sweep ends.
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    i, spec = started.pop(fut)
                    result, duration = fut.result()
                    record = RunRecord(i, spec, result, duration)
                    self._append_jsonl(path, record)
                    records.append(record)
        return ExperimentResults(records)


def load_artifacts(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Reload a ``runs.jsonl`` stream as raw dicts (specs stay dicts;
    results can be rehydrated with :meth:`RunResult.from_dict`)."""
    out = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return sorted(out, key=lambda d: d["index"])
