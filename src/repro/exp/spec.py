"""Declarative experiment specifications.

The paper's claims are statistical: median gains over many repeated
tuning sessions, across workloads, against several baseline tuners.
An :class:`ExperimentSpec` captures *one* such session — cluster ×
workload × tuner × hyperparameters × seed — as plain, picklable data,
so a grid of specs can be fanned out across worker processes by
:class:`~repro.exp.runner.ExperimentRunner` and every run can be
rebuilt bit-identically from its spec alone.

Workloads are named through a registry instead of carried as callables
(lambdas do not survive pickling); :class:`WorkloadSpec` resolves a
name + kwargs into the ``workload_factory`` the environment expects.
"""

from __future__ import annotations

import functools
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.env.protocol import Environment
from repro.env.registry import make_env
from repro.env.tuning_env import EnvConfig
from repro.env.vector import VectorEnv
from repro.rl.hyperparams import Hyperparameters
from repro.workloads import FileServer, RandomReadWrite, SequentialWrite
from repro.workloads.base import Workload

# --------------------------------------------------------------------------
# Workload registry
# --------------------------------------------------------------------------

WorkloadBuilder = Callable[..., Workload]

_WORKLOADS: Dict[str, WorkloadBuilder] = {}


def register_workload(name: str, builder: WorkloadBuilder) -> None:
    """Register ``builder(cluster, seed, **kwargs)`` under ``name``."""
    _WORKLOADS[name] = builder


def workload_names() -> List[str]:
    """Every currently registered workload name, sorted."""
    return sorted(_WORKLOADS)


def _build_random_rw(cluster: Cluster, seed: int, **kw: Any) -> Workload:
    return RandomReadWrite(cluster, seed=seed, **kw)


def _build_fileserver(cluster: Cluster, seed: int, **kw: Any) -> Workload:
    return FileServer(cluster, seed=seed, **kw)


def _build_seqwrite(cluster: Cluster, seed: int, **kw: Any) -> Workload:
    return SequentialWrite(cluster, seed=seed, **kw)


register_workload("random_rw", _build_random_rw)
register_workload("fileserver", _build_fileserver)
register_workload("seqwrite", _build_seqwrite)


@dataclass(frozen=True)
class WorkloadSpec:
    """A named, picklable workload recipe (§4.3 workload families)."""

    name: str
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.name not in _WORKLOADS:
            raise KeyError(
                f"unknown workload {self.name!r}; "
                f"registered: {workload_names()}"
            )

    def factory(self) -> Callable[[Cluster, int], Workload]:
        """The ``workload_factory(cluster, seed)`` the env expects.

        A :func:`functools.partial` over a module-level builder, so the
        result pickles by reference and crosses process boundaries.
        """
        return functools.partial(_WORKLOADS[self.name], **self.kwargs)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form for artifact headers."""
        return {"name": self.name, "kwargs": dict(self.kwargs)}


@dataclass(frozen=True)
class RunBudget:
    """How much system time one run may spend.

    ``train_ticks`` is a sequence of training *segments*: after each
    segment the tuner is measured (baseline + tuned), reproducing the
    paper's "after 12 hours / after 24 hours" checkpoints with a single
    run.  Search-based tuners convert segments into whole epochs of
    ``epoch_ticks`` evaluations.
    """

    train_ticks: Union[int, Tuple[int, ...]] = (600,)
    eval_ticks: int = 120
    epoch_ticks: int = 60

    def __post_init__(self) -> None:
        segs = self.train_ticks
        if isinstance(segs, int):
            segs = (segs,)
        segs = tuple(int(s) for s in segs)
        if not segs or any(s <= 0 for s in segs):
            raise ValueError(f"train_ticks must be positive, got {segs}")
        if self.eval_ticks <= 0 or self.epoch_ticks <= 0:
            raise ValueError("eval_ticks and epoch_ticks must be positive")
        object.__setattr__(self, "train_ticks", segs)

    @property
    def segments(self) -> Tuple[int, ...]:
        """Training segments as a tuple (one entry per checkpoint)."""
        return self.train_ticks  # normalized to a tuple in __post_init__

    @property
    def total_train_ticks(self) -> int:
        """Whole-run training length (all segments summed)."""
        return sum(self.segments)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form for artifact headers."""
        return {
            "train_ticks": list(self.segments),
            "eval_ticks": self.eval_ticks,
            "epoch_ticks": self.epoch_ticks,
        }


@dataclass
class ExperimentSpec:
    """One tuning session, fully determined by plain data.

    Environments are named through the registry in
    :mod:`repro.env.registry` (``env`` field, default ``"sim-lustre"``).
    For the sim-lustre reference backend two configuration sources are
    supported:

    - inline: ``cluster`` + ``workload`` + ``hp`` (+ ``objective_factory``,
      which must be a module-level callable so it pickles by reference);
    - a ``conf_path`` pointing at an appendix-A.3 style conf.py; workers
      re-load the file themselves, so nothing unpicklable crosses the
      process boundary.

    Any other registered backend is built as
    ``make_env(env, seed=seed, **env_kwargs)``.

    ``n_envs > 1`` builds a :class:`~repro.env.vector.VectorEnv` over
    independently-seeded replicas (``vector_backend`` picks serial,
    fork or vec stepping) — the paper's many-agents-one-engine
    topology, used by the ``capes`` tuner for vectorized experience
    collection.

    ``seed`` seeds both the environment rebuild and the tuner, exactly
    as the existing drivers did; sub-streams are derived inside those
    components via :func:`repro.util.rng.derive_rng`.
    """

    tuner: str = "capes"
    seed: int = 0
    #: Report label — and, when it names a registered scenario
    #: (repro.scenarios), the fault/perturbation timeline attached to
    #: the built environment: ``scenario="sim-lustre-bursty"`` runs the
    #: session against the bursty-network condition.  Unregistered
    #: strings stay pure labels (grid() scenario axes, conf sweeps).
    scenario: str = ""
    #: Factory knobs for a *registered* scenario (e.g. event timing);
    #: rejected when ``scenario`` is only a label.
    scenario_kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Environment registry key (repro.env.registry).
    env: str = "sim-lustre"
    #: Constructor kwargs for non-sim-lustre backends.
    env_kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Vectorized collection: replicas stepped in lockstep (1 = plain).
    n_envs: int = 1
    #: VectorEnv backend: "serial", "fork" or "vec" (one
    #: struct-of-arrays fleet, :mod:`repro.sim.vec`).
    vector_backend: str = "serial"
    #: Decoupled trainer backend (repro.train): "inline" (historical
    #: train-in-the-tick-loop, byte-identical default), "serial"
    #: (interleaved bursts), or "process" (continuous training in a
    #: forked worker, §3).  CAPES tuner only.
    trainer_backend: str = "inline"
    #: SGD steps per collected action tick (may be fractional); None
    #: defers to the tuner's ``train_steps_per_tick``.
    train_ratio: Optional[float] = None
    #: Process backend: SGD steps per weight broadcast (the staleness
    #: bound on the acting policy).
    sync_every: int = 64
    workload: WorkloadSpec = field(
        default_factory=lambda: WorkloadSpec(
            "random_rw", {"read_fraction": 0.1, "instances_per_client": 5}
        )
    )
    cluster: ClusterConfig = field(
        default_factory=lambda: ClusterConfig(n_servers=2, n_clients=5)
    )
    hp: Hyperparameters = field(default_factory=Hyperparameters)
    budget: RunBudget = field(default_factory=RunBudget)
    tuner_kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Module-level callable returning an Objective, or None for the
    #: default throughput objective.
    objective_factory: Optional[Callable] = None
    #: Alternative env source: path to a conf.py (overrides the inline
    #: cluster/workload/hp fields).
    conf_path: Optional[str] = None
    #: Figure-4 style layout drift seed, folded into workload placement.
    perturb_seed: int = 0

    @property
    def spec_id(self) -> str:
        """Human-readable run key: scenario/tuner/seed."""
        scen = self.scenario or self.workload.name
        return f"{scen}/{self.tuner}/seed{self.seed}"

    # -- environment construction ---------------------------------------
    def scenario_object(self):
        """The registered :class:`~repro.scenarios.scenario.Scenario`
        this spec names, or ``None`` when ``scenario`` is only a label.
        """
        from repro.scenarios import has_scenario, make_scenario, scenario_names

        if self.scenario and has_scenario(self.scenario):
            return make_scenario(self.scenario, **self.scenario_kwargs)
        if self.scenario_kwargs:
            raise KeyError(
                f"scenario_kwargs given but {self.scenario!r} is not a "
                f"registered scenario; registered: {scenario_names()}"
            )
        return None

    def env_config(self) -> EnvConfig:
        """The sim-lustre :class:`EnvConfig` this spec describes
        (inline fields, or the conf.py when ``conf_path`` is set)."""
        if self.conf_path is not None:
            from repro.core.config import load_config

            cfg = load_config(self.conf_path).env
            spec_scenario = self.scenario_object()
            if spec_scenario is not None and cfg.scenario is not None:
                raise ValueError(
                    f"conf {self.conf_path!r} already carries scenario "
                    f"{cfg.scenario.name!r}; refusing to overwrite it with "
                    f"{spec_scenario.name!r} (drop one, or compose them)"
                )
            return replace(
                cfg,
                seed=self.seed,
                perturb_seed=self.perturb_seed,
                scenario=spec_scenario or cfg.scenario,
            )
        kwargs: Dict[str, Any] = dict(
            cluster=self.cluster,
            workload_factory=self.workload.factory(),
            hp=self.hp,
            seed=self.seed,
            perturb_seed=self.perturb_seed,
            scenario=self.scenario_object(),
        )
        if self.objective_factory is not None:
            kwargs["objective_factory"] = self.objective_factory
        return EnvConfig(**kwargs)

    def build_env(self) -> Environment:
        """Instantiate the named environment (vectorized when asked).

        Returns a single :class:`~repro.env.protocol.Environment` for
        ``n_envs == 1`` and a :class:`~repro.env.vector.VectorEnv` over
        :func:`~repro.env.vector.vector_seeds`-derived replicas
        otherwise.
        """
        if self.n_envs < 1:
            raise ValueError(f"n_envs must be >= 1, got {self.n_envs}")
        from repro.scenarios import has_scenario

        if self.env != "sim-lustre" and has_scenario(self.env):
            # A scenario-named environment is sim-lustre plus that
            # timeline.  Re-route through the sim-lustre config path so
            # the conf/inline cluster-workload-hp configuration applies
            # (the generic registry branch below would rebuild from
            # EnvConfig defaults and misdescribe the run).  Any
            # scenario_kwargs parametrize this scenario.
            if (
                self.scenario
                and has_scenario(self.scenario)
                and self.scenario != self.env
            ):
                raise ValueError(
                    f"env={self.env!r} names one scenario but "
                    f"scenario={self.scenario!r} names another; pick one"
                )
            return replace(
                self, env="sim-lustre", scenario=self.env
            ).build_env()
        if self.env == "sim-lustre":
            if self.env_kwargs:
                raise ValueError(
                    "env_kwargs are constructor kwargs for non-sim-lustre "
                    "backends; the sim-lustre path is configured through "
                    "the cluster/workload/hp fields (or conf_path), so "
                    f"{sorted(self.env_kwargs)} would be silently ignored"
                )
            cfg = self.env_config()
            if self.n_envs == 1:
                return make_env(self.env, config=cfg)
            return VectorEnv.from_config(
                cfg, self.n_envs, backend=self.vector_backend
            )
        if self.scenario_object() is not None:
            raise ValueError(
                f"scenario {self.scenario!r} attaches through the "
                f"sim-lustre config path; with env={self.env!r} either "
                f"keep env='sim-lustre' or name the scenario environment "
                f"directly (env={self.scenario!r})"
            )
        if self.n_envs == 1:
            return make_env(self.env, seed=self.seed, **self.env_kwargs)
        return VectorEnv.from_registry(
            self.env,
            self.n_envs,
            base_seed=self.seed,
            backend=self.vector_backend,
            env_kwargs=dict(self.env_kwargs),
        )

    def build_tuner(self):
        """Instantiate the named tuner with this spec's knobs."""
        from repro.exp.tuners import make_tuner

        # tuner_kwargs may override the shared seed to decouple the
        # tuner's stream from the environment rebuild seed.
        kwargs = {
            "seed": self.seed,
            "scenario": self.scenario or self.workload.name,
            **self.tuner_kwargs,
        }
        if self.tuner == "capes":
            kwargs.setdefault("trainer_backend", self.trainer_backend)
            kwargs.setdefault("train_ratio", self.train_ratio)
            kwargs.setdefault("sync_every", self.sync_every)
        elif self.trainer_backend != "inline" or self.train_ratio is not None:
            raise ValueError(
                f"trainer_backend/train_ratio configure the DQN training "
                f"cadence; tuner {self.tuner!r} does not train a network "
                f"(use tuner='capes' or drop the trainer fields)"
            )
        return make_tuner(self.tuner, **kwargs)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able description (for artifact headers; callables are
        recorded by name only).

        When ``conf_path`` is set the environment comes from the conf
        file, so the inline workload/cluster/hp fields did not apply —
        they are recorded as ``None`` rather than misdescribing the run.
        """
        obj = self.objective_factory
        from_conf = self.conf_path is not None
        return {
            "tuner": self.tuner,
            "seed": self.seed,
            "scenario": self.scenario,
            "scenario_kwargs": dict(self.scenario_kwargs),
            "spec_id": self.spec_id,
            "env": self.env,
            "env_kwargs": dict(self.env_kwargs),
            "n_envs": self.n_envs,
            "vector_backend": self.vector_backend,
            "trainer_backend": self.trainer_backend,
            "train_ratio": self.train_ratio,
            "sync_every": self.sync_every,
            "workload": None if from_conf else self.workload.to_dict(),
            "cluster": None if from_conf else asdict(self.cluster),
            "hp": None if from_conf else asdict(self.hp),
            "budget": self.budget.to_dict(),
            "tuner_kwargs": dict(self.tuner_kwargs),
            "objective_factory": (
                f"{obj.__module__}:{obj.__qualname__}" if obj else None
            ),
            "conf_path": self.conf_path,
            "perturb_seed": self.perturb_seed,
        }


def grid(
    base: ExperimentSpec,
    tuners: Optional[Sequence[str]] = None,
    seeds: Optional[Sequence[int]] = None,
    workloads: Optional[Sequence[Tuple[str, WorkloadSpec]]] = None,
    tuner_kwargs: Optional[Dict[str, Dict[str, Any]]] = None,
) -> List[ExperimentSpec]:
    """Expand ``base`` across tuners × scenarios × seeds.

    ``workloads`` pairs a scenario label with a :class:`WorkloadSpec`;
    omitted axes keep the base spec's value.  ``tuner_kwargs`` maps a
    tuner name to extra constructor kwargs layered over the base spec's
    (e.g. CAPES-only session knobs in a mixed-tuner sweep).  The
    expansion order is deterministic (workload-major, then tuner, then
    seed) so artifact indices are stable across runs.
    """
    from repro.scenarios import has_scenario

    if workloads is not None and base.scenario and has_scenario(base.scenario):
        # The workloads axis relabels each spec's scenario field, which
        # would silently replace the registered perturbation timeline
        # with a plain label and run every session unperturbed.
        raise ValueError(
            f"base spec attaches scenario {base.scenario!r}, but a "
            f"workloads axis overwrites the scenario field with its "
            f"labels; run one grid per scenario instead"
        )
    tuner_list = list(tuners) if tuners is not None else [base.tuner]
    seed_list = list(seeds) if seeds is not None else [base.seed]
    wl_list = (
        list(workloads)
        if workloads is not None
        else [(base.scenario or base.workload.name, base.workload)]
    )
    specs = []
    for scenario, wl in wl_list:
        for tuner in tuner_list:
            # Fresh dict per spec: replace() would otherwise share one
            # mutable mapping across the grid.
            kwargs = dict(base.tuner_kwargs)
            if tuner_kwargs and tuner in tuner_kwargs:
                kwargs.update(tuner_kwargs[tuner])
            for seed in seed_list:
                specs.append(
                    replace(
                        base,
                        tuner=tuner,
                        seed=int(seed),
                        scenario=scenario,
                        workload=wl,
                        tuner_kwargs=dict(kwargs),
                    )
                )
    return specs
