"""Unified experiment orchestration (the paper-scale sweep layer).

The paper's core claim is statistical — median throughput gains over
many repeated tuning sessions, across workloads, against baseline
tuners.  This package turns that into infrastructure:

- :class:`~repro.exp.tuners.Tuner` — one ``run(env, budget)`` protocol
  over CAPES and every §5 search baseline, with a string registry
  (``"capes"``, ``"random"``, ``"hill_climb"``, ``"evolution"``,
  ``"static"``);
- :class:`~repro.exp.spec.ExperimentSpec` — a picklable description of
  one session (cluster × workload × tuner × hyperparameters × seed)
  plus :func:`~repro.exp.spec.grid` to expand sweeps;
- :class:`~repro.exp.runner.ExperimentRunner` — serial or
  multi-process execution with streamed JSONL artifacts and
  :mod:`repro.stats` aggregation.

Quick sweep::

    from repro.exp import ExperimentRunner, ExperimentSpec, RunBudget, grid

    base = ExperimentSpec(budget=RunBudget(train_ticks=600, eval_ticks=120))
    specs = grid(base, tuners=["capes", "random"], seeds=[0, 1, 2])
    results = ExperimentRunner(jobs=4, artifacts_dir="out/").run(specs)
    print(results.format_table(unit_scale=100.0, unit=" MB/s"))
"""

from repro.exp.runner import (
    ExperimentResults,
    ExperimentRunner,
    RunRecord,
    ScenarioSummary,
    execute_spec,
    load_artifacts,
)
from repro.exp.spec import (
    ExperimentSpec,
    RunBudget,
    WorkloadSpec,
    grid,
    register_workload,
    workload_names,
)
from repro.exp.tuners import (
    CapesTuner,
    PhaseResult,
    RunResult,
    SearchTuner,
    Tuner,
    make_tuner,
    register_tuner,
    tuner_names,
)

__all__ = [
    "CapesTuner",
    "ExperimentResults",
    "ExperimentRunner",
    "ExperimentSpec",
    "PhaseResult",
    "RunBudget",
    "RunRecord",
    "RunResult",
    "ScenarioSummary",
    "SearchTuner",
    "Tuner",
    "WorkloadSpec",
    "execute_spec",
    "grid",
    "load_artifacts",
    "make_tuner",
    "register_tuner",
    "register_workload",
    "tuner_names",
    "workload_names",
]
