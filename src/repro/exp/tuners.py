"""The unified tuner interface and its registry.

Every automatic tuner in the reproduction — the CAPES DQN session and
the §5 search-based comparators — runs through one protocol::

    tuner = make_tuner("capes", seed=3)
    result = tuner.run(env, RunBudget(train_ticks=600, eval_ticks=120))

A run follows the paper's evaluation workflow (appendix A.4) for each
training segment of the budget: spend the segment training/searching,
reset the system to default parameters and measure the *baseline*,
then measure the *tuned* system — so every tuner produces directly
comparable :class:`PhaseResult` pairs, and multi-checkpoint budgets
reproduce the "after 12 h / after 24 h" bars of Figures 2-3 in a
single run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, runtime_checkable

import numpy as np

from repro.baselines import (
    BaselineTuner,
    EvolutionStrategy,
    HillClimb,
    RandomSearch,
    StaticBaseline,
)
from repro.core.session import CapesSession
from repro.env.protocol import Environment
from repro.env.vector import VectorEnv, per_env_rngs
from repro.exp.spec import RunBudget
from repro.rl.agent import DQNAgent
from repro.stats import compare_measurements
from repro.train.loop import TrainerConfig, TrainerLoop
from repro.stats.summary import Comparison
from repro.util.rng import derive_rng, ensure_rng


@dataclass
class PhaseResult:
    """Baseline/tuned measurement pair after one training checkpoint."""

    trained_ticks: int  # cumulative training ticks when measured
    baseline_rewards: np.ndarray
    tuned_rewards: np.ndarray
    final_params: Dict[str, float]

    def comparison(self, trim: bool = True) -> Comparison:
        """Pilot-style baseline-vs-tuned statistics for this phase."""
        return compare_measurements(
            self.baseline_rewards, self.tuned_rewards, trim=trim
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form (inverse of :meth:`from_dict`)."""
        return {
            "trained_ticks": int(self.trained_ticks),
            "baseline_rewards": [float(x) for x in self.baseline_rewards],
            "tuned_rewards": [float(x) for x in self.tuned_rewards],
            "final_params": {
                k: float(v) for k, v in self.final_params.items()
            },
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "PhaseResult":
        return cls(
            trained_ticks=int(d["trained_ticks"]),
            baseline_rewards=np.asarray(d["baseline_rewards"], dtype=float),
            tuned_rewards=np.asarray(d["tuned_rewards"], dtype=float),
            final_params=dict(d["final_params"]),
        )


@dataclass
class RunResult:
    """Everything one tuning session produced, one entry per checkpoint."""

    tuner: str
    scenario: str
    seed: int
    phases: List[PhaseResult]
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def final(self) -> PhaseResult:
        """The last checkpoint's measurement pair."""
        return self.phases[-1]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form (inverse of :meth:`from_dict`)."""
        return {
            "tuner": self.tuner,
            "scenario": self.scenario,
            "seed": int(self.seed),
            "phases": [p.to_dict() for p in self.phases],
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RunResult":
        return cls(
            tuner=d["tuner"],
            scenario=d["scenario"],
            seed=int(d["seed"]),
            phases=[PhaseResult.from_dict(p) for p in d["phases"]],
            extra=dict(d.get("extra", {})),
        )


@runtime_checkable
class Tuner(Protocol):
    """Anything that can tune an environment within a budget.

    ``env`` is any :class:`~repro.env.protocol.Environment` — the
    protocol is structural, so the concrete ``"sim-lustre"`` class and
    any future registered backend both satisfy it.
    """

    name: str

    def run(self, env: Environment, budget: RunBudget) -> RunResult:
        """Tune ``env`` within ``budget``; one result per checkpoint."""
        ...  # pragma: no cover - protocol


def _measure_pair(
    env: Environment,
    eval_ticks: int,
    tuned_params: Dict[str, float],
) -> tuple:
    """Measure default parameters, then ``tuned_params``."""
    env.set_params(env.action_space.defaults())
    baseline = env.run_ticks(eval_ticks)
    env.set_params(tuned_params)
    tuned = env.run_ticks(eval_ticks)
    return baseline, tuned


class CapesTuner:
    """The DQN tuner behind the uniform interface.

    Wraps :class:`~repro.core.session.CapesSession`; session knobs
    (``train_steps_per_tick``, ``loss``) pass through unchanged, so a
    spec-driven run is bit-identical to the hand-rolled drivers it
    replaced.  The trainer knobs (``trainer_backend``, ``train_ratio``,
    ``sync_every``) select the :mod:`repro.train` cadence; the
    ``inline`` default stays golden-trace identical.
    """

    name = "capes"

    def __init__(
        self,
        seed: int = 0,
        scenario: str = "",
        train_steps_per_tick: int = 1,
        loss: str = "mse",
        greedy_eval: bool = True,
        trainer_backend: str = "inline",
        train_ratio: Optional[float] = None,
        sync_every: int = 64,
    ):
        self.seed = int(seed)
        self.scenario = scenario
        self.train_steps_per_tick = int(train_steps_per_tick)
        self.loss = loss
        self.greedy_eval = greedy_eval
        self.trainer_backend = trainer_backend
        self.train_ratio = train_ratio
        self.sync_every = int(sync_every)

    def _trainer_config(self) -> TrainerConfig:
        return TrainerConfig(
            backend=self.trainer_backend,
            train_ratio=(
                float(self.train_ratio)
                if self.train_ratio is not None
                else float(self.train_steps_per_tick)
            ),
            sync_every=self.sync_every,
        )

    def run(self, env: Environment, budget: RunBudget) -> RunResult:
        """One CAPES session over ``env``: train each budget segment,
        measure baseline/tuned at every checkpoint."""
        if isinstance(env, VectorEnv):
            return self._run_vector(env, budget)
        session = CapesSession(
            env,
            seed=self.seed,
            train_steps_per_tick=self.train_steps_per_tick,
            loss=self.loss,
            trainer_backend=self.trainer_backend,
            train_ratio=self.train_ratio,
            sync_every=self.sync_every,
        )
        phases: List[PhaseResult] = []
        trained = 0
        first_loss = last_loss = None
        try:
            for segment in budget.segments:
                train = session.train(segment)
                trained += segment
                if len(train.losses):
                    if first_loss is None:
                        first_loss = float(train.losses[0])
                    last_loss = float(np.mean(train.losses[-100:]))
                env.set_params(env.action_space.defaults())
                baseline = session.measure_baseline(budget.eval_ticks)
                tuned = session.evaluate(
                    budget.eval_ticks, greedy=self.greedy_eval
                )
                phases.append(
                    PhaseResult(
                        trained_ticks=trained,
                        baseline_rewards=baseline,
                        tuned_rewards=tuned.rewards,
                        final_params=tuned.final_params,
                    )
                )
        finally:
            session.shutdown_trainer()
        extra: Dict[str, Any] = {}
        if first_loss is not None:
            extra["loss_first"] = first_loss
            extra["loss_last100_mean"] = last_loss
        return RunResult(
            tuner=self.name,
            scenario=self.scenario,
            seed=self.seed,
            phases=phases,
            extra=extra,
        )

    def _run_vector(self, venv: VectorEnv, budget: RunBudget) -> RunResult:
        """Many clusters, one engine: vectorized online training.

        Every action tick the single DQN prices all N stacked
        observations with one batched forward pass, each cluster steps
        its chosen action, all transitions fan into the shared Replay
        DB, and the configured number of SGD steps runs against it — so
        each gradient step sees N clusters' worth of fresh experience.
        ε anneals per action tick (system time), and each cluster draws
        exploration from its own derived stream, so cluster i's random
        actions do not depend on the fleet size.  Checkpoints measure
        baseline/tuned on cluster 0, the reference system.
        """
        root = ensure_rng(self.seed)
        agent = DQNAgent(
            obs_dim=venv.obs_dim,
            n_actions=venv.n_actions,
            hp=venv.hp,
            loss=self.loss,
            rng=derive_rng(root, "agent"),
        )
        sampler_seed = int(derive_rng(root, "sampler").integers(2**31))
        trainer_config = self._trainer_config()
        if trainer_config.backend == "process":
            trainer = TrainerLoop(
                agent,
                trainer_config,
                frame_width=venv.frame_dim,
                stride=venv.tick_stride,
                n_blocks=venv.n_envs,
                sampler_seed=sampler_seed,
                cache_capacity=venv.n_envs * venv.tick_stride,
            )
            venv.add_ingest_listener(trainer.ingest)
        else:
            trainer = TrainerLoop(
                agent,
                trainer_config,
                sampler=venv.make_sampler(seed=sampler_seed),
            )
        act_rngs = per_env_rngs(self.seed, venv.n_envs)
        trainer.begin()
        obs = venv.reset()
        phases: List[PhaseResult] = []
        trained = 0
        first_loss = last_loss = None
        try:
            for segment in budget.segments:
                # Per-segment window, matching the single-env path: the
                # reported last-100 mean never reaches into older
                # segments.
                seg_losses: List[float] = []
                for _ in range(segment):
                    actions = agent.act_batch(obs, rngs=act_rngs)
                    obs, _rewards, _infos = venv.step(actions)
                    seg_losses.extend(trainer.notify_ticks(1))
                # Segment boundary: every granted SGD step lands before
                # the checkpoint is measured, whichever backend ran it.
                seg_losses.extend(trainer.drain())
                trained += segment
                if seg_losses:
                    if first_loss is None:
                        first_loss = float(seg_losses[0])
                    last_loss = float(np.mean(seg_losses[-100:]))
                # Checkpoint measurement on the reference cluster (env 0).
                venv.env_method(0, "set_params", venv.action_space.defaults())
                baseline = venv.env_method(0, "run_ticks", budget.eval_ticks)
                tuned = np.zeros(budget.eval_ticks)
                eval_obs = venv.env_method(0, "current_observation")
                for i in range(budget.eval_ticks):
                    action = int(agent.act(eval_obs, greedy=self.greedy_eval))
                    eval_obs, reward, _info = venv.env_method(0, "step", action)
                    tuned[i] = reward
                phases.append(
                    PhaseResult(
                        trained_ticks=trained,
                        baseline_rewards=baseline,
                        tuned_rewards=tuned,
                        final_params=venv.env_method(0, "current_params"),
                    )
                )
                # The checkpoint drove cluster 0 out of lockstep; the
                # next training segment must act on its *current* state,
                # not the pre-measurement one (mirrors the single-env
                # session, which refreshes its observation after
                # measuring).
                obs = venv.refresh_observation(0)
        finally:
            trainer.stop()
            if trainer_config.backend == "process":
                venv.remove_ingest_listener(trainer.ingest)
        extra: Dict[str, Any] = {"n_envs": venv.n_envs}
        if first_loss is not None:
            extra["loss_first"] = first_loss
            extra["loss_last100_mean"] = last_loss
        return RunResult(
            tuner=self.name,
            scenario=self.scenario,
            seed=self.seed,
            phases=phases,
            extra=extra,
        )


class SearchTuner:
    """A §5 black-box searcher behind the uniform interface.

    Each budget segment buys ``segment // epoch_ticks`` whole-epoch
    evaluations (at least one); the search continues across segments on
    the same live system, and after each segment the best setting found
    so far is measured against the defaults.
    """

    def __init__(
        self,
        cls: type,
        name: str,
        seed: int = 0,
        scenario: str = "",
        **tuner_kwargs: Any,
    ):
        self.cls = cls
        self.name = name
        self.seed = int(seed)
        self.scenario = scenario
        self.tuner_kwargs = tuner_kwargs

    def run(self, env: Environment, budget: RunBudget) -> RunResult:
        """Search ``env``'s parameter space epoch by epoch, measuring
        the best-found setting after each budget segment."""
        if isinstance(env, VectorEnv):
            raise TypeError(
                f"tuner {self.name!r} searches one live system; vectorized "
                f"collection (n_envs > 1) currently supports 'capes' only"
            )
        searcher: BaselineTuner = self.cls(
            env,
            epoch_ticks=budget.epoch_ticks,
            seed=self.seed,
            **self.tuner_kwargs,
        )
        phases: List[PhaseResult] = []
        trained = 0
        best = None
        for segment in budget.segments:
            epochs = max(1, segment // budget.epoch_ticks)
            best = searcher.tune(budget=epochs)
            # Record the search time actually spent: whole epochs only,
            # so this can differ from the nominal segment length.
            trained += epochs * budget.epoch_ticks
            baseline, tuned = _measure_pair(
                env, budget.eval_ticks, best.best_params
            )
            phases.append(
                PhaseResult(
                    trained_ticks=trained,
                    baseline_rewards=baseline,
                    tuned_rewards=tuned,
                    final_params=dict(best.best_params),
                )
            )
        return RunResult(
            tuner=self.name,
            scenario=self.scenario,
            seed=self.seed,
            phases=phases,
            extra={
                "best_score": float(best.best_score),
                "n_evaluations": int(best.n_evaluations),
            },
        )


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------

TunerFactory = Callable[..., Tuner]

_TUNERS: Dict[str, TunerFactory] = {}


def register_tuner(name: str, factory: TunerFactory) -> None:
    """Register ``factory(seed=..., scenario=..., **kwargs)`` as ``name``."""
    _TUNERS[name] = factory


def tuner_names() -> List[str]:
    """Every currently registered tuner name, sorted."""
    return sorted(_TUNERS)


def make_tuner(name: str, **kwargs: Any) -> Tuner:
    """Instantiate a registered tuner by name."""
    try:
        factory = _TUNERS[name]
    except KeyError:
        raise KeyError(
            f"unknown tuner {name!r}; registered: {tuner_names()}"
        ) from None
    return factory(**kwargs)


def _search_factory(cls: type, name: str) -> TunerFactory:
    def factory(**kwargs: Any) -> Tuner:
        return SearchTuner(cls, name, **kwargs)

    return factory


register_tuner("capes", CapesTuner)
register_tuner("random", _search_factory(RandomSearch, "random"))
register_tuner("hill_climb", _search_factory(HillClimb, "hill_climb"))
register_tuner("evolution", _search_factory(EvolutionStrategy, "evolution"))
register_tuner("static", _search_factory(StaticBaseline, "static"))
